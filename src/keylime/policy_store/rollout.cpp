#include "keylime/policy_store/rollout.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

namespace cia::keylime::policy_store {

namespace {

// Same hash pair the pool's consistent-hash ring uses (duplicated from
// verifier_pool.cpp's anonymous namespace on purpose: the slice must be
// a pure function of (id, seed), never of pool internals, so the two
// are kept deliberately decoupled).
std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t fmix64(std::uint64_t k) {
  k ^= k >> 33;
  k *= 0xff51afd7ed558ccdull;
  k ^= k >> 33;
  k *= 0xc4ceb9fe1a85ec53ull;
  k ^= k >> 33;
  return k;
}

std::uint64_t slice_point(const std::string& id, std::uint64_t seed) {
  return fmix64(fnv1a(id) ^ seed);
}

}  // namespace

std::vector<std::string> canary_slice(const std::vector<std::string>& ids,
                                      double fraction, std::uint64_t seed) {
  std::vector<std::string> out;
  if (ids.empty() || fraction <= 0.0) return out;
  if (fraction >= 1.0) {
    out = ids;
    std::sort(out.begin(), out.end());
    return out;
  }
  // Membership: the id's hash point lands in the first `fraction` of the
  // 64-bit hash space. Computed per id, so re-partitioning the fleet (or
  // enrolling more agents) never flips an existing member's verdict.
  const double scaled = std::ldexp(fraction, 64);  // fraction * 2^64
  const std::uint64_t cut =
      scaled >= std::ldexp(1.0, 64)
          ? ~0ull
          : static_cast<std::uint64_t>(scaled);
  const std::string* lowest = nullptr;
  std::uint64_t lowest_point = ~0ull;
  for (const std::string& id : ids) {
    const std::uint64_t p = slice_point(id, seed);
    if (p < cut) out.push_back(id);
    if (p < lowest_point || lowest == nullptr) {
      lowest_point = p;
      lowest = &id;
    }
  }
  // Never an empty canary: a rollout that skips its bake window would
  // promote a revision no agent ever appraised under.
  if (out.empty() && lowest != nullptr) out.push_back(*lowest);
  std::sort(out.begin(), out.end());
  return out;
}

const char* rollout_state_name(RolloutState s) {
  switch (s) {
    case RolloutState::kIdle:
      return "idle";
    case RolloutState::kBaking:
      return "baking";
    case RolloutState::kPromoted:
      return "promoted";
    case RolloutState::kRolledBack:
      return "rolled_back";
  }
  return "unknown";
}

RolloutController::RolloutController(VerifierPool* pool, RolloutConfig config)
    : pool_(pool), config_(std::move(config)) {}

void RolloutController::use_telemetry(telemetry::MetricsRegistry* metrics) {
  metrics_ = metrics;
  export_state();
}

void RolloutController::export_state() {
  if (metrics_ == nullptr) return;
  metrics_->gauge("cia_rollout_state")
      .set(static_cast<double>(static_cast<int>(state_)));
  metrics_->gauge("cia_rollout_canary_agents")
      .set(static_cast<double>(canary_.size()));
  metrics_->gauge("cia_rollout_observed_alerts")
      .set(static_cast<double>(stats_.observed_alerts));
}

Status RolloutController::begin(const RuntimePolicy& base,
                                const RuntimePolicy& target) {
  if (pool_ == nullptr)
    return err(Errc::kInvalidArgument, "rollout has no pool");
  if (state_ == RolloutState::kBaking)
    return err(Errc::kProtocolViolation, "a rollout is already baking");

  base_policy_ = base;
  target_policy_ = target;
  base_digest_ = policy_digest(base);
  target_digest_ = policy_digest(target);
  if (base_digest_ == target_digest_)
    return err(Errc::kInvalidArgument, "rollout target equals the base");

  forward_ = diff(base, target);
  reverse_ = diff(target, base);

  const std::vector<std::string> fleet = pool_->agent_ids();
  canary_ = canary_slice(fleet, config_.canary_fraction, config_.seed);
  if (canary_.empty())
    return err(Errc::kInvalidArgument, "rollout selected no canary agents");
  rest_.clear();
  for (const std::string& id : fleet) {
    if (!std::binary_search(canary_.begin(), canary_.end(), id))
      rest_.push_back(id);
  }

  // Canary push: delta-rebased when the pool's installed head is the
  // base revision (it is, when the fleet was bootstrapped through
  // push_revision); only the canary slice ever sees the target until
  // the bake window closes clean.
  if (Status s =
          pool_->push_revision(canary_, target_policy_, target_digest_,
                               &forward_);
      !s.ok())
    return s;
  target_revision_ = pool_->policy_revision();

  state_ = RolloutState::kBaking;
  rounds_baked_this_rollout_ = 0;
  rollback_revision_ = 0;
  stats_.started += 1;
  if (metrics_) metrics_->counter("cia_rollout_started_total").inc();
  export_state();
  return Status::ok_status();
}

void RolloutController::on_round_boundary(SimTime now) {
  (void)now;  // the gate keys on alert attribution, not wall/sim time
  if (state_ != RolloutState::kBaking) return;

  // Health gate: alerts raised under the canary revision, read from the
  // pool's deterministically ordered merged stream — the same alerts the
  // cia_alert_*/cia_incident_* counters are folded from, so the verdict
  // is shard-count invariant.
  std::uint64_t bad = 0;
  for (const Alert& a : pool_->alerts()) {
    if (a.policy_revision == target_revision_) ++bad;
  }
  stats_.observed_alerts = bad;

  if (bad > config_.alert_budget) {
    // Roll the canary slice back to the base revision. The reverse
    // delta rebases from the target digest — exactly what the pool has
    // cached from the canary push — so the rollback is an incremental
    // index patch, not a fleet-scale rebuild.
    (void)pool_->push_revision(canary_, base_policy_, base_digest_,
                               &reverse_);
    rollback_revision_ = pool_->policy_revision();
    state_ = RolloutState::kRolledBack;
    stats_.rolled_back += 1;
    if (metrics_) metrics_->counter("cia_rollout_rolled_back_total").inc();
    export_state();
    return;
  }

  rounds_baked_this_rollout_ += 1;
  stats_.rounds_baked += 1;
  if (metrics_) metrics_->counter("cia_rollout_bake_rounds_total").inc();
  if (rounds_baked_this_rollout_ < config_.bake_rounds) {
    export_state();
    return;
  }

  // Bake window closed clean: promote. The digest matches the pool's
  // cached head, so the rest of the fleet shares the index the canary
  // push already built — zero additional builds.
  (void)pool_->push_revision(rest_, target_policy_, target_digest_,
                             &forward_);
  state_ = RolloutState::kPromoted;
  stats_.promoted += 1;
  if (metrics_) metrics_->counter("cia_rollout_promoted_total").inc();
  export_state();
}

}  // namespace cia::keylime::policy_store
