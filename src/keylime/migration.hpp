// Live-resharding handoff payload: one agent's complete verification
// state in flight between two shards of a VerifierPool.
//
// The payload carries the agent's checkpoint slice (Verifier::
// export_agent), its polling schedule, and the ring move it implements.
// The wire form is JSON over the pool's dedicated handoff network, which
// injects the same faults as any other netsim link — so decode() is an
// untrusted parse surface: a hostile or truncated payload must be
// rejected whole, never partially applied (cia_fuzz target `migration`).
#pragma once

#include <cstdint>
#include <string>

#include "common/json.hpp"
#include "common/result.hpp"
#include "common/types.hpp"
#include "keylime/scheduler.hpp"

namespace cia::keylime {

/// Message kind for shard-to-shard agent handoff.
inline const char kMsgMigrate[] = "pool.migrate";

struct HandoffPayload {
  /// Format version written by encode(); decode() refuses anything newer.
  static constexpr int kVersion = 1;

  std::string agent_id;
  std::uint64_t source_shard = 0;
  std::uint64_t dest_shard = 0;
  json::Value agent_slice;  // Verifier::export_agent / import_agent shape
  AttestationScheduler::AgentSchedule schedule;

  Bytes encode() const;

  /// Strict parse + validation. Every field is checked — including the
  /// embedded agent slice via Verifier::validate_agent_slice and the
  /// requirement that the slice's id matches the envelope's — before the
  /// caller is allowed to see the payload, so an importing shard can
  /// apply a decoded payload without further trust decisions.
  static Result<HandoffPayload> decode(const Bytes& raw);
};

}  // namespace cia::keylime
