#include "keylime/runtime_policy.hpp"

#include <algorithm>

#include "common/strutil.hpp"

namespace cia::keylime {

const char* policy_match_name(PolicyMatch m) {
  switch (m) {
    case PolicyMatch::kAllowed: return "allowed";
    case PolicyMatch::kHashMismatch: return "hash_mismatch";
    case PolicyMatch::kNotInPolicy: return "not_in_policy";
    case PolicyMatch::kExcluded: return "excluded";
  }
  return "?";
}

void RuntimePolicy::allow(const std::string& path, const std::string& hash_hex) {
  auto& hashes = allow_[path];
  if (std::find(hashes.begin(), hashes.end(), hash_hex) != hashes.end()) {
    return;  // already acceptable; keep the policy line count honest
  }
  hashes.push_back(hash_hex);
  ++entry_count_;
}

void RuntimePolicy::allow(const std::string& path, const crypto::Digest& hash) {
  allow(path, crypto::digest_hex(hash));
}

void RuntimePolicy::exclude(const std::string& glob) {
  excludes_.push_back(glob);
}

bool RuntimePolicy::is_excluded(const std::string& path) const {
  for (const std::string& glob : excludes_) {
    if (glob_match(glob, path)) return true;
  }
  return false;
}

PolicyMatch RuntimePolicy::check(const std::string& path,
                                 const std::string& hash_hex) const {
  if (is_excluded(path)) return PolicyMatch::kExcluded;
  auto it = allow_.find(path);
  if (it == allow_.end()) return PolicyMatch::kNotInPolicy;
  if (std::find(it->second.begin(), it->second.end(), hash_hex) !=
      it->second.end()) {
    return PolicyMatch::kAllowed;
  }
  return PolicyMatch::kHashMismatch;
}

PolicyMatch RuntimePolicy::check(const std::string& path,
                                 const crypto::Digest& hash) const {
  // Same verdict as rendering digest_hex(hash) and delegating, but the
  // hex lands in a stack buffer: this overload is the per-entry probe of
  // the legacy linear appraisal path, where a heap allocation per record
  // is measurable at log scale.
  if (is_excluded(path)) return PolicyMatch::kExcluded;
  auto it = allow_.find(path);
  if (it == allow_.end()) return PolicyMatch::kNotInPolicy;
  static const char* kHex = "0123456789abcdef";
  char hex[64];
  for (int i = 0; i < 32; ++i) {
    hex[i * 2] = kHex[hash[i] >> 4];
    hex[i * 2 + 1] = kHex[hash[i] & 0x0f];
  }
  const std::string_view want(hex, 64);
  for (const std::string& h : it->second) {
    if (h == want) return PolicyMatch::kAllowed;
  }
  return PolicyMatch::kHashMismatch;
}

std::uint64_t RuntimePolicy::byte_size() const {
  std::uint64_t total = 0;
  for (const auto& [path, hashes] : allow_) {
    // "path sha256:<64 hex>\n"
    total += hashes.size() * (path.size() + 1 + 7 + 64 + 1);
  }
  for (const auto& glob : excludes_) total += 8 + glob.size() + 1;
  return total;
}

std::size_t RuntimePolicy::dedup() {
  std::size_t removed = 0;
  for (auto& [path, hashes] : allow_) {
    if (hashes.size() > 1) {
      removed += hashes.size() - 1;
      hashes.erase(hashes.begin(), hashes.end() - 1);
    }
  }
  entry_count_ -= removed;
  return removed;
}

std::size_t RuntimePolicy::remove_prefix(const std::string& prefix) {
  std::size_t removed = 0;
  for (auto it = allow_.begin(); it != allow_.end();) {
    if (starts_with(it->first, prefix)) {
      removed += it->second.size();
      it = allow_.erase(it);
    } else {
      ++it;
    }
  }
  entry_count_ -= removed;
  return removed;
}

std::string RuntimePolicy::serialize() const {
  std::string out;
  for (const auto& glob : excludes_) {
    out += "exclude " + glob + "\n";
  }
  for (const auto& [path, hashes] : allow_) {
    for (const auto& h : hashes) {
      out += path + " sha256:" + h + "\n";
    }
  }
  return out;
}

Result<RuntimePolicy> RuntimePolicy::parse(const std::string& text) {
  RuntimePolicy policy;
  for (const std::string& line : split(text, '\n')) {
    if (line.empty()) continue;
    if (starts_with(line, "exclude ")) {
      policy.exclude(line.substr(8));
      continue;
    }
    const std::size_t sep = line.rfind(" sha256:");
    if (sep == std::string::npos) {
      return err(Errc::kCorrupted, "bad policy line: " + line);
    }
    const std::string path = line.substr(0, sep);
    const std::string hash = line.substr(sep + 8);
    if (hash.size() != 64) {
      return err(Errc::kCorrupted, "bad hash length in line: " + line);
    }
    policy.allow(path, hash);
  }
  return policy;
}

json::Value RuntimePolicy::to_json() const {
  json::Value doc;
  json::Value meta;
  meta.set("version", 1);
  meta.set("generator", "cia-dynamic-policy-generator");
  doc.set("meta", std::move(meta));
  json::Value digests{json::Object{}};
  for (const auto& [path, hashes] : allow_) {
    json::Value list{json::Array{}};
    for (const auto& h : hashes) list.push_back(h);
    digests.set(path, std::move(list));
  }
  doc.set("digests", std::move(digests));
  json::Value excludes{json::Array{}};
  for (const auto& glob : excludes_) excludes.push_back(glob);
  doc.set("excludes", std::move(excludes));
  return doc;
}

Result<RuntimePolicy> RuntimePolicy::from_json(const json::Value& doc) {
  RuntimePolicy policy;
  if (!doc.is_object()) {
    return err(Errc::kCorrupted, "policy document is not an object");
  }
  if (const json::Value* excludes = doc.find("excludes")) {
    if (!excludes->is_array()) {
      return err(Errc::kCorrupted, "excludes is not an array");
    }
    for (const auto& glob : excludes->as_array()) {
      if (!glob.is_string()) {
        return err(Errc::kCorrupted, "exclude entry is not a string");
      }
      policy.exclude(glob.as_string());
    }
  }
  const json::Value* digests = doc.find("digests");
  if (!digests || !digests->is_object()) {
    return err(Errc::kCorrupted, "missing digests object");
  }
  for (const auto& [path, hashes] : digests->as_object()) {
    if (!hashes.is_array()) {
      return err(Errc::kCorrupted, "digest list for " + path + " is not an array");
    }
    for (const auto& h : hashes.as_array()) {
      if (!h.is_string() || h.as_string().size() != 64) {
        return err(Errc::kCorrupted, "bad digest for " + path);
      }
      policy.allow(path, h.as_string());
    }
  }
  return policy;
}

void RuntimePolicy::for_each_path(
    const std::function<void(const std::string&,
                             const std::vector<std::string>&)>& fn) const {
  for (const auto& [path, hashes] : allow_) fn(path, hashes);
}

Status PolicySink::set_policy_bulk(const std::vector<std::string>& agent_ids,
                                   const RuntimePolicy& policy) {
  for (const std::string& id : agent_ids) {
    if (Status s = set_policy(id, policy); !s.ok()) return s;
  }
  return Status::ok_status();
}

Status PolicySink::push_revision(const std::vector<std::string>& agent_ids,
                                 const RuntimePolicy& policy,
                                 const std::string& digest,
                                 const policy_store::PolicyDelta* delta) {
  (void)digest;
  (void)delta;
  return set_policy_bulk(agent_ids, policy);
}

const std::vector<std::string>* RuntimePolicy::hashes_for(
    const std::string& path) const {
  auto it = allow_.find(path);
  return it == allow_.end() ? nullptr : &it->second;
}

void RuntimePolicy::set_hashes(const std::string& path,
                               std::vector<std::string> hashes) {
  if (hashes.empty()) {
    remove_path(path);
    return;
  }
  auto& slot = allow_[path];
  entry_count_ += hashes.size();
  entry_count_ -= slot.size();
  slot = std::move(hashes);
}

std::size_t RuntimePolicy::remove_path(const std::string& path) {
  auto it = allow_.find(path);
  if (it == allow_.end()) return 0;
  const std::size_t removed = it->second.size();
  entry_count_ -= removed;
  allow_.erase(it);
  return removed;
}

void RuntimePolicy::set_excludes(std::vector<std::string> globs) {
  excludes_ = std::move(globs);
}

void RuntimePolicy::merge(const RuntimePolicy& other) {
  for (const auto& glob : other.excludes_) {
    if (std::find(excludes_.begin(), excludes_.end(), glob) == excludes_.end()) {
      excludes_.push_back(glob);
    }
  }
  for (const auto& [path, hashes] : other.allow_) {
    for (const auto& h : hashes) allow(path, h);
  }
}

}  // namespace cia::keylime
