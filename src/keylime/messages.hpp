// Wire messages of the Keylime protocol (agent <-> registrar <-> verifier).
//
// Every message has an encode() and a bounds-checked decode(); agents are
// untrusted, so the verifier/registrar never assume well-formed input.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.hpp"
#include "ima/ima.hpp"
#include "netsim/wire.hpp"
#include "oskernel/machine.hpp"
#include "tpm/tpm.hpp"

namespace cia::keylime {

// Message kinds (the `kind` field of netsim RPCs).
inline constexpr const char* kMsgRegister = "register";
inline constexpr const char* kMsgActivate = "activate";
inline constexpr const char* kMsgGetAgent = "get_agent";
inline constexpr const char* kMsgQuote = "quote";
inline constexpr const char* kMsgBootLog = "bootlog";

/// Agent -> registrar: enrolment request carrying the TPM identity.
struct RegisterRequest {
  std::string agent_id;
  Bytes ek_cert;  // serialized crypto::Certificate
  Bytes ak_pub;   // 64-byte public key

  Bytes encode() const;
  static Result<RegisterRequest> decode(const Bytes& b);
};

/// Registrar -> agent: the credential-activation challenge.
struct RegisterChallenge {
  tpm::CredentialBlob blob;

  Bytes encode() const;
  static Result<RegisterChallenge> decode(const Bytes& b);
};

/// Agent -> registrar: proof of credential activation.
struct ActivateRequest {
  std::string agent_id;
  Bytes proof;  // HMAC(secret, agent_id)

  Bytes encode() const;
  static Result<ActivateRequest> decode(const Bytes& b);
};

/// Verifier -> registrar: look up a registered agent's AK.
struct GetAgentRequest {
  std::string agent_id;

  Bytes encode() const;
  static Result<GetAgentRequest> decode(const Bytes& b);
};

struct GetAgentResponse {
  bool active = false;
  Bytes ak_pub;

  Bytes encode() const;
  static Result<GetAgentResponse> decode(const Bytes& b);
};

/// Verifier -> agent: attestation challenge.
struct QuoteRequest {
  Bytes nonce;
  std::uint64_t log_offset = 0;  // ship IMA entries from this index

  Bytes encode() const;
  static Result<QuoteRequest> decode(const Bytes& b);
};

/// Agent -> verifier: quote + incremental measurement list.
/// `boot_count` is authenticated by folding it into the quoted nonce
/// (bound_quote_nonce) — it is the field that tells the verifier to roll
/// its incremental log cursor back to zero, so it must be as tamper-proof
/// as the quote itself.
struct QuoteResponse {
  tpm::Quote quote;
  std::vector<ima::LogEntry> entries;  // log[log_offset:]
  std::uint64_t total_log_length = 0;
  std::uint32_t boot_count = 0;

  Bytes encode() const;
  static Result<QuoteResponse> decode(const Bytes& b);
};

/// Zero-copy view of one decoded measurement entry: the string fields
/// borrow the RPC byte buffer handed to QuoteResponseView::decode, so a
/// view is valid only while that buffer is alive and unmodified.
struct LogEntryView {
  int pcr = 10;
  crypto::Digest template_hash{};
  std::string_view template_name;
  crypto::Digest file_hash{};
  std::string_view path;

  /// Deep-copy into an owning entry (checkpointing, backlog carry-over).
  ima::LogEntry materialize() const;
};

/// Zero-copy decode of a QuoteResponse. Runs the exact validation of
/// QuoteResponse::decode (which delegates here) but leaves every string
/// field borrowing the input buffer — on the appraisal hot path the
/// verifier reads each entry once and never needs an owning copy.
struct QuoteResponseView {
  tpm::Quote quote;
  std::vector<LogEntryView> entries;  // log[log_offset:]
  std::uint64_t total_log_length = 0;
  std::uint32_t boot_count = 0;

  static Result<QuoteResponseView> decode(const Bytes& b);

  /// Deep-copy into the owning message.
  QuoteResponse materialize() const;
};

/// Encode a quote response straight from borrowed parts, without first
/// assembling an owning QuoteResponse. The agent's quote path serves
/// `log_since()` spans through this to avoid deep-copying the log tail
/// it is about to serialize anyway. Byte-identical to
/// QuoteResponse::encode (which delegates here).
Bytes encode_quote_response(const tpm::Quote& quote,
                            std::span<const ima::LogEntry> entries,
                            std::uint64_t total_log_length,
                            std::uint32_t boot_count);

/// The nonce the agent actually quotes: the verifier's challenge with the
/// agent's boot counter appended (little-endian u32). Because the AK
/// signature covers the quoted nonce, a man-in-the-middle who rewrites
/// boot_count in the response fails quote verification instead of
/// tricking the verifier into a full-log re-read that double-counts every
/// already-appraised entry.
Bytes bound_quote_nonce(const Bytes& challenge, std::uint32_t boot_count);

/// Agent -> verifier: the TCG boot event log of the current boot.
struct BootLogResponse {
  std::vector<oskernel::BootEvent> events;

  Bytes encode() const;
  static Result<BootLogResponse> decode(const Bytes& b);
};

// Shared helpers for nested types.
void encode_quote(netsim::WireWriter& w, const tpm::Quote& q);
Result<tpm::Quote> decode_quote(netsim::WireReader& r);
void encode_log_entry(netsim::WireWriter& w, const ima::LogEntry& e);
Result<ima::LogEntry> decode_log_entry(netsim::WireReader& r);

}  // namespace cia::keylime
