#include "telemetry/export.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/strutil.hpp"

namespace cia::telemetry {

namespace {

/// Prometheus label-value escaping: backslash, double quote, newline.
std::string escape_label(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string render_labels(const Labels& labels,
                          const std::string& extra_key = "",
                          const std::string& extra_value = "") {
  if (labels.empty() && extra_key.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ",";
    first = false;
    out += key + "=\"" + escape_label(value) + "\"";
  }
  if (!extra_key.empty()) {
    if (!first) out += ",";
    out += extra_key + "=\"" + escape_label(extra_value) + "\"";
  }
  out += "}";
  return out;
}

/// Shortest representation that still round-trips typical metric values:
/// integers print without a decimal point.
std::string render_number(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 1e15) {
    return strformat("%lld", static_cast<long long>(v));
  }
  return strformat("%g", v);
}

}  // namespace

std::string to_prometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  std::string last_family;
  for (const MetricPoint& point : snapshot.points) {
    if (point.name != last_family) {
      out += "# TYPE " + point.name + " " + metric_kind_name(point.kind) + "\n";
      last_family = point.name;
    }
    if (point.kind == MetricKind::kHistogram) {
      const HistogramSnapshot& h = point.histogram;
      std::uint64_t cumulative = 0;
      for (std::size_t b = 0; b < h.counts.size(); ++b) {
        cumulative += h.counts[b];
        const std::string le =
            b < h.bounds.size() ? render_number(h.bounds[b]) : "+Inf";
        out += point.name + "_bucket" + render_labels(point.labels, "le", le) +
               " " + strformat("%llu", static_cast<unsigned long long>(
                                           cumulative)) +
               "\n";
      }
      out += point.name + "_sum" + render_labels(point.labels) + " " +
             render_number(h.sum) + "\n";
      out += point.name + "_count" + render_labels(point.labels) + " " +
             strformat("%llu", static_cast<unsigned long long>(h.count)) + "\n";
    } else {
      out += point.name + render_labels(point.labels) + " " +
             render_number(point.value) + "\n";
    }
  }
  return out;
}

json::Value to_json(const MetricsSnapshot& snapshot) {
  json::Value metrics{json::Array{}};
  for (const MetricPoint& point : snapshot.points) {
    json::Value m;
    m.set("name", point.name);
    m.set("kind", metric_kind_name(point.kind));
    if (!point.labels.empty()) {
      json::Value labels{json::Object{}};
      for (const auto& [key, value] : point.labels) labels.set(key, value);
      m.set("labels", std::move(labels));
    }
    if (point.kind == MetricKind::kHistogram) {
      const HistogramSnapshot& h = point.histogram;
      json::Value bounds{json::Array{}};
      for (double b : h.bounds) bounds.push_back(b);
      json::Value counts{json::Array{}};
      for (std::uint64_t c : h.counts) {
        counts.push_back(static_cast<std::int64_t>(c));
      }
      m.set("bounds", std::move(bounds));
      m.set("counts", std::move(counts));
      m.set("count", static_cast<std::int64_t>(h.count));
      m.set("sum", h.sum);
      m.set("min", h.min);
      m.set("max", h.max);
      m.set("p50", h.percentile(50));
      m.set("p95", h.percentile(95));
      m.set("p99", h.percentile(99));
    } else {
      m.set("value", point.value);
    }
    metrics.push_back(std::move(m));
  }
  json::Value doc;
  doc.set("version", 1);
  doc.set("metrics", std::move(metrics));
  return doc;
}

Result<MetricsSnapshot> snapshot_from_json(const json::Value& doc) {
  if (!doc.is_object()) {
    return err(Errc::kCorrupted, "snapshot: not an object");
  }
  const json::Value* metrics = doc.find("metrics");
  if (!metrics || !metrics->is_array()) {
    return err(Errc::kCorrupted, "snapshot: missing metrics array");
  }
  MetricsSnapshot snap;
  for (const json::Value& m : metrics->as_array()) {
    if (!m.is_object()) return err(Errc::kCorrupted, "snapshot: bad point");
    const json::Value* name = m.find("name");
    const json::Value* kind = m.find("kind");
    if (!name || !name->is_string() || !kind || !kind->is_string()) {
      return err(Errc::kCorrupted, "snapshot: point missing name/kind");
    }
    MetricPoint point;
    point.name = name->as_string();
    const std::string& kind_name = kind->as_string();
    if (kind_name == "counter") {
      point.kind = MetricKind::kCounter;
    } else if (kind_name == "gauge") {
      point.kind = MetricKind::kGauge;
    } else if (kind_name == "histogram") {
      point.kind = MetricKind::kHistogram;
    } else {
      return err(Errc::kCorrupted, "snapshot: unknown kind " + kind_name);
    }
    if (const json::Value* labels = m.find("labels")) {
      if (!labels->is_object()) {
        return err(Errc::kCorrupted, "snapshot: bad labels");
      }
      for (const auto& [key, value] : labels->as_object()) {
        if (!value.is_string()) {
          return err(Errc::kCorrupted, "snapshot: non-string label");
        }
        point.labels.emplace_back(key, value.as_string());
      }
      std::sort(point.labels.begin(), point.labels.end());
    }
    if (point.kind == MetricKind::kHistogram) {
      const json::Value* bounds = m.find("bounds");
      const json::Value* counts = m.find("counts");
      const json::Value* count = m.find("count");
      const json::Value* sum = m.find("sum");
      if (!bounds || !bounds->is_array() || !counts || !counts->is_array() ||
          !count || !count->is_number() || !sum || !sum->is_number()) {
        return err(Errc::kCorrupted, "snapshot: bad histogram fields");
      }
      for (const json::Value& b : bounds->as_array()) {
        if (!b.is_number()) {
          return err(Errc::kCorrupted, "snapshot: bad bound");
        }
        point.histogram.bounds.push_back(b.as_number());
      }
      // Histogram() sorts and dedupes its bounds, so a live registry can
      // only ever export strictly increasing ones. Accepting anything
      // else would admit states percentile() is not defined over (its
      // bucket interpolation assumes ordered edges).
      for (std::size_t i = 1; i < point.histogram.bounds.size(); ++i) {
        if (point.histogram.bounds[i] <= point.histogram.bounds[i - 1]) {
          return err(Errc::kCorrupted,
                     "snapshot: bounds not strictly increasing");
        }
      }
      for (const json::Value& c : counts->as_array()) {
        // A bucket count must be a non-negative integer; a negative or
        // fractional value would wrap to a huge std::uint64_t and poison
        // every percentile computed from the restored snapshot.
        if (!c.is_number() || c.as_number() < 0 ||
            c.as_number() != static_cast<double>(c.as_int())) {
          return err(Errc::kCorrupted, "snapshot: bad bucket count");
        }
        point.histogram.counts.push_back(
            static_cast<std::uint64_t>(c.as_int()));
      }
      if (point.histogram.counts.size() != point.histogram.bounds.size() + 1) {
        return err(Errc::kCorrupted, "snapshot: bucket/bound size mismatch");
      }
      if (count->as_number() < 0 ||
          count->as_number() != static_cast<double>(count->as_int())) {
        return err(Errc::kCorrupted, "snapshot: bad histogram count");
      }
      point.histogram.count = static_cast<std::uint64_t>(count->as_int());
      std::uint64_t bucket_total = 0;
      for (std::uint64_t c : point.histogram.counts) bucket_total += c;
      if (bucket_total != point.histogram.count) {
        return err(Errc::kCorrupted, "snapshot: bucket counts do not sum to count");
      }
      point.histogram.sum = sum->as_number();
      if (const json::Value* v = m.find("min"); v && v->is_number()) {
        point.histogram.min = v->as_number();
      }
      if (const json::Value* v = m.find("max"); v && v->is_number()) {
        point.histogram.max = v->as_number();
      }
      // observe() keeps min/max consistent with the buckets whenever
      // anything was recorded: min <= max, every value in the lowest
      // occupied bucket is >= min, and the highest occupied bucket holds
      // a value <= max. percentile() clamps bucket edges against min/max,
      // so admitting a contradictory triple makes it non-monotonic.
      if (point.histogram.count > 0) {
        const HistogramSnapshot& h = point.histogram;
        if (h.min > h.max) {
          return err(Errc::kCorrupted, "snapshot: histogram min > max");
        }
        std::size_t lowest = 0;
        while (h.counts[lowest] == 0) ++lowest;
        std::size_t highest = h.counts.size() - 1;
        while (h.counts[highest] == 0) --highest;
        if (lowest < h.bounds.size() && h.min > h.bounds[lowest]) {
          return err(Errc::kCorrupted,
                     "snapshot: histogram min above its lowest bucket");
        }
        if (highest > 0 && h.max <= h.bounds[highest - 1]) {
          return err(Errc::kCorrupted,
                     "snapshot: histogram max below its highest bucket");
        }
      }
    } else {
      const json::Value* value = m.find("value");
      if (!value || !value->is_number()) {
        return err(Errc::kCorrupted, "snapshot: point missing value");
      }
      point.value = value->as_number();
    }
    snap.points.push_back(std::move(point));
  }
  return snap;
}

std::string diff_snapshots(const MetricsSnapshot& before,
                           const MetricsSnapshot& after) {
  using Key = std::pair<std::string, Labels>;
  std::map<Key, const MetricPoint*> old_points;
  for (const MetricPoint& p : before.points) {
    old_points[{p.name, p.labels}] = &p;
  }
  std::string out;
  const auto series = [](const MetricPoint& p) {
    std::string s = p.name;
    if (!p.labels.empty()) {
      s += "{";
      bool first = true;
      for (const auto& [key, value] : p.labels) {
        if (!first) s += ",";
        first = false;
        s += key + "=" + value;
      }
      s += "}";
    }
    return s;
  };
  for (const MetricPoint& p : after.points) {
    auto it = old_points.find({p.name, p.labels});
    if (it == old_points.end()) {
      if (p.kind == MetricKind::kHistogram) {
        out += strformat("+ %s count=%llu sum=%g\n", series(p).c_str(),
                         static_cast<unsigned long long>(p.histogram.count),
                         p.histogram.sum);
      } else {
        out += strformat("+ %s %g\n", series(p).c_str(), p.value);
      }
      continue;
    }
    const MetricPoint& old = *it->second;
    old_points.erase(it);
    if (p.kind == MetricKind::kHistogram) {
      if (p.histogram.count != old.histogram.count ||
          p.histogram.sum != old.histogram.sum) {
        out += strformat(
            "~ %s count %llu -> %llu, sum %g -> %g, p95 %g -> %g\n",
            series(p).c_str(),
            static_cast<unsigned long long>(old.histogram.count),
            static_cast<unsigned long long>(p.histogram.count),
            old.histogram.sum, p.histogram.sum, old.histogram.percentile(95),
            p.histogram.percentile(95));
      }
    } else if (p.value != old.value) {
      out += strformat("~ %s %g -> %g (%+g)\n", series(p).c_str(), old.value,
                       p.value, p.value - old.value);
    }
  }
  for (const auto& [key, p] : old_points) {
    (void)key;
    out += strformat("- %s\n", series(*p).c_str());
  }
  return out;
}

}  // namespace cia::telemetry
