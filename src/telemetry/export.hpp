// Exporters for MetricsSnapshot: Prometheus text exposition for
// scraping, canonical JSON for archival/diffing (BENCH_*.json
// trajectories embed these so a result file is self-describing), and a
// line-oriented snapshot diff for the cia_metrics CLI.
#pragma once

#include <string>

#include "common/json.hpp"
#include "common/result.hpp"
#include "telemetry/metrics.hpp"

namespace cia::telemetry {

/// Prometheus text exposition format (one `# TYPE` line per family,
/// histograms as cumulative `_bucket{le=...}` plus `_sum`/`_count`).
std::string to_prometheus(const MetricsSnapshot& snapshot);

/// Canonical JSON document: {"version":1,"metrics":[...]} with points
/// sorted by (name, labels). Round-trips through snapshot_from_json().
json::Value to_json(const MetricsSnapshot& snapshot);

/// Parse a to_json() document back into a snapshot.
Result<MetricsSnapshot> snapshot_from_json(const json::Value& doc);

/// Human-readable diff between two snapshots: one line per added,
/// removed, or changed series (counters/gauges show the delta;
/// histograms compare count and sum). Empty when identical.
std::string diff_snapshots(const MetricsSnapshot& before,
                           const MetricsSnapshot& after);

}  // namespace cia::telemetry
