// Sim-time attestation tracing: hierarchical spans over the SimClock.
//
// Every attestation round opens a root span and the layers below it
// (transport retries, TPM verification, IMA appraisal, the policy
// decision) nest child spans inside, annotated with fault and retry
// detail. Because the simulation is single-threaded per rig, nesting is
// tracked with an explicit open-span stack: begin() parents the new span
// under the innermost open one; annotate() decorates the innermost open
// span — which is how a transport three layers below the verifier tags
// the enclosing RPC span with its retry count without either layer
// knowing about the other.
//
// Finished spans export as Chrome `trace_event` JSON ("X" complete
// events; load chrome://tracing or Perfetto for a flame view of a whole
// chaos scenario in virtual time) or as a canonical JSON span list.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/json.hpp"
#include "common/sim_clock.hpp"

namespace cia::telemetry {

using SpanId = std::uint64_t;  // 1-based; 0 = "no span"

struct Span {
  SpanId id = 0;
  SpanId parent = 0;  // 0 = root
  std::string name;
  std::string category;
  SimTime start = 0;
  SimTime end = 0;
  std::vector<std::pair<std::string, std::string>> annotations;
};

class Tracer {
 public:
  /// `max_spans` bounds memory on long runs; spans begun past the limit
  /// are counted in dropped() but otherwise vanish.
  explicit Tracer(const SimClock* clock, std::size_t max_spans = 1u << 20);

  /// Point the tracer at a different clock. Rigs that own their SimClock
  /// internally (run_chaos_experiment) rebind a caller-provided tracer
  /// to it during setup so span times track the rig's virtual time.
  void bind_clock(const SimClock* clock) { clock_ = clock; }

  /// Open a span under the innermost open span. Returns its id.
  SpanId begin(const std::string& name, const std::string& category = "");

  /// Close span `id`. Out-of-order ends are tolerated: any span still
  /// open inside `id` is closed with it (crash-path friendly).
  void end(SpanId id);

  /// Annotate the innermost open span (no-op when none is open).
  void annotate(const std::string& key, const std::string& value);
  void annotate(SpanId id, const std::string& key, const std::string& value);

  /// RAII guard: closes its span when it leaves scope.
  class Scope {
   public:
    Scope(Tracer* tracer, SpanId id) : tracer_(tracer), id_(id) {}
    ~Scope() {
      if (tracer_ && id_) tracer_->end(id_);
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
    Scope(Scope&& other) noexcept : tracer_(other.tracer_), id_(other.id_) {
      other.tracer_ = nullptr;
    }
    SpanId id() const { return id_; }

   private:
    Tracer* tracer_;
    SpanId id_;
  };
  Scope span(const std::string& name, const std::string& category = "") {
    return Scope(this, begin(name, category));
  }

  /// Spans closed so far, in completion order.
  const std::vector<Span>& finished() const { return finished_; }
  std::size_t open_count() const { return open_.size(); }
  std::size_t dropped() const { return dropped_; }

  /// Chrome trace_event document: {"traceEvents":[...]} with "X"
  /// (complete) events, ts/dur in microseconds of virtual time.
  json::Value chrome_trace() const;

  /// Canonical JSON: flat span list with parent ids and annotations.
  json::Value to_json() const;

 private:
  const SimClock* clock_;
  std::size_t max_spans_;
  SpanId next_id_ = 1;
  std::vector<Span> open_;  // stack, innermost last
  std::vector<Span> finished_;
  std::size_t dropped_ = 0;
};

}  // namespace cia::telemetry
