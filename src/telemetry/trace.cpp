#include "telemetry/trace.hpp"

#include <algorithm>

namespace cia::telemetry {

Tracer::Tracer(const SimClock* clock, std::size_t max_spans)
    : clock_(clock), max_spans_(max_spans) {}

SpanId Tracer::begin(const std::string& name, const std::string& category) {
  if (finished_.size() + open_.size() >= max_spans_) {
    ++dropped_;
    return 0;
  }
  Span span;
  span.id = next_id_++;
  span.parent = open_.empty() ? 0 : open_.back().id;
  span.name = name;
  span.category = category;
  span.start = clock_->now();
  open_.push_back(std::move(span));
  return open_.back().id;
}

void Tracer::end(SpanId id) {
  if (id == 0) return;
  // Close everything opened inside `id` along with it, innermost first,
  // so a span abandoned on an error path cannot leak open forever.
  while (!open_.empty()) {
    Span span = std::move(open_.back());
    open_.pop_back();
    const bool target = span.id == id;
    span.end = clock_->now();
    finished_.push_back(std::move(span));
    if (target) return;
  }
}

void Tracer::annotate(const std::string& key, const std::string& value) {
  if (open_.empty()) return;
  open_.back().annotations.emplace_back(key, value);
}

void Tracer::annotate(SpanId id, const std::string& key,
                      const std::string& value) {
  if (id == 0) return;
  for (auto it = open_.rbegin(); it != open_.rend(); ++it) {
    if (it->id == id) {
      it->annotations.emplace_back(key, value);
      return;
    }
  }
}

namespace {

json::Value span_args(const Span& span) {
  json::Value args{json::Object{}};
  for (const auto& [key, value] : span.annotations) args.set(key, value);
  return args;
}

}  // namespace

json::Value Tracer::chrome_trace() const {
  json::Value events{json::Array{}};
  // Sort by start time so the document streams in timeline order (the
  // viewers accept any order, but sorted files diff cleanly).
  std::vector<const Span*> ordered;
  ordered.reserve(finished_.size());
  for (const Span& span : finished_) ordered.push_back(&span);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const Span* a, const Span* b) {
                     return a->start < b->start;
                   });
  for (const Span* span : ordered) {
    json::Value event;
    event.set("name", span->name);
    event.set("cat", span->category.empty() ? "sim" : span->category);
    event.set("ph", "X");
    // Virtual seconds rendered as trace microseconds: 1 sim second maps
    // to 1 us so multi-day runs stay within the viewers' zoom range.
    event.set("ts", static_cast<double>(span->start));
    event.set("dur", static_cast<double>(span->end - span->start));
    event.set("pid", 1);
    event.set("tid", 1);
    event.set("id", static_cast<std::int64_t>(span->id));
    if (span->parent != 0) {
      event.set("parent", static_cast<std::int64_t>(span->parent));
    }
    if (!span->annotations.empty()) event.set("args", span_args(*span));
    events.push_back(std::move(event));
  }
  json::Value doc;
  doc.set("displayTimeUnit", "ms");
  doc.set("traceEvents", std::move(events));
  return doc;
}

json::Value Tracer::to_json() const {
  json::Value spans{json::Array{}};
  for (const Span& span : finished_) {
    json::Value s;
    s.set("id", static_cast<std::int64_t>(span.id));
    s.set("parent", static_cast<std::int64_t>(span.parent));
    s.set("name", span.name);
    if (!span.category.empty()) s.set("category", span.category);
    s.set("start", static_cast<std::int64_t>(span.start));
    s.set("end", static_cast<std::int64_t>(span.end));
    if (!span.annotations.empty()) s.set("annotations", span_args(span));
    spans.push_back(std::move(s));
  }
  json::Value doc;
  doc.set("spans", std::move(spans));
  doc.set("dropped", static_cast<std::int64_t>(dropped_));
  return doc;
}

}  // namespace cia::telemetry
