// A thread-safe metrics registry: the measurement substrate for the
// whole attestation pipeline.
//
// Three instrument kinds, all labelable (agent id, link address,
// component, outcome...):
//   * Counter   — monotonic, atomic; "how many rounds / drops / retries";
//   * Gauge     — last-write-wins level; "rounds since last success",
//                 "mirror staleness seconds";
//   * Histogram — fixed upper-bound buckets plus exact sum/count/min/max,
//                 with p50/p95/p99 estimated by linear interpolation
//                 inside the owning bucket (clamped to the observed
//                 min/max, so the estimate is always within one bucket
//                 width of the exact common/stats.hpp::percentile).
//
// The registry hands out stable references: a hot path resolves its
// instrument once and then updates it lock-free (counters/gauges) or
// under a per-instrument mutex (histograms). Components accept a
// `MetricsRegistry*` via `use_telemetry(...)` and treat nullptr as
// "telemetry off" — instrumentation must never change simulation
// behaviour, only observe it.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace cia::telemetry {

/// Label key/value pairs; canonicalized (sorted by key) on intern.
using Labels = std::vector<std::pair<std::string, std::string>>;

class Counter {
 public:
  void inc(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  void add(double d);
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Point-in-time state of one histogram (also the exporter wire shape).
struct HistogramSnapshot {
  std::vector<double> bounds;        // inclusive upper bounds; +inf implicit
  std::vector<std::uint64_t> counts; // bounds.size() + 1 buckets
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  // meaningful only when count > 0
  double max = 0.0;

  /// p-th percentile (0..100) estimated from the buckets.
  double percentile(double p) const;
};

class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);
  HistogramSnapshot snapshot() const;
  double percentile(double p) const { return snapshot().percentile(p); }

 private:
  std::vector<double> bounds_;
  mutable std::mutex mu_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Default bucket sets, tuned to the quantities the pipeline measures.
const std::vector<double>& latency_seconds_buckets();  // virtual seconds
const std::vector<double>& wallclock_micros_buckets(); // real microseconds
const std::vector<double>& count_buckets();            // small cardinalities
const std::vector<double>& bytes_buckets();

enum class MetricKind { kCounter, kGauge, kHistogram };

const char* metric_kind_name(MetricKind kind);

/// One exported sample: a (name, labels) series frozen at snapshot time.
struct MetricPoint {
  std::string name;
  Labels labels;  // sorted by key
  MetricKind kind = MetricKind::kCounter;
  double value = 0.0;  // counter / gauge
  HistogramSnapshot histogram;
};

/// A full registry dump, sorted by (name, labels) — deterministic, so
/// exports are diffable and goldenable.
struct MetricsSnapshot {
  std::vector<MetricPoint> points;

  /// The point for (name, labels), or nullptr.
  const MetricPoint* find(const std::string& name,
                          const Labels& labels = {}) const;

  /// Sum of every counter series of this family (across all labels).
  double counter_total(const std::string& name) const;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create. References stay valid for the registry's lifetime.
  /// A name must keep one kind: re-requesting it as a different
  /// instrument is a programming error (asserts in debug builds and
  /// returns a detached dummy instrument in release builds).
  Counter& counter(const std::string& name, const Labels& labels = {});
  Gauge& gauge(const std::string& name, const Labels& labels = {});
  Histogram& histogram(const std::string& name, const Labels& labels = {},
                       const std::vector<double>& bounds =
                           latency_seconds_buckets());

  MetricsSnapshot snapshot() const;

  /// Convenience readers for tests: 0 when the series does not exist.
  std::uint64_t counter_value(const std::string& name,
                              const Labels& labels = {}) const;
  double gauge_value(const std::string& name, const Labels& labels = {}) const;

 private:
  struct Cell {
    MetricKind kind = MetricKind::kCounter;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  using Key = std::pair<std::string, Labels>;

  Cell& intern(const std::string& name, const Labels& labels, MetricKind kind,
               const std::vector<double>* bounds);

  mutable std::mutex mu_;
  std::map<Key, Cell> cells_;
};

/// Route every kWarn/kError log line into
/// `cia_log_events_total{level,component}` on `registry`, so alert
/// counts and the operator-visible log can never diverge. Pass nullptr
/// to detach. (Installs the common/log observer hook; one registry at a
/// time.)
void attach_log_counter(MetricsRegistry* registry);

}  // namespace cia::telemetry
