#include "telemetry/metrics.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/log.hpp"

namespace cia::telemetry {

void Gauge::add(double d) {
  double cur = v_.load(std::memory_order_relaxed);
  while (!v_.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
  }
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const std::size_t bucket = static_cast<std::size_t>(it - bounds_.begin());
  std::lock_guard<std::mutex> lock(mu_);
  ++counts_[bucket];
  sum_ += v;
  if (count_ == 0 || v < min_) min_ = v;
  if (count_ == 0 || v > max_) max_ = v;
  ++count_;
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  std::lock_guard<std::mutex> lock(mu_);
  snap.counts = counts_;
  snap.count = count_;
  snap.sum = sum_;
  snap.min = min_;
  snap.max = max_;
  return snap;
}

double HistogramSnapshot::percentile(double p) const {
  if (count == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  // Match common/stats.hpp::percentile's rank convention (linear
  // interpolation over n-1 intervals), then interpolate linearly inside
  // the bucket that holds the rank.
  const double rank = p / 100.0 * static_cast<double>(count - 1);
  std::uint64_t before = 0;
  for (std::size_t b = 0; b < counts.size(); ++b) {
    if (counts[b] == 0) continue;
    const std::uint64_t after = before + counts[b];
    // rank <= count-1 < count == final `after`, so this always fires for
    // some bucket.
    if (rank < static_cast<double>(after)) {
      // Bucket b spans (lower, upper]; clamp the edges to observed
      // min/max so single-bucket distributions report exact values.
      double lower = b == 0 ? min : bounds[b - 1];
      double upper = b == bounds.size() ? max : bounds[b];
      lower = std::max(lower, min);
      upper = std::min(upper, max);
      if (upper < lower) upper = lower;
      // The bucket's samples occupy ranks [before, before+counts[b]-1];
      // a continuous rank can land in the gap before the next bucket's
      // first sample, so clamp — otherwise the interpolation overshoots
      // the bucket's upper edge and percentiles go non-monotonic.
      const double within =
          counts[b] <= 1
              ? 0.0
              : std::min(1.0, (rank - static_cast<double>(before)) /
                                  static_cast<double>(counts[b] - 1));
      return lower + within * (upper - lower);
    }
    before = after;
  }
  return max;
}

const std::vector<double>& latency_seconds_buckets() {
  static const std::vector<double> kBuckets = {0.5, 1,  2,   5,   10,  30,
                                               60,  120, 300, 600, 1800};
  return kBuckets;
}

const std::vector<double>& wallclock_micros_buckets() {
  static const std::vector<double> kBuckets = {10,    25,    50,    100,
                                               250,   500,   1000,  2500,
                                               5000,  10000, 25000, 100000};
  return kBuckets;
}

const std::vector<double>& count_buckets() {
  static const std::vector<double> kBuckets = {0, 1, 2, 3, 5, 8, 13, 21, 50, 100};
  return kBuckets;
}

const std::vector<double>& bytes_buckets() {
  static const std::vector<double> kBuckets = {256,    1024,    4096,   16384,
                                               65536,  262144,  1 << 20,
                                               4 << 20, 16 << 20};
  return kBuckets;
}

const char* metric_kind_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

namespace {

Labels canonical(Labels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

}  // namespace

const MetricPoint* MetricsSnapshot::find(const std::string& name,
                                         const Labels& labels) const {
  const Labels sorted = canonical(labels);
  for (const MetricPoint& p : points) {
    if (p.name == name && p.labels == sorted) return &p;
  }
  return nullptr;
}

double MetricsSnapshot::counter_total(const std::string& name) const {
  double total = 0.0;
  for (const MetricPoint& p : points) {
    if (p.name == name && p.kind == MetricKind::kCounter) total += p.value;
  }
  return total;
}

MetricsRegistry::Cell& MetricsRegistry::intern(
    const std::string& name, const Labels& labels, MetricKind kind,
    const std::vector<double>* bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = cells_.try_emplace({name, canonical(labels)});
  Cell& cell = it->second;
  if (inserted) {
    cell.kind = kind;
    switch (kind) {
      case MetricKind::kCounter:
        cell.counter = std::make_unique<Counter>();
        break;
      case MetricKind::kGauge:
        cell.gauge = std::make_unique<Gauge>();
        break;
      case MetricKind::kHistogram:
        cell.histogram = std::make_unique<Histogram>(*bounds);
        break;
    }
  }
  assert(cell.kind == kind && "metric re-registered as a different kind");
  return cell;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const Labels& labels) {
  Cell& cell = intern(name, labels, MetricKind::kCounter, nullptr);
  if (!cell.counter) {  // kind clash in a release build: detached dummy
    static Counter dummy;
    return dummy;
  }
  return *cell.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const Labels& labels) {
  Cell& cell = intern(name, labels, MetricKind::kGauge, nullptr);
  if (!cell.gauge) {
    static Gauge dummy;
    return dummy;
  }
  return *cell.gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const Labels& labels,
                                      const std::vector<double>& bounds) {
  Cell& cell = intern(name, labels, MetricKind::kHistogram, &bounds);
  if (!cell.histogram) {
    static Histogram dummy({1.0});
    return dummy;
  }
  return *cell.histogram;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  snap.points.reserve(cells_.size());
  for (const auto& [key, cell] : cells_) {
    MetricPoint point;
    point.name = key.first;
    point.labels = key.second;
    point.kind = cell.kind;
    switch (cell.kind) {
      case MetricKind::kCounter:
        point.value = static_cast<double>(cell.counter->value());
        break;
      case MetricKind::kGauge:
        point.value = cell.gauge->value();
        break;
      case MetricKind::kHistogram:
        point.histogram = cell.histogram->snapshot();
        break;
    }
    snap.points.push_back(std::move(point));
  }
  return snap;
}

std::uint64_t MetricsRegistry::counter_value(const std::string& name,
                                             const Labels& labels) const {
  const Labels sorted = canonical(labels);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cells_.find({name, sorted});
  if (it == cells_.end() || it->second.kind != MetricKind::kCounter) return 0;
  return it->second.counter->value();
}

double MetricsRegistry::gauge_value(const std::string& name,
                                    const Labels& labels) const {
  const Labels sorted = canonical(labels);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cells_.find({name, sorted});
  if (it == cells_.end() || it->second.kind != MetricKind::kGauge) return 0.0;
  return it->second.gauge->value();
}

void attach_log_counter(MetricsRegistry* registry) {
  if (!registry) {
    set_log_observer(nullptr);
    return;
  }
  set_log_observer([registry](LogLevel level, const std::string& component,
                              const std::string& message) {
    (void)message;
    registry
        ->counter("cia_log_events_total",
                  {{"level", level == LogLevel::kError ? "error" : "warn"},
                   {"component", component}})
        .inc();
  });
}

}  // namespace cia::telemetry
