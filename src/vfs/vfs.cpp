#include "vfs/vfs.hpp"

#include <algorithm>
#include <cassert>

#include "common/strutil.hpp"

namespace cia::vfs {

std::uint32_t fs_magic(FsType type) {
  switch (type) {
    case FsType::kExt4: return 0xEF53;
    case FsType::kTmpfs: return 0x01021994;
    case FsType::kProcfs: return 0x9fa0;
    case FsType::kSysfs: return 0x62656572;
    case FsType::kDebugfs: return 0x64626720;
    case FsType::kRamfs: return 0x858458f6;
    case FsType::kSecurityfs: return 0x73636673;
    case FsType::kOverlayfs: return 0x794c7630;
    case FsType::kSquashfs: return 0x73717368;
  }
  return 0;
}

const char* fs_type_name(FsType type) {
  switch (type) {
    case FsType::kExt4: return "ext4";
    case FsType::kTmpfs: return "tmpfs";
    case FsType::kProcfs: return "procfs";
    case FsType::kSysfs: return "sysfs";
    case FsType::kDebugfs: return "debugfs";
    case FsType::kRamfs: return "ramfs";
    case FsType::kSecurityfs: return "securityfs";
    case FsType::kOverlayfs: return "overlayfs";
    case FsType::kSquashfs: return "squashfs";
  }
  return "?";
}

Vfs::Vfs() {
  FsInstance root;
  root.mount = Mount{"/", FsType::kExt4, "fs-root-0", false};
  fses_.push_back(root);
  Node root_dir;
  root_dir.is_dir = true;
  nodes_["/"] = root_dir;
}

bool Vfs::valid_abs_path(const std::string& path) {
  if (path.empty() || path[0] != '/') return false;
  if (path.size() > 1 && path.back() == '/') return false;
  if (path.find("//") != std::string::npos) return false;
  return true;
}

std::string Vfs::parent_of(const std::string& path) {
  const std::size_t pos = path.rfind('/');
  if (pos == 0) return "/";
  return path.substr(0, pos);
}

std::size_t Vfs::mount_index(const std::string& path) const {
  std::size_t best = 0;
  std::size_t best_len = 0;
  for (std::size_t i = 0; i < fses_.size(); ++i) {
    const std::string& mp = fses_[i].mount.mount_point;
    const bool matches =
        mp == "/" || path == mp ||
        (starts_with(path, mp) && path.size() > mp.size() &&
         path[mp.size()] == '/');
    if (matches && mp.size() >= best_len) {
      best = i;
      best_len = mp.size();
    }
  }
  return best;
}

const Mount& Vfs::mount_of(const std::string& path) const {
  return fses_[mount_index(path)].mount;
}

std::vector<Mount> Vfs::mounts() const {
  std::vector<Mount> out;
  out.reserve(fses_.size());
  for (const auto& fs : fses_) out.push_back(fs.mount);
  return out;
}

std::string Vfs::ima_visible_path(const std::string& path) const {
  const Mount& m = mount_of(path);
  if (!m.namespace_truncated || m.mount_point == "/") return path;
  if (path == m.mount_point) return "/";
  return path.substr(m.mount_point.size());
}

Status Vfs::mount(const std::string& path, FsType type,
                  bool namespace_truncated) {
  if (!valid_abs_path(path) || path == "/") {
    return err(Errc::kInvalidArgument, "bad mount point: " + path);
  }
  for (const auto& fs : fses_) {
    if (fs.mount.mount_point == path) {
      return err(Errc::kAlreadyExists, "already mounted: " + path);
    }
  }
  if (Status s = mkdir_p(path); !s.ok()) return s;
  FsInstance inst;
  inst.mount = Mount{path, type, strformat("fs-%s-%llu", fs_type_name(type),
                                           static_cast<unsigned long long>(
                                               ++uuid_counter_)),
                     namespace_truncated};
  fses_.push_back(inst);
  return Status::ok_status();
}

Status Vfs::unmount(const std::string& path) {
  for (std::size_t i = 1; i < fses_.size(); ++i) {
    if (fses_[i].mount.mount_point == path) {
      // Drop every node strictly under the mount point.
      for (auto it = nodes_.begin(); it != nodes_.end();) {
        if (it->first.size() > path.size() && starts_with(it->first, path) &&
            it->first[path.size()] == '/') {
          it = nodes_.erase(it);
        } else {
          ++it;
        }
      }
      fses_.erase(fses_.begin() + static_cast<std::ptrdiff_t>(i));
      return Status::ok_status();
    }
  }
  return err(Errc::kNotFound, "not mounted: " + path);
}

Status Vfs::mkdir_p(const std::string& path) {
  if (!valid_abs_path(path)) {
    return err(Errc::kInvalidArgument, "bad path: " + path);
  }
  if (path == "/") return Status::ok_status();
  const auto parts = split(path.substr(1), '/');
  std::string cur;
  for (const auto& part : parts) {
    cur += "/" + part;
    auto it = nodes_.find(cur);
    if (it == nodes_.end()) {
      Node dir;
      dir.is_dir = true;
      nodes_[cur] = dir;
    } else if (!it->second.is_dir) {
      return err(Errc::kAlreadyExists, "file in the way: " + cur);
    }
  }
  return Status::ok_status();
}

Status Vfs::create_file(const std::string& path, const Bytes& content,
                        bool executable, std::uint64_t size) {
  if (!valid_abs_path(path)) {
    return err(Errc::kInvalidArgument, "bad path: " + path);
  }
  if (nodes_.count(path)) {
    return err(Errc::kAlreadyExists, "exists: " + path);
  }
  if (Status s = mkdir_p(parent_of(path)); !s.ok()) return s;
  FsInstance& fs = fses_[mount_index(path)];
  auto data = std::make_shared<FileData>();
  data->id = FileIdentity{fs.mount.uuid, fs.next_inode++};
  data->executable = executable;
  data->size = size ? size : content.size();
  data->content = content;
  Node node;
  node.is_dir = false;
  node.data = std::move(data);
  nodes_[path] = std::move(node);
  return Status::ok_status();
}

Status Vfs::write_file(const std::string& path, const Bytes& content,
                       std::optional<std::uint64_t> size) {
  auto it = nodes_.find(path);
  if (it == nodes_.end() || it->second.is_dir) {
    return err(Errc::kNotFound, "no such file: " + path);
  }
  it->second.data->content = content;
  it->second.data->size = size.value_or(content.size());
  return Status::ok_status();
}

Status Vfs::chmod_exec(const std::string& path, bool executable) {
  auto it = nodes_.find(path);
  if (it == nodes_.end() || it->second.is_dir) {
    return err(Errc::kNotFound, "no such file: " + path);
  }
  it->second.data->executable = executable;
  return Status::ok_status();
}

Status Vfs::set_ima_xattr(const std::string& path, const Bytes& value) {
  auto it = nodes_.find(path);
  if (it == nodes_.end() || it->second.is_dir) {
    return err(Errc::kNotFound, "no such file: " + path);
  }
  it->second.data->ima_xattr = value;
  return Status::ok_status();
}

Result<Bytes> Vfs::ima_xattr(const std::string& path) const {
  auto it = nodes_.find(path);
  if (it == nodes_.end() || it->second.is_dir) {
    return err(Errc::kNotFound, "no such file: " + path);
  }
  return it->second.data->ima_xattr;
}

Status Vfs::rename(const std::string& src, const std::string& dst) {
  auto it = nodes_.find(src);
  if (it == nodes_.end() || it->second.is_dir) {
    return err(Errc::kNotFound, "no such file: " + src);
  }
  if (!valid_abs_path(dst)) {
    return err(Errc::kInvalidArgument, "bad path: " + dst);
  }
  if (nodes_.count(dst)) {
    return err(Errc::kAlreadyExists, "destination exists: " + dst);
  }
  if (Status s = mkdir_p(parent_of(dst)); !s.ok()) return s;

  Node node = it->second;
  const std::size_t src_fs = mount_index(src);
  const std::size_t dst_fs = mount_index(dst);
  if (src_fs != dst_fs) {
    // Cross-filesystem move: the data is copied into a fresh inode, so the
    // file's identity changes (IMA would re-measure it). The copy also
    // detaches from any hard links left behind.
    FsInstance& fs = fses_[dst_fs];
    auto copy = std::make_shared<FileData>(*node.data);
    copy->id = FileIdentity{fs.mount.uuid, fs.next_inode++};
    node.data = std::move(copy);
  }
  nodes_.erase(it);
  nodes_[dst] = std::move(node);
  return Status::ok_status();
}

Status Vfs::link(const std::string& src, const std::string& dst) {
  auto it = nodes_.find(src);
  if (it == nodes_.end() || it->second.is_dir) {
    return err(Errc::kNotFound, "no such file: " + src);
  }
  if (!valid_abs_path(dst)) {
    return err(Errc::kInvalidArgument, "bad path: " + dst);
  }
  if (nodes_.count(dst)) {
    return err(Errc::kAlreadyExists, "destination exists: " + dst);
  }
  if (mount_index(src) != mount_index(dst)) {
    return err(Errc::kInvalidArgument,
               "link across filesystems (EXDEV): " + src + " -> " + dst);
  }
  if (Status s = mkdir_p(parent_of(dst)); !s.ok()) return s;
  Node node;
  node.is_dir = false;
  node.data = it->second.data;  // same inode
  nodes_[dst] = std::move(node);
  return Status::ok_status();
}

Result<std::size_t> Vfs::link_count(const std::string& path) const {
  auto it = nodes_.find(path);
  if (it == nodes_.end() || it->second.is_dir) {
    return err(Errc::kNotFound, "no such file: " + path);
  }
  // The shared_ptr use count is exactly the number of directory entries.
  return static_cast<std::size_t>(it->second.data.use_count());
}

Status Vfs::unlink(const std::string& path) {
  auto it = nodes_.find(path);
  if (it == nodes_.end() || it->second.is_dir) {
    return err(Errc::kNotFound, "no such file: " + path);
  }
  nodes_.erase(it);
  return Status::ok_status();
}

Status Vfs::remove_tree(const std::string& path) {
  if (!exists(path)) return err(Errc::kNotFound, "no such path: " + path);
  for (auto it = nodes_.begin(); it != nodes_.end();) {
    const std::string& p = it->first;
    if (p == path || (p.size() > path.size() && starts_with(p, path) &&
                      p[path.size()] == '/')) {
      it = nodes_.erase(it);
    } else {
      ++it;
    }
  }
  return Status::ok_status();
}

bool Vfs::exists(const std::string& path) const { return nodes_.count(path) > 0; }

bool Vfs::is_dir(const std::string& path) const {
  auto it = nodes_.find(path);
  return it != nodes_.end() && it->second.is_dir;
}

bool Vfs::is_file(const std::string& path) const {
  auto it = nodes_.find(path);
  return it != nodes_.end() && !it->second.is_dir;
}

Result<Stat> Vfs::stat(const std::string& path) const {
  auto it = nodes_.find(path);
  if (it == nodes_.end()) {
    return err(Errc::kNotFound, "no such path: " + path);
  }
  const Node& n = it->second;
  Stat st;
  st.is_dir = n.is_dir;
  st.fs_type = mount_of(path).type;
  if (!n.is_dir) {
    st.id = n.data->id;
    st.executable = n.data->executable;
    st.size = n.data->size;
    st.content_hash = crypto::sha256(n.data->content);
  }
  return st;
}

Result<Bytes> Vfs::read_file(const std::string& path) const {
  auto it = nodes_.find(path);
  if (it == nodes_.end() || it->second.is_dir) {
    return err(Errc::kNotFound, "no such file: " + path);
  }
  return it->second.data->content;
}

std::vector<std::string> Vfs::list_files(const std::string& prefix) const {
  std::vector<std::string> out;
  for (const auto& [path, node] : nodes_) {
    if (node.is_dir) continue;
    if (prefix == "/" || path == prefix ||
        (starts_with(path, prefix) && path.size() > prefix.size() &&
         path[prefix.size()] == '/')) {
      out.push_back(path);
    }
  }
  return out;
}

std::size_t Vfs::file_count() const {
  std::size_t n = 0;
  for (const auto& [path, node] : nodes_) {
    (void)path;
    if (!node.is_dir) ++n;
  }
  return n;
}

}  // namespace cia::vfs
