// An in-memory virtual filesystem with mount points and inode identity.
//
// The VFS is deliberately faithful to the pieces of Linux semantics that
// the paper's findings hinge on:
//   * every mounted filesystem has a type (ext4, tmpfs, procfs, ...) whose
//     magic number IMA policy rules match on (problem P3);
//   * files have stable inode numbers; rename *within* one filesystem
//     preserves the inode, rename *across* filesystems allocates a new
//     one (problem P4);
//   * mounts can be namespace-truncated (SNAP squashfs images), so the
//     path IMA observes lacks the host-side prefix (the SNAP false
//     positive in §III-B).
//
// File content is stored as bytes and hashed with SHA-256; a separate
// declared size feeds the update-cost model without storing megabytes.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "common/types.hpp"
#include "crypto/sha256.hpp"

namespace cia::vfs {

/// Filesystem types with their (simulated) superblock magic.
enum class FsType {
  kExt4,
  kTmpfs,
  kProcfs,
  kSysfs,
  kDebugfs,
  kRamfs,
  kSecurityfs,
  kOverlayfs,
  kSquashfs,
};

/// Superblock magic number for a filesystem type (matches Linux values).
std::uint32_t fs_magic(FsType type);

/// Human-readable filesystem type name.
const char* fs_type_name(FsType type);

using InodeNum = std::uint64_t;

/// Identity of a file independent of its path: which filesystem it lives
/// on plus its inode number. This is exactly the key IMA's measurement
/// cache uses, which is what makes P4 possible.
struct FileIdentity {
  std::string fs_uuid;
  InodeNum inode = 0;

  bool operator==(const FileIdentity&) const = default;
  auto operator<=>(const FileIdentity&) const = default;
};

/// Metadata returned by stat().
struct Stat {
  FileIdentity id;
  FsType fs_type = FsType::kExt4;
  bool is_dir = false;
  bool executable = false;
  std::uint64_t size = 0;          // declared on-disk size in bytes
  crypto::Digest content_hash{};   // SHA-256 of content (files only)
};

/// A mounted filesystem instance.
struct Mount {
  std::string mount_point;  // absolute path, "/" for the root fs
  FsType type = FsType::kExt4;
  std::string uuid;
  // SNAP/squashfs container mounts: IMA sees paths relative to the mount
  // root instead of the host path (§III-B "SNAPs").
  bool namespace_truncated = false;
};

/// The virtual filesystem of one simulated machine.
class Vfs {
 public:
  /// Creates a VFS with an ext4 root mounted at "/".
  Vfs();

  // ------------------------------------------------------------- mounts

  /// Mount a new filesystem at `path` (creates the mountpoint directory).
  Status mount(const std::string& path, FsType type,
               bool namespace_truncated = false);

  /// Remove a mount and all files on it.
  Status unmount(const std::string& path);

  /// The mount governing `path` (longest-prefix match).
  const Mount& mount_of(const std::string& path) const;

  /// All current mounts.
  std::vector<Mount> mounts() const;

  /// The path as observed by IMA: host path unless the governing mount is
  /// namespace-truncated, in which case the mount prefix is stripped.
  std::string ima_visible_path(const std::string& path) const;

  // -------------------------------------------------------------- files

  /// Create all missing directories along `path`.
  Status mkdir_p(const std::string& path);

  /// Create a file (parent directories are created as needed).
  /// Fails if the path already exists.
  Status create_file(const std::string& path, const Bytes& content,
                     bool executable, std::uint64_t size = 0);

  /// Overwrite an existing file's content in place (same inode).
  Status write_file(const std::string& path, const Bytes& content,
                    std::optional<std::uint64_t> size = std::nullopt);

  /// Toggle the executable bit.
  Status chmod_exec(const std::string& path, bool executable);

  /// Rename/move. Within one filesystem the inode is preserved; across
  /// filesystems the content is copied to a fresh inode (as `mv` does).
  Status rename(const std::string& src, const std::string& dst);

  /// Hard link: `dst` becomes another name for `src`'s inode. Both paths
  /// share content, mode, and xattrs; writes through either are visible
  /// through both. Fails across filesystems, exactly like link(2).
  Status link(const std::string& src, const std::string& dst);

  /// Number of directory entries referencing `path`'s inode.
  Result<std::size_t> link_count(const std::string& path) const;

  /// Delete a file.
  Status unlink(const std::string& path);

  /// Set/get the security.ima extended attribute (a file signature used
  /// by IMA appraisal). The xattr is inode metadata: it survives renames
  /// and is deliberately NOT cleared by content writes — a stale
  /// signature simply fails verification, as on a real system.
  Status set_ima_xattr(const std::string& path, const Bytes& value);
  Result<Bytes> ima_xattr(const std::string& path) const;

  /// Delete a directory tree (all files under `path` plus the directory).
  Status remove_tree(const std::string& path);

  // ------------------------------------------------------------ queries

  bool exists(const std::string& path) const;
  bool is_dir(const std::string& path) const;
  bool is_file(const std::string& path) const;

  Result<Stat> stat(const std::string& path) const;
  Result<Bytes> read_file(const std::string& path) const;

  /// All file paths under `prefix` (inclusive), sorted.
  std::vector<std::string> list_files(const std::string& prefix) const;

  /// Number of regular files.
  std::size_t file_count() const;

 private:
  /// Inode payload, shared between hard links.
  struct FileData {
    FileIdentity id;
    bool executable = false;
    std::uint64_t size = 0;
    Bytes content;
    Bytes ima_xattr;  // security.ima (empty = absent)
  };

  struct Node {
    bool is_dir = false;
    std::shared_ptr<FileData> data;  // files only
  };

  struct FsInstance {
    Mount mount;
    InodeNum next_inode = 2;  // 1 is the root inode by convention
  };

  // Index into fses_ of the mount governing `path`.
  std::size_t mount_index(const std::string& path) const;

  static bool valid_abs_path(const std::string& path);
  static std::string parent_of(const std::string& path);

  std::vector<FsInstance> fses_;
  std::map<std::string, Node> nodes_;  // absolute path -> node
  std::uint64_t uuid_counter_ = 0;
};

}  // namespace cia::vfs
