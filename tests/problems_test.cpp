// Mechanism-level tests for the paper's five problems: each P is
// exercised in isolation through the full attestation pipeline, and each
// §IV-C mitigation is shown to close exactly its own hole.
#include <gtest/gtest.h>

#include "experiments/testbed.hpp"

namespace cia::experiments {
namespace {

struct ProblemRig {
  explicit ProblemRig(bool mitigated) : bed(make_options(mitigated)) {
    EXPECT_TRUE(bed.enroll().ok());
    keylime::RuntimePolicy policy = scan_machine_policy(bed.machine, false);
    if (!mitigated) policy.exclude("/tmp/*");
    EXPECT_TRUE(bed.verifier.set_policy(bed.agent_id(), policy).ok());
    if (mitigated) {
      bed.machine.register_sec_aware_interpreter("/usr/bin/bash");
    }
    bed.attest();
  }

  static TestbedOptions make_options(bool mitigated) {
    TestbedOptions options;
    options.provision_extra = 5;
    options.archive.base_package_count = 60;
    if (mitigated) {
      options.ima_policy = ima::ImaPolicy::enriched();
      options.ima_config.reevaluate_on_path_change = true;
      options.ima_config.script_exec_control = true;
      options.verifier_config.continue_on_failure = true;
    }
    return options;
  }

  bool alerted_on(const std::string& fragment) const {
    for (const auto& alert : bed.verifier.alerts()) {
      if (alert.path.find(fragment) != std::string::npos) return true;
    }
    return false;
  }

  Testbed bed;
};

// --------------------------------------------------------------------- P1

TEST(ProblemP1, TmpExclusionAloneHidesAMeasuredExecution) {
  ProblemRig rig(/*mitigated=*/false);
  ASSERT_TRUE(rig.bed.machine.fs()
                  .create_file("/tmp/payload", to_bytes("elf:p1"), true)
                  .ok());
  ASSERT_TRUE(rig.bed.machine.exec("/tmp/payload").ok());
  rig.bed.attest();

  // The execution IS in the measurement list (IMA measures root-fs /tmp)…
  bool measured = false;
  for (const auto& e : rig.bed.machine.ima().log()) {
    measured |= e.path == "/tmp/payload";
  }
  EXPECT_TRUE(measured) << "/tmp lives on the root fs and is measured";
  // …but Keylime's exclude glob silences it.
  EXPECT_FALSE(rig.alerted_on("payload"));
}

TEST(ProblemP1, EnrichedPolicyClosesTheHole) {
  ProblemRig rig(/*mitigated=*/true);
  ASSERT_TRUE(rig.bed.machine.fs()
                  .create_file("/tmp/payload", to_bytes("elf:p1"), true)
                  .ok());
  ASSERT_TRUE(rig.bed.machine.exec("/tmp/payload").ok());
  rig.bed.attest();
  EXPECT_TRUE(rig.alerted_on("payload"));
}

// --------------------------------------------------------------------- P2

TEST(ProblemP2, HaltedEvaluationBlindsTheVerifierToLaterEntries) {
  ProblemRig rig(/*mitigated=*/false);
  // Benign-looking decoy first.
  ASSERT_TRUE(rig.bed.machine.fs()
                  .create_file("/usr/local/bin/decoy", to_bytes("elf:d"), true)
                  .ok());
  ASSERT_TRUE(rig.bed.machine.exec("/usr/local/bin/decoy").ok());
  rig.bed.attest();  // FP fires; polling stops
  ASSERT_EQ(rig.bed.verifier.state(rig.bed.agent_id()),
            keylime::AgentState::kFailed);

  // The real payload runs in a fully monitored location.
  ASSERT_TRUE(rig.bed.machine.fs()
                  .create_file("/usr/bin/implant", to_bytes("elf:i"), true)
                  .ok());
  ASSERT_TRUE(rig.bed.machine.exec("/usr/bin/implant").ok());
  for (int i = 0; i < 5; ++i) rig.bed.attest();
  EXPECT_FALSE(rig.alerted_on("implant"))
      << "P2: the halt leaves the implant's entry unevaluated";
}

TEST(ProblemP2, ContinueOnFailureEvaluatesTheImplant) {
  ProblemRig rig(/*mitigated=*/true);
  ASSERT_TRUE(rig.bed.machine.fs()
                  .create_file("/usr/local/bin/decoy", to_bytes("elf:d"), true)
                  .ok());
  ASSERT_TRUE(rig.bed.machine.exec("/usr/local/bin/decoy").ok());
  rig.bed.attest();
  ASSERT_TRUE(rig.bed.machine.fs()
                  .create_file("/usr/bin/implant", to_bytes("elf:i"), true)
                  .ok());
  ASSERT_TRUE(rig.bed.machine.exec("/usr/bin/implant").ok());
  rig.bed.attest();
  EXPECT_TRUE(rig.alerted_on("implant"));
}

// --------------------------------------------------------------------- P3

TEST(ProblemP3, TmpfsExecutionProducesNoMeasurementAtAll) {
  ProblemRig rig(/*mitigated=*/false);
  ASSERT_TRUE(rig.bed.machine.fs()
                  .create_file("/dev/shm/payload", to_bytes("elf:p3"), true)
                  .ok());
  const std::size_t log_before = rig.bed.machine.ima().log().size();
  ASSERT_TRUE(rig.bed.machine.exec("/dev/shm/payload").ok());
  EXPECT_EQ(rig.bed.machine.ima().log().size(), log_before)
      << "P3: the stock IMA policy skips tmpfs by fsmagic";
  rig.bed.attest();
  EXPECT_FALSE(rig.alerted_on("payload"));
}

TEST(ProblemP3, EnrichedImaPolicyMeasuresTmpfs) {
  ProblemRig rig(/*mitigated=*/true);
  ASSERT_TRUE(rig.bed.machine.fs()
                  .create_file("/dev/shm/payload", to_bytes("elf:p3"), true)
                  .ok());
  ASSERT_TRUE(rig.bed.machine.exec("/dev/shm/payload").ok());
  rig.bed.attest();
  EXPECT_TRUE(rig.alerted_on("payload"));
}

// --------------------------------------------------------------------- P4

TEST(ProblemP4, StagedMoveIsInvisibleWithStockCacheAndExclude) {
  ProblemRig rig(/*mitigated=*/false);
  ASSERT_TRUE(rig.bed.machine.fs()
                  .create_file("/tmp/stage", to_bytes("elf:p4"), true)
                  .ok());
  ASSERT_TRUE(rig.bed.machine.exec("/tmp/stage").ok());  // measured, excluded
  ASSERT_TRUE(rig.bed.machine.fs().rename("/tmp/stage", "/usr/bin/stage").ok());
  ASSERT_TRUE(rig.bed.machine.exec("/usr/bin/stage").ok());  // cached inode
  rig.bed.attest();
  EXPECT_FALSE(rig.alerted_on("stage"))
      << "P4: no fresh measurement after the same-fs move";
}

TEST(ProblemP4, PathAwareCacheRemeasuresAtTheDestination) {
  ProblemRig rig(/*mitigated=*/true);
  ASSERT_TRUE(rig.bed.machine.fs()
                  .create_file("/tmp/stage", to_bytes("elf:p4"), true)
                  .ok());
  ASSERT_TRUE(rig.bed.machine.exec("/tmp/stage").ok());
  ASSERT_TRUE(rig.bed.machine.fs().rename("/tmp/stage", "/usr/bin/stage").ok());
  ASSERT_TRUE(rig.bed.machine.exec("/usr/bin/stage").ok());
  rig.bed.attest();
  EXPECT_TRUE(rig.alerted_on("/usr/bin/stage"));
}

TEST(ProblemP4, HardLinkVariantAlsoEvades) {
  // The same cache mechanics work without ever moving the file: hard-link
  // the staged payload into the monitored directory — identical inode,
  // no fresh measurement, and the staging copy can even stay in place.
  ProblemRig rig(/*mitigated=*/false);
  ASSERT_TRUE(rig.bed.machine.fs()
                  .create_file("/tmp/stage", to_bytes("elf:p4l"), true)
                  .ok());
  ASSERT_TRUE(rig.bed.machine.exec("/tmp/stage").ok());
  ASSERT_TRUE(rig.bed.machine.fs().link("/tmp/stage", "/usr/bin/stage").ok());
  ASSERT_TRUE(rig.bed.machine.exec("/usr/bin/stage").ok());
  rig.bed.attest();
  EXPECT_FALSE(rig.alerted_on("stage"));
}

TEST(ProblemP4, PathAwareCacheCatchesTheHardLinkVariant) {
  ProblemRig rig(/*mitigated=*/true);
  ASSERT_TRUE(rig.bed.machine.fs()
                  .create_file("/tmp/stage", to_bytes("elf:p4l"), true)
                  .ok());
  ASSERT_TRUE(rig.bed.machine.exec("/tmp/stage").ok());
  ASSERT_TRUE(rig.bed.machine.fs().link("/tmp/stage", "/usr/bin/stage").ok());
  ASSERT_TRUE(rig.bed.machine.exec("/usr/bin/stage").ok());
  rig.bed.attest();
  EXPECT_TRUE(rig.alerted_on("/usr/bin/stage"));
}

// --------------------------------------------------------------------- P5

TEST(ProblemP5, InterpreterInvocationAttestsOnlyTheInterpreter) {
  ProblemRig rig(/*mitigated=*/false);
  ASSERT_TRUE(rig.bed.machine.fs()
                  .create_file("/home/user/bot.sh", to_bytes("sh:p5"), false)
                  .ok());
  ASSERT_TRUE(rig.bed.machine
                  .exec_via_interpreter("/usr/bin/bash", "/home/user/bot.sh")
                  .ok());
  rig.bed.attest();
  EXPECT_FALSE(rig.alerted_on("bot.sh"));
  EXPECT_EQ(rig.bed.verifier.state(rig.bed.agent_id()),
            keylime::AgentState::kAttesting)
      << "only the in-policy interpreter was attested";
}

TEST(ProblemP5, ShebangInvocationAttestsTheScript) {
  ProblemRig rig(/*mitigated=*/false);
  ASSERT_TRUE(rig.bed.machine.fs()
                  .create_file("/home/user/bot.sh",
                               to_bytes("#!/usr/bin/bash\nsh:p5"), true)
                  .ok());
  ASSERT_TRUE(rig.bed.machine.exec("/home/user/bot.sh").ok());
  rig.bed.attest();
  EXPECT_TRUE(rig.alerted_on("bot.sh"))
      << "./script measures the script itself (the good case of P5)";
}

TEST(ProblemP5, SecAwareInterpreterClosesTheHole) {
  ProblemRig rig(/*mitigated=*/true);
  ASSERT_TRUE(rig.bed.machine.fs()
                  .create_file("/home/user/bot.sh", to_bytes("sh:p5"), false)
                  .ok());
  ASSERT_TRUE(rig.bed.machine
                  .exec_via_interpreter("/usr/bin/bash", "/home/user/bot.sh")
                  .ok());
  rig.bed.attest();
  EXPECT_TRUE(rig.alerted_on("bot.sh"));
}

TEST(ProblemP5, NonOptInInterpreterRemainsAGapEvenMitigated) {
  ProblemRig rig(/*mitigated=*/true);  // python3 is NOT registered SEC-aware
  ASSERT_TRUE(rig.bed.machine.fs()
                  .create_file("/home/user/bot.py", to_bytes("py:p5"), false)
                  .ok());
  ASSERT_TRUE(rig.bed.machine
                  .exec_via_interpreter("/usr/bin/python3", "/home/user/bot.py")
                  .ok());
  rig.bed.attest();
  EXPECT_FALSE(rig.alerted_on("bot.py"))
      << "P5 cannot be fully mitigated without every interpreter opting in "
         "— the Aoyama argument";
}

}  // namespace
}  // namespace cia::experiments
