// Unit tests for the dynamic policy generator and update orchestrator —
// the paper's §III-C contribution.
#include <gtest/gtest.h>

#include "common/strutil.hpp"
#include "core/policy_analyzer.hpp"
#include "core/policy_generator.hpp"
#include "core/update_orchestrator.hpp"
#include "experiments/testbed.hpp"

namespace cia::core {
namespace {

using experiments::Testbed;
using experiments::TestbedOptions;

pkg::ArchiveConfig small_archive() {
  pkg::ArchiveConfig cfg;
  cfg.base_package_count = 120;
  return cfg;
}

struct GeneratorFixture : ::testing::Test {
  GeneratorFixture() : archive(small_archive(), 11), mirror(&archive) {
    mirror.sync(0);
  }

  pkg::Archive archive;
  pkg::Mirror mirror;
  GeneratorConfig config;
};

TEST_F(GeneratorFixture, BaseCoversEveryMirrorExecutable) {
  DynamicPolicyGenerator generator(&mirror, config);
  const std::string kver = archive.current_kernel_version();
  const auto policy = generator.generate_base(kver);

  for (const auto& [name, pkg] : mirror.index()) {
    if (!pkg.kernel_version.empty() && pkg.kernel_version != kver) continue;
    for (const auto& f : pkg.files) {
      if (!f.executable) continue;
      EXPECT_EQ(policy.check(f.path, f.content_hash(name)),
                keylime::PolicyMatch::kAllowed)
          << name << " " << f.path;
    }
  }
}

TEST_F(GeneratorFixture, BaseStatsAccountEveryPackage) {
  DynamicPolicyGenerator generator(&mirror, config);
  PolicyUpdateStats stats;
  const auto policy =
      generator.generate_base(archive.current_kernel_version(), &stats);
  EXPECT_EQ(stats.lines_added, policy.entry_count());
  EXPECT_EQ(stats.packages_processed,
            stats.packages_high_priority + stats.packages_low_priority);
  EXPECT_GT(stats.seconds, 0.0);
}

TEST_F(GeneratorFixture, RefreshWithNoChangesIsEmpty) {
  DynamicPolicyGenerator generator(&mirror, config);
  auto policy = generator.generate_base(archive.current_kernel_version());
  const auto stats =
      generator.refresh(policy, archive.current_kernel_version());
  EXPECT_EQ(stats.packages_processed, 0u);
  EXPECT_EQ(stats.lines_added, 0u);
}

TEST_F(GeneratorFixture, RefreshAppendsOnlyChangedExecutables) {
  DynamicPolicyGenerator generator(&mirror, config);
  auto policy = generator.generate_base(archive.current_kernel_version());
  const std::size_t before = policy.entry_count();

  pkg::ReleaseEvent ev;
  for (int day = 0; ev.updated.empty() && day < 60; ++day) {
    ev = archive.release_day(day);
  }
  ASSERT_FALSE(ev.updated.empty());
  mirror.sync(kDay);

  const auto stats =
      generator.refresh(policy, archive.current_kernel_version());
  EXPECT_GT(stats.lines_added, 0u);
  EXPECT_EQ(policy.entry_count(), before + stats.lines_added);

  // Old hashes are retained for update-window consistency...
  const pkg::Package* updated = archive.find(ev.updated[0]);
  ASSERT_NE(updated, nullptr);
  bool new_hash_allowed = true;
  for (const auto& f : updated->files) {
    if (!f.executable) continue;
    new_hash_allowed &= policy.check(f.path, f.content_hash(updated->name)) ==
                        keylime::PolicyMatch::kAllowed;
  }
  EXPECT_TRUE(new_hash_allowed);
}

TEST_F(GeneratorFixture, DedupDropsSupersededHashes) {
  DynamicPolicyGenerator generator(&mirror, config);
  auto policy = generator.generate_base(archive.current_kernel_version());
  pkg::ReleaseEvent ev;
  for (int day = 0; ev.updated.empty() && day < 60; ++day) {
    ev = archive.release_day(day);
  }
  ASSERT_FALSE(ev.updated.empty());
  mirror.sync(kDay);
  const auto stats =
      generator.refresh(policy, archive.current_kernel_version());
  ASSERT_GT(stats.lines_added, 0u);
  EXPECT_GT(policy.dedup(), 0u);
}

TEST_F(GeneratorFixture, OtherKernelsAreNotAdmitted) {
  pkg::ArchiveConfig cfg = small_archive();
  cfg.kernel_release_prob = 1.0;
  pkg::Archive kernel_archive(cfg, 12);
  const std::string old_kver = kernel_archive.current_kernel_version();
  (void)kernel_archive.release_day(0);  // releases a new kernel
  const std::string new_kver = kernel_archive.current_kernel_version();
  ASSERT_NE(old_kver, new_kver);
  pkg::Mirror m(&kernel_archive);
  m.sync(0);

  DynamicPolicyGenerator generator(&m, config);
  PolicyUpdateStats stats;
  const auto policy = generator.generate_base(old_kver, &stats);
  EXPECT_GT(stats.kernel_packages_skipped, 0u);
  const pkg::Package* mods = m.find("linux-modules-" + new_kver);
  ASSERT_NE(mods, nullptr);
  EXPECT_EQ(policy.check(mods->files[0].path,
                         mods->files[0].content_hash(mods->name)),
            keylime::PolicyMatch::kNotInPolicy);
}

TEST_F(GeneratorFixture, PendingKernelIsAdmittedAheadOfReboot) {
  pkg::ArchiveConfig cfg = small_archive();
  cfg.kernel_release_prob = 1.0;
  pkg::Archive kernel_archive(cfg, 13);
  const std::string old_kver = kernel_archive.current_kernel_version();
  pkg::Mirror m(&kernel_archive);
  m.sync(0);
  DynamicPolicyGenerator generator(&m, config);
  auto policy = generator.generate_base(old_kver);

  (void)kernel_archive.release_day(0);
  const std::string new_kver = kernel_archive.current_kernel_version();
  m.sync(kDay);
  (void)generator.refresh(policy, old_kver, new_kver);

  const pkg::Package* mods = m.find("linux-modules-" + new_kver);
  ASSERT_NE(mods, nullptr);
  EXPECT_EQ(policy.check(mods->files[0].path,
                         mods->files[0].content_hash(mods->name)),
            keylime::PolicyMatch::kAllowed);
}

TEST_F(GeneratorFixture, KernelRetirementPurgesOldModules) {
  pkg::ArchiveConfig cfg = small_archive();
  cfg.kernel_release_prob = 1.0;
  pkg::Archive kernel_archive(cfg, 14);
  const std::string old_kver = kernel_archive.current_kernel_version();
  pkg::Mirror m(&kernel_archive);
  m.sync(0);
  DynamicPolicyGenerator generator(&m, config);
  auto policy = generator.generate_base(old_kver);

  (void)kernel_archive.release_day(0);
  const std::string new_kver = kernel_archive.current_kernel_version();
  m.sync(kDay);
  (void)generator.refresh(policy, old_kver, new_kver);

  // The fleet reboots into the new kernel; the next refresh retires the
  // old kernel's entries.
  const auto stats = generator.refresh(policy, new_kver);
  EXPECT_GT(stats.kernel_lines_retired, 0u);
  const pkg::Package* old_mods = m.find("linux-modules-" + old_kver);
  ASSERT_NE(old_mods, nullptr);
  EXPECT_EQ(policy.check(old_mods->files[0].path,
                         old_mods->files[0].content_hash(old_mods->name)),
            keylime::PolicyMatch::kNotInPolicy)
      << "outdated kernel modules must be disallowed (§III-C)";
}

TEST_F(GeneratorFixture, KernelTrackingOffAdmitsEverything) {
  pkg::ArchiveConfig cfg = small_archive();
  cfg.kernel_release_prob = 1.0;
  pkg::Archive kernel_archive(cfg, 15);
  (void)kernel_archive.release_day(0);
  pkg::Mirror m(&kernel_archive);
  m.sync(0);
  GeneratorConfig no_tracking;
  no_tracking.kernel_tracking = false;
  DynamicPolicyGenerator generator(&m, no_tracking);
  PolicyUpdateStats stats;
  (void)generator.generate_base("definitely-not-a-kernel", &stats);
  EXPECT_EQ(stats.kernel_packages_skipped, 0u);
}

// ------------------------------------------------------------ orchestrator

struct OrchestratorFixture : ::testing::Test {
  OrchestratorFixture() : bed(make_options()) {
    EXPECT_TRUE(bed.enroll().ok());
    generator = std::make_unique<DynamicPolicyGenerator>(&bed.mirror,
                                                         GeneratorConfig{});
    orchestrator = std::make_unique<UpdateOrchestrator>(
        &bed.mirror, generator.get(), &bed.verifier, &bed.clock);
    orchestrator->manage({&bed.machine, &bed.apt, bed.agent_id()});
  }

  static TestbedOptions make_options() {
    TestbedOptions options;
    options.seed = 21;
    options.provision_extra = 30;
    options.archive.base_package_count = 120;
    return options;
  }

  Testbed bed;
  std::unique_ptr<DynamicPolicyGenerator> generator;
  std::unique_ptr<UpdateOrchestrator> orchestrator;
};

TEST_F(OrchestratorFixture, BootstrapInstallsBasePolicy) {
  ASSERT_TRUE(orchestrator->bootstrap().ok());
  EXPECT_GT(orchestrator->policy().entry_count(), 1000u);
  const auto* installed = bed.verifier.policy(bed.agent_id());
  ASSERT_NE(installed, nullptr);
  EXPECT_EQ(installed->entry_count(), orchestrator->policy().entry_count());
}

TEST_F(OrchestratorFixture, BootstrapWithoutNodesFails) {
  UpdateOrchestrator empty(&bed.mirror, generator.get(), &bed.verifier,
                           &bed.clock);
  EXPECT_FALSE(empty.bootstrap().ok());
}

TEST_F(OrchestratorFixture, CycleKeepsNodeInPolicyThroughUpdate) {
  ASSERT_TRUE(orchestrator->bootstrap().ok());

  // A day of releases lands upstream.
  (void)bed.archive.release_day(0);
  bed.clock.advance_to(kDay + 5 * kHour);

  auto report = orchestrator->run_cycle();
  ASSERT_TRUE(report.ok());

  // The machine executes freshly updated binaries; attestation must stay
  // green because the policy was pushed before the upgrade.
  for (const std::string& name : report.value().policy_stats.lines_added
                                     ? bed.provisioned
                                     : std::vector<std::string>{}) {
    const std::string bin = "/usr/bin/" + name;
    if (bed.machine.fs().is_file(bin)) (void)bed.machine.exec(bin);
  }
  bed.attest();
  EXPECT_EQ(bed.verifier.state(bed.agent_id()), keylime::AgentState::kAttesting);
  EXPECT_TRUE(bed.verifier.alerts().empty());
}

TEST_F(OrchestratorFixture, CycleReportsUpgradeCounts) {
  ASSERT_TRUE(orchestrator->bootstrap().ok());
  // Release until one of the provisioned packages updates.
  bool touched = false;
  for (int day = 0; day < 30 && !touched; ++day) {
    const auto ev = bed.archive.release_day(day);
    for (const auto& n : ev.updated) {
      touched |= bed.apt.is_installed(n);
    }
  }
  ASSERT_TRUE(touched);
  auto report = orchestrator->run_cycle();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().nodes_upgraded, 1u);
  EXPECT_GT(report.value().packages_installed, 0u);
}

TEST_F(OrchestratorFixture, DedupRunsAfterUpgrade) {
  ASSERT_TRUE(orchestrator->bootstrap().ok());
  bool touched = false;
  for (int day = 0; day < 30 && !touched; ++day) {
    const auto ev = bed.archive.release_day(day);
    for (const auto& n : ev.updated) touched |= bed.apt.is_installed(n);
  }
  ASSERT_TRUE(touched);
  auto report = orchestrator->run_cycle();
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report.value().dedup_removed, 0u);
}

TEST_F(OrchestratorFixture, NewKernelInstallsAndArmsReboot) {
  ASSERT_TRUE(orchestrator->bootstrap().ok());
  pkg::ArchiveConfig cfg;  // force the kernel release through the archive
  // Drive release days until a kernel release happens.
  bool kernel = false;
  for (int day = 0; day < 100 && !kernel; ++day) {
    kernel = bed.archive.release_day(day).kernel_release;
  }
  ASSERT_TRUE(kernel);
  auto report = orchestrator->run_cycle();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.value().kernel_pending_reboot);
  const std::string pending = bed.machine.pending_kernel();
  EXPECT_FALSE(pending.empty());
  EXPECT_TRUE(bed.apt.is_installed("linux-modules-" + pending));

  const std::string old_kver = bed.machine.kernel_version();
  bed.machine.reboot();
  EXPECT_EQ(bed.machine.kernel_version(), pending);
  EXPECT_NE(bed.machine.kernel_version(), old_kver);

  // Loading a new-kernel module after the reboot stays in policy.
  const std::string mod_dir = "/lib/modules/" + pending + "/kernel";
  const auto mods = bed.machine.fs().list_files(mod_dir);
  ASSERT_FALSE(mods.empty());
  ASSERT_TRUE(bed.machine.load_kernel_module(mods[0]).ok());
  bed.attest();  // reboot detection
  bed.attest();
  EXPECT_TRUE(bed.verifier.alerts().empty());
}

// -------------------------------------------------- signed manifests (§V)

TEST_F(GeneratorFixture, SignedManifestsAreAdmitted) {
  GeneratorConfig signed_config;
  signed_config.trusted_maintainer = archive.maintainer_key();
  DynamicPolicyGenerator generator(&mirror, signed_config);
  PolicyUpdateStats stats;
  const auto policy =
      generator.generate_base(archive.current_kernel_version(), &stats);
  EXPECT_EQ(stats.manifest_rejected, 0u);
  EXPECT_GT(policy.entry_count(), 1000u);
}

TEST_F(GeneratorFixture, WrongMaintainerKeyRejectsEverything) {
  GeneratorConfig signed_config;
  signed_config.trusted_maintainer =
      crypto::derive_keypair(to_bytes("rogue"), "rogue").pub;
  DynamicPolicyGenerator generator(&mirror, signed_config);
  PolicyUpdateStats stats;
  const auto policy =
      generator.generate_base(archive.current_kernel_version(), &stats);
  EXPECT_EQ(policy.entry_count(), 0u);
  EXPECT_GT(stats.manifest_rejected, 100u);
}

TEST_F(GeneratorFixture, TamperedPackageIsRejectedWhenVerifying) {
  // An attacker (or corrupted mirror) swaps a file hash inside a package:
  // the manifest signature no longer verifies and the package is not
  // admitted into the policy.
  pkg::Archive tampered_archive(small_archive(), 11);
  pkg::Mirror tampered_mirror(&tampered_archive);
  tampered_mirror.sync(0);
  auto index = tampered_mirror.index();  // copy for inspection

  GeneratorConfig signed_config;
  signed_config.trusted_maintainer = tampered_archive.maintainer_key();
  // Tamper via a fresh mirror-like struct: mutate one package's file.
  // (Mirror snapshots by value, so mutate through a const_cast-free path:
  // rebuild the archive, tamper, re-sync is not possible — instead verify
  // the negative by checking the manifest directly.)
  pkg::Package bash = index.at("bash");
  bash.files[0].content_rev += 1;  // content changed, signature stale
  const auto sig = crypto::Signature::decode(bash.manifest_signature);
  ASSERT_TRUE(sig.has_value());
  EXPECT_FALSE(crypto::verify(tampered_archive.maintainer_key(),
                              bash.manifest_tbs(), *sig));
}

TEST_F(GeneratorFixture, UnsignedArchiveFailsVerification) {
  pkg::ArchiveConfig cfg = small_archive();
  cfg.sign_manifests = false;
  pkg::Archive unsigned_archive(cfg, 11);
  pkg::Mirror unsigned_mirror(&unsigned_archive);
  unsigned_mirror.sync(0);
  GeneratorConfig signed_config;
  signed_config.trusted_maintainer = unsigned_archive.maintainer_key();
  DynamicPolicyGenerator generator(&unsigned_mirror, signed_config);
  PolicyUpdateStats stats;
  const auto policy =
      generator.generate_base(unsigned_archive.current_kernel_version(), &stats);
  EXPECT_EQ(policy.entry_count(), 0u);
  EXPECT_GT(stats.manifest_rejected, 0u);
}

// --------------------------------------------------------- coverage analyzer

TEST(PolicyAnalyzerTest, FullyCoveredMachineIsClean) {
  TestbedOptions options;
  options.provision_extra = 20;
  options.archive.base_package_count = 100;
  Testbed bed(options);
  bed.mirror.sync(0);
  DynamicPolicyGenerator generator(&bed.mirror, GeneratorConfig{});
  auto policy = generator.generate_base(bed.machine.kernel_version());
  // The scan covers non-package executables too (bootloader, user data):
  policy.merge(experiments::scan_machine_policy(bed.machine, false));

  const auto report = analyze_coverage(bed.machine, policy);
  EXPECT_TRUE(report.clean()) << report.to_string();
  EXPECT_EQ(report.coverage_ratio(), 1.0);
  EXPECT_GT(report.policy_only_paths, 1000u)
      << "the distribution policy covers far more than one machine";
}

TEST(PolicyAnalyzerTest, FlagsStaleUncoveredAndExcluded) {
  TestbedOptions options;
  options.provision_extra = 10;
  options.archive.base_package_count = 100;
  Testbed bed(options);
  keylime::RuntimePolicy policy =
      experiments::scan_machine_policy(bed.machine, true);

  // Stale: modify a covered binary in place.
  ASSERT_TRUE(bed.machine.fs().write_file("/usr/bin/bash",
                                          to_bytes("elf:trojan")).ok());
  // Uncovered: drop a new executable.
  ASSERT_TRUE(bed.machine.fs()
                  .create_file("/usr/local/bin/new-tool", to_bytes("x"), true)
                  .ok());
  // Excluded: an executable under the policy's /tmp glob.
  ASSERT_TRUE(bed.machine.fs()
                  .create_file("/tmp/payload", to_bytes("y"), true)
                  .ok());

  const auto report = analyze_coverage(bed.machine, policy);
  EXPECT_FALSE(report.clean());
  EXPECT_EQ(report.stale_hash, 1u);
  EXPECT_EQ(report.uncovered, 1u);
  EXPECT_EQ(report.excluded, 1u);
  ASSERT_EQ(report.stale_samples.size(), 1u);
  EXPECT_EQ(report.stale_samples[0], "/usr/bin/bash");
  EXPECT_EQ(report.uncovered_samples[0], "/usr/local/bin/new-tool");
  EXPECT_EQ(report.excluded_samples[0], "/tmp/payload");
  EXPECT_NE(report.to_string().find("excluded (P1!)"), std::string::npos);
}

TEST(PolicyAnalyzerTest, EmptyMachineIsTriviallyClean) {
  SimClock clock;
  crypto::CertificateAuthority ca("mfg", to_bytes("seed"));
  oskernel::MachineConfig cfg;
  cfg.mount_standard_filesystems = false;
  oskernel::Machine machine(cfg, ca, &clock);
  // Only the bootloader exists; cover it.
  keylime::RuntimePolicy policy =
      experiments::scan_machine_policy(machine, false);
  const auto report = analyze_coverage(machine, policy);
  EXPECT_TRUE(report.clean());
}

// ------------------------------------------------------- multi-node fleet

TEST(OrchestratorFleetTest, ThreeNodesStayInPolicyThroughUpdates) {
  // One orchestrator managing three machines: the policy push covers the
  // fleet, and every node upgrades from the same mirror.
  SimClock clock;
  crypto::CertificateAuthority ca("mfg", to_bytes("seed"));
  netsim::SimNetwork network(&clock, 5);
  keylime::Registrar registrar(&network, &clock, 6);
  registrar.trust_manufacturer(ca.public_key());
  keylime::Verifier verifier(&network, &clock, 7);

  pkg::ArchiveConfig archive_cfg;
  archive_cfg.base_package_count = 120;
  pkg::Archive archive(archive_cfg, 9);
  pkg::Mirror mirror(&archive);

  std::vector<std::unique_ptr<oskernel::Machine>> machines;
  std::vector<std::unique_ptr<keylime::Agent>> agents;
  std::vector<std::unique_ptr<pkg::AptClient>> apts;
  DynamicPolicyGenerator generator(&mirror, GeneratorConfig{});
  UpdateOrchestrator orchestrator(&mirror, &generator, &verifier, &clock);

  for (int i = 0; i < 3; ++i) {
    oskernel::MachineConfig cfg;
    cfg.hostname = strformat("fleet-%d", i);
    cfg.seed = static_cast<std::uint64_t>(i + 1);
    machines.push_back(std::make_unique<oskernel::Machine>(cfg, ca, &clock));
    apts.push_back(std::make_unique<pkg::AptClient>(machines.back().get(),
                                                    pkg::CostModel{}));
    ASSERT_TRUE(apts.back()->provision(archive.index(), {"bash", "python3"}).ok());
    agents.push_back(std::make_unique<keylime::Agent>(machines.back().get(),
                                                      &network));
    ASSERT_TRUE(agents.back()->register_with(keylime::Registrar::address()).ok());
    ASSERT_TRUE(verifier.add_agent(cfg.hostname, agents.back()->address()).ok());
    orchestrator.manage({machines.back().get(), apts.back().get(), cfg.hostname});
  }
  ASSERT_TRUE(orchestrator.bootstrap().ok());

  for (int day = 0; day < 5; ++day) {
    (void)archive.release_day(day);
    clock.advance_to((day + 1) * kDay + 5 * kHour);
    ASSERT_TRUE(orchestrator.run_cycle().ok());
    for (auto& m : machines) {
      (void)m->exec("/usr/bin/bash");
      (void)m->exec("/usr/bin/python3");
    }
    (void)verifier.attest_all();
  }
  EXPECT_TRUE(verifier.alerts().empty());
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(verifier.state(strformat("fleet-%d", i)),
              keylime::AgentState::kAttesting);
  }
}

}  // namespace
}  // namespace cia::core
