// Stress test for the sharded verifier pool: a 200-agent fleet across
// 8 shards, driven for several rounds under a chaotic fault profile
// while another thread keeps pushing policy revisions into the pool's
// copy-on-write mailboxes.
//
// The point is the threading contract, so this suite is wired into
// tools/run_sanitized_tests.sh's thread mode: under TSan it proves that
// shard workers never share simulation state and that the only
// cross-thread traffic (policy mailboxes, the MetricsRegistry) is
// correctly synchronized.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <set>
#include <thread>
#include <tuple>

#include "experiments/pool_experiment.hpp"
#include "keylime/notifier.hpp"
#include "telemetry/export.hpp"

namespace cia {
namespace {

using experiments::PoolFleet;
using experiments::PoolFleetOptions;

TEST(PoolStressTest, ChaoticFleetWithConcurrentPolicyPushes) {
  telemetry::MetricsRegistry metrics;
  PoolFleetOptions options;
  options.agents = 200;
  options.shards = 8;
  options.seed = 1234;
  options.binaries_per_machine = 12;
  options.execs_per_round = 3;
  options.metrics = &metrics;
  PoolFleet fleet(options);
  ASSERT_TRUE(fleet.init_status().ok());
  ASSERT_TRUE(fleet.push_fleet_policy().ok());

  // The chaos-engine profile from PR 1: drops, tampering, duplicates,
  // and timeouts all at once, absorbed by each shard's retrying
  // transport where possible.
  netsim::FaultProfile chaos;
  chaos.drop_rate = 0.10;
  chaos.tamper_rate = 0.05;
  chaos.duplicate_rate = 0.05;
  chaos.timeout_rate = 0.02;
  chaos.latency = 1;
  fleet.pool().set_fleet_faults(chaos);

  constexpr std::size_t kRounds = 3;
  constexpr std::size_t kPushes = 5;

  // A tenant keeps re-pushing the fleet policy while rounds are in
  // flight: set_fleet_policy must be safe against the shard workers
  // (mailbox mutex + COW index swap), which is exactly what TSan checks.
  std::atomic<bool> done{false};
  keylime::RuntimePolicy policy = fleet.fleet_policy();
  std::thread pusher([&] {
    for (std::size_t p = 0; p < kPushes; ++p) {
      ASSERT_TRUE(fleet.pool().set_fleet_policy(policy).ok());
      std::this_thread::yield();
    }
    done.store(true);
  });

  std::size_t polls = 0;
  for (std::size_t round = 0; round < kRounds; ++round) {
    fleet.run_workload_round(round);
    polls += fleet.pool().run_round();
  }
  pusher.join();
  ASSERT_TRUE(done.load());
  // Drain any pushes that arrived after the last round's batch started.
  fleet.pool().run_round();

  EXPECT_EQ(polls, options.agents * kRounds);
  EXPECT_EQ(fleet.pool().policy_revision(), 1u + kPushes);
  EXPECT_GE(fleet.pool().stats().policy_swaps, options.agents)
      << "at least the initial revision must have reached every agent";

  // Chaos may fail agents (tampered quotes that exhaust the retry
  // budget surface as alerts) but every agent must end in a coherent
  // state and every alert must belong to an enrolled agent.
  const std::set<std::string> enrolled(fleet.agent_ids().begin(),
                                       fleet.agent_ids().end());
  for (const std::string& id : fleet.agent_ids()) {
    const auto state = fleet.pool().state(id);
    ASSERT_TRUE(state.has_value()) << id;
    EXPECT_TRUE(*state == keylime::AgentState::kAttesting ||
                *state == keylime::AgentState::kFailed)
        << id;
  }
  for (const keylime::Alert& alert : fleet.pool().alerts()) {
    EXPECT_EQ(enrolled.count(alert.agent_id), 1u) << alert.agent_id;
  }

  const auto stats = fleet.pool().stats();
  EXPECT_EQ(stats.polls, options.agents * (kRounds + 1));
  EXPECT_GE(stats.batches, options.shards * kRounds);
  EXPECT_GT(stats.index_hits + stats.index_misses, 0u);

  // The shared registry survived concurrent writers from 8 shard
  // workers; a snapshot must serialize cleanly.
  EXPECT_FALSE(telemetry::to_prometheus(metrics.snapshot()).empty());
}

TEST(PoolStressTest, RepartitionedChaosFleetKeepsVerdicts) {
  // A smaller chaotic fleet run under two different partitions: the
  // per-agent outcome must be identical (drop/tamper only, so no clock
  // skew between layouts).
  auto run = [](std::size_t shards) {
    PoolFleetOptions options;
    options.agents = 48;
    options.shards = shards;
    options.seed = 77;
    options.binaries_per_machine = 8;
    options.execs_per_round = 2;
    PoolFleet fleet(options);
    EXPECT_TRUE(fleet.init_status().ok());
    EXPECT_TRUE(fleet.push_fleet_policy().ok());
    netsim::FaultProfile chaos;
    chaos.drop_rate = 0.30;
    chaos.tamper_rate = 0.15;
    fleet.pool().set_fleet_faults(chaos);
    for (std::size_t round = 0; round < 2; ++round) {
      fleet.run_workload_round(round);
      fleet.pool().run_round();
    }
    std::map<std::string, keylime::AgentState> verdicts;
    for (const std::string& id : fleet.agent_ids()) {
      verdicts[id] = *fleet.pool().state(id);
    }
    return verdicts;
  };

  const auto two = run(2);
  const auto eight = run(8);
  EXPECT_EQ(two, eight);
}

TEST(PoolStressTest, RevocationFanOutDrainsAtRoundBoundaries) {
  // CollectingNotifier (and any real webhook client) is not thread-safe,
  // and shard workers raise FAILED transitions concurrently. The pool
  // therefore defers every revocation and fans out on the driver thread
  // at the round boundary — one notifier instance shared by all shard
  // verifiers plus a pool-level subscriber must both survive a chaotic
  // multi-shard run under TSan, and see the same events.
  telemetry::MetricsRegistry metrics;
  PoolFleetOptions options;
  options.agents = 150;
  options.shards = 6;
  options.seed = 99;
  options.binaries_per_machine = 10;
  options.execs_per_round = 3;
  options.metrics = &metrics;
  PoolFleet fleet(options);
  ASSERT_TRUE(fleet.init_status().ok());
  ASSERT_TRUE(fleet.push_fleet_policy().ok());

  keylime::CollectingNotifier shard_side;  // one instance, every shard
  for (std::size_t s = 0; s < fleet.pool().shard_count(); ++s) {
    fleet.pool().verifier(s).add_notifier(&shard_side);
  }
  keylime::CollectingNotifier pool_side;
  fleet.pool().add_notifier(&pool_side);
  keylime::alert_pipeline::AlertPipeline pipeline;
  pipeline.use_telemetry(&metrics);
  fleet.pool().use_alert_pipeline(&pipeline);

  // Guaranteed violations on a slice of the fleet, plus tamper chaos
  // that fails whoever exhausts the retry budget.
  for (std::size_t i = 0; i < options.agents; i += 10) fleet.exec_unknown(i);
  netsim::FaultProfile chaos;
  chaos.drop_rate = 0.05;
  chaos.tamper_rate = 0.20;
  fleet.pool().set_fleet_faults(chaos);

  std::atomic<bool> done{false};
  keylime::RuntimePolicy policy = fleet.fleet_policy();
  std::thread pusher([&] {
    for (std::size_t p = 0; p < 4; ++p) {
      ASSERT_TRUE(fleet.pool().set_fleet_policy(policy).ok());
      std::this_thread::yield();
    }
    done.store(true);
  });
  for (std::size_t round = 0; round < 3; ++round) {
    fleet.run_workload_round(round);
    fleet.pool().run_round();
  }
  pusher.join();
  ASSERT_TRUE(done.load());
  fleet.pool().run_round();

  // The planted droppers alone guarantee transitions.
  ASSERT_GE(pool_side.events().size(), options.agents / 10);

  // Exactly one revocation per FAILED transition, delivered to both
  // subscription levels: same multiset, and one event per failed agent.
  auto sorted = [](std::vector<keylime::RevocationEvent> events) {
    std::sort(events.begin(), events.end(),
              [](const keylime::RevocationEvent& a,
                 const keylime::RevocationEvent& b) {
                return std::tie(a.time, a.agent_id, a.reason) <
                       std::tie(b.time, b.agent_id, b.reason);
              });
    return events;
  };
  const auto pool_events = sorted(pool_side.events());
  const auto shard_events = sorted(shard_side.events());
  ASSERT_EQ(pool_events.size(), shard_events.size());
  for (std::size_t i = 0; i < pool_events.size(); ++i) {
    EXPECT_EQ(pool_events[i].agent_id, shard_events[i].agent_id);
    EXPECT_EQ(pool_events[i].time, shard_events[i].time);
    EXPECT_EQ(pool_events[i].reason, shard_events[i].reason);
  }
  std::set<std::string> revoked;
  for (const keylime::RevocationEvent& event : pool_events) {
    EXPECT_TRUE(revoked.insert(event.agent_id).second)
        << event.agent_id << " revoked twice without recovering";
    EXPECT_EQ(fleet.pool().state(event.agent_id), keylime::AgentState::kFailed)
        << event.agent_id;
  }
  std::size_t failed = 0;
  for (const std::string& id : fleet.agent_ids()) {
    if (fleet.pool().state(id) == keylime::AgentState::kFailed) ++failed;
  }
  EXPECT_EQ(pool_events.size(), failed);

  // The pipeline rode the same boundaries: every alert the verifiers
  // raised was folded (staleness observations come on top).
  EXPECT_GE(pipeline.stats().raw, fleet.pool().alerts().size());
  EXPECT_GT(pipeline.snapshot().incidents.size(), 0u);
  EXPECT_FALSE(telemetry::to_prometheus(metrics.snapshot()).empty());
}

TEST(PoolStressTest, ResizeDrainsInFlightRoundsBeforeTouchingTopology) {
  // resize() takes the same drive mutex as run_round(), so a resize
  // requested while shard workers are mid-round must wait for the round
  // boundary before it rebuilds the ring or migrates anyone. Under TSan
  // this pins the drain: a resize that raced the workers would tear the
  // shard vector out from under them.
  telemetry::MetricsRegistry metrics;
  PoolFleetOptions options;
  options.agents = 120;
  options.shards = 4;
  options.seed = 4321;
  options.binaries_per_machine = 10;
  options.execs_per_round = 3;
  options.metrics = &metrics;
  PoolFleet fleet(options);
  ASSERT_TRUE(fleet.init_status().ok());
  ASSERT_TRUE(fleet.push_fleet_policy().ok());

  netsim::FaultProfile chaos;
  chaos.drop_rate = 0.10;
  chaos.tamper_rate = 0.05;
  fleet.pool().set_fleet_faults(chaos);

  // One thread keeps driving rounds and pushing policies; another keeps
  // bouncing the shard count. Every resize must land on a quiesced pool.
  std::atomic<bool> done{false};
  keylime::RuntimePolicy policy = fleet.fleet_policy();
  std::thread resizer([&] {
    for (std::size_t n : {7u, 3u, 8u, 2u}) {
      ASSERT_TRUE(fleet.pool().resize(n).ok());
      std::this_thread::yield();
    }
    done.store(true);
  });
  for (std::size_t round = 0; round < 3; ++round) {
    fleet.run_workload_round(round);
    fleet.pool().run_round();
    ASSERT_TRUE(fleet.pool().set_fleet_policy(policy).ok());
  }
  resizer.join();
  ASSERT_TRUE(done.load());

  EXPECT_EQ(fleet.pool().active_shard_count(), 2u);
  EXPECT_EQ(fleet.pool().migration_stats().resizes, 4u);
  EXPECT_EQ(fleet.pool().migration_stats().failed, 0u)
      << "fault-free handoff links must never lose an agent";
  // Nobody was lost in a mid-round topology change: every agent still
  // resolves and the next round polls the full fleet.
  for (const std::string& id : fleet.agent_ids()) {
    ASSERT_TRUE(fleet.pool().state(id).has_value()) << id;
  }
  EXPECT_EQ(fleet.pool().run_round(), fleet.agent_ids().size());
  EXPECT_FALSE(telemetry::to_prometheus(metrics.snapshot()).empty());
}

}  // namespace
}  // namespace cia
