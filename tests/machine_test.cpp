// Unit tests for the machine/kernel layer: exec semantics (shebang vs
// interpreter), kernel modules, reboot lifecycle, and boot persistence.
#include <gtest/gtest.h>

#include "oskernel/machine.hpp"

namespace cia::oskernel {
namespace {

struct MachineFixture : ::testing::Test {
  MachineFixture()
      : ca("mfg", to_bytes("mfg-seed")), machine(MachineConfig{}, ca, &clock) {
    auto& fs = machine.fs();
    EXPECT_TRUE(fs.create_file("/usr/bin/python3", to_bytes("elf:python3"), true).ok());
    EXPECT_TRUE(fs.create_file("/usr/bin/bash", to_bytes("elf:bash"), true).ok());
  }

  // Count non-boot-aggregate measurements of `path`.
  int measurements_of(const std::string& path) const {
    int n = 0;
    for (const auto& e : machine.ima().log()) {
      if (e.path == path) ++n;
    }
    return n;
  }

  SimClock clock;
  crypto::CertificateAuthority ca;
  Machine machine;
};

TEST_F(MachineFixture, StandardMountsArePresent) {
  const auto& fs = machine.fs();
  // Ubuntu 22.04 keeps /tmp on the root filesystem (load-bearing for P4).
  EXPECT_EQ(fs.mount_of("/tmp/x").type, vfs::FsType::kExt4);
  EXPECT_EQ(fs.mount_of("/dev/shm/x").type, vfs::FsType::kTmpfs);
  EXPECT_EQ(fs.mount_of("/run/x").type, vfs::FsType::kTmpfs);
  EXPECT_EQ(fs.mount_of("/proc/self").type, vfs::FsType::kProcfs);
  EXPECT_EQ(fs.mount_of("/sys/kernel/debug/t").type, vfs::FsType::kDebugfs);
  EXPECT_EQ(fs.mount_of("/usr/bin/ls").type, vfs::FsType::kExt4);
}

TEST_F(MachineFixture, ExecRequiresExecutableBit) {
  ASSERT_TRUE(machine.fs().create_file("/data/file", to_bytes("x"), false).ok());
  EXPECT_FALSE(machine.exec("/data/file").ok());
  EXPECT_TRUE(machine.exec("/usr/bin/bash").ok());
}

TEST_F(MachineFixture, ExecMissingFileFails) {
  EXPECT_FALSE(machine.exec("/no/such/bin").ok());
}

TEST_F(MachineFixture, ExecMeasuresBinary) {
  ASSERT_TRUE(machine.exec("/usr/bin/bash").ok());
  EXPECT_EQ(measurements_of("/usr/bin/bash"), 1);
}

TEST_F(MachineFixture, ShebangExecMeasuresScriptAndInterpreter) {
  ASSERT_TRUE(machine.fs()
                  .create_file("/opt/task.py",
                               to_bytes("#!/usr/bin/python3\nprint('hi')"), true)
                  .ok());
  ASSERT_TRUE(machine.exec("/opt/task.py").ok());
  EXPECT_EQ(measurements_of("/opt/task.py"), 1)
      << "./script.py measures the script (P5's good case)";
  EXPECT_EQ(measurements_of("/usr/bin/python3"), 1);
}

TEST_F(MachineFixture, InterpreterInvocationSkipsScript_P5) {
  ASSERT_TRUE(machine.fs()
                  .create_file("/opt/task.py", to_bytes("print('hi')"), false)
                  .ok());
  ASSERT_TRUE(machine.exec_via_interpreter("/usr/bin/python3", "/opt/task.py").ok());
  EXPECT_EQ(measurements_of("/opt/task.py"), 0)
      << "python script.py only attests the interpreter (P5)";
  EXPECT_EQ(measurements_of("/usr/bin/python3"), 1);
}

TEST_F(MachineFixture, SecAwareInterpreterWithKernelSupportMeasuresScript) {
  MachineConfig cfg;
  cfg.ima_config.script_exec_control = true;
  Machine m(cfg, ca, &clock);
  ASSERT_TRUE(m.fs().create_file("/usr/bin/python3", to_bytes("elf:python3"), true).ok());
  ASSERT_TRUE(m.fs().create_file("/opt/task.py", to_bytes("print('hi')"), false).ok());
  m.register_sec_aware_interpreter("/usr/bin/python3");
  ASSERT_TRUE(m.exec_via_interpreter("/usr/bin/python3", "/opt/task.py").ok());
  int script_measurements = 0;
  for (const auto& e : m.ima().log()) {
    if (e.path == "/opt/task.py") ++script_measurements;
  }
  EXPECT_EQ(script_measurements, 1);
}

TEST_F(MachineFixture, InterpreterInvocationDoesNotNeedExecBit) {
  ASSERT_TRUE(machine.fs()
                  .create_file("/opt/task.py", to_bytes("print('hi')"), false)
                  .ok());
  EXPECT_TRUE(machine.exec_via_interpreter("/usr/bin/python3", "/opt/task.py").ok());
}

TEST_F(MachineFixture, ProcessTableRecordsExecs) {
  ASSERT_TRUE(machine.exec("/usr/bin/bash").ok());
  const auto pid = machine.exec("/usr/bin/bash");
  ASSERT_TRUE(pid.ok());
  EXPECT_EQ(machine.processes().size(), 2u);
  machine.kill(pid.value());
  EXPECT_FALSE(machine.processes().back().alive);
}

TEST_F(MachineFixture, KernelModuleLoadMeasured) {
  ASSERT_TRUE(machine.fs()
                  .create_file("/lib/modules/rk.ko", to_bytes("ko:rk"), false)
                  .ok());
  ASSERT_TRUE(machine.load_kernel_module("/lib/modules/rk.ko").ok());
  EXPECT_EQ(measurements_of("/lib/modules/rk.ko"), 1);
  EXPECT_EQ(machine.loaded_modules().size(), 1u);
}

TEST_F(MachineFixture, RebootResetsRuntimeState) {
  ASSERT_TRUE(machine.exec("/usr/bin/bash").ok());
  ASSERT_TRUE(machine.fs().create_file("/lib/modules/m.ko", to_bytes("ko"), false).ok());
  ASSERT_TRUE(machine.load_kernel_module("/lib/modules/m.ko").ok());
  ASSERT_TRUE(machine.fs().create_file("/tmp/scratch", to_bytes("x"), false).ok());

  machine.reboot();

  EXPECT_TRUE(machine.processes().empty());
  EXPECT_TRUE(machine.loaded_modules().empty());
  EXPECT_FALSE(machine.fs().exists("/tmp/scratch"))
      << "systemd cleans /tmp at boot";
  EXPECT_EQ(machine.ima().log().size(), 1u) << "fresh boot aggregate only";
  EXPECT_EQ(machine.boot_count(), 2);
}

TEST_F(MachineFixture, RebootRemeasuresFreshExecs) {
  ASSERT_TRUE(machine.exec("/usr/bin/bash").ok());
  machine.reboot();
  ASSERT_TRUE(machine.exec("/usr/bin/bash").ok());
  EXPECT_EQ(measurements_of("/usr/bin/bash"), 1);
}

TEST_F(MachineFixture, SystemdPersistenceRunsAtBoot) {
  ASSERT_TRUE(machine.fs()
                  .create_file("/usr/local/bin/implant", to_bytes("elf:implant"), true)
                  .ok());
  ASSERT_TRUE(machine.install_systemd_unit("implant", "/usr/local/bin/implant").ok());
  EXPECT_EQ(measurements_of("/usr/local/bin/implant"), 0);
  machine.reboot();
  EXPECT_EQ(measurements_of("/usr/local/bin/implant"), 1)
      << "persistence re-executes and is measured on the fresh boot";
}

TEST_F(MachineFixture, ModuleAutoloadRunsAtBoot) {
  ASSERT_TRUE(machine.fs()
                  .create_file("/lib/modules/rk.ko", to_bytes("ko:rk"), false)
                  .ok());
  ASSERT_TRUE(machine.install_module_autoload("rk", "/lib/modules/rk.ko").ok());
  machine.reboot();
  EXPECT_EQ(machine.loaded_modules().size(), 1u);
  EXPECT_EQ(measurements_of("/lib/modules/rk.ko"), 1);
}

TEST_F(MachineFixture, MmapLibraryMeasured) {
  ASSERT_TRUE(machine.fs()
                  .create_file("/usr/lib/libc.so.6", to_bytes("elf:libc"), true)
                  .ok());
  machine.mmap_library("/usr/lib/libc.so.6");
  EXPECT_EQ(measurements_of("/usr/lib/libc.so.6"), 1);
}

TEST_F(MachineFixture, ImaLogReplaysToPcr10AfterActivity) {
  ASSERT_TRUE(machine.exec("/usr/bin/bash").ok());
  ASSERT_TRUE(machine.exec("/usr/bin/python3").ok());
  EXPECT_EQ(ima::replay_log(machine.ima().log()),
            machine.tpm().pcr_value(tpm::kImaPcr));
}

}  // namespace
}  // namespace cia::oskernel
