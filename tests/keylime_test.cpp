// Unit + integration tests for the Keylime components: runtime policy
// semantics, registration/credential activation over the network, and the
// verifier's attestation state machine (including P2's stop-on-failure).
#include <gtest/gtest.h>

#include "keylime/agent.hpp"
#include "keylime/messages.hpp"
#include "keylime/registrar.hpp"
#include "keylime/runtime_policy.hpp"
#include "keylime/tenant.hpp"
#include "keylime/verifier.hpp"

namespace cia::keylime {
namespace {

// --------------------------------------------------------- runtime policy

TEST(RuntimePolicyTest, CheckOutcomes) {
  RuntimePolicy p;
  p.allow("/usr/bin/ls", std::string(64, 'a'));
  p.exclude("/tmp/*");

  EXPECT_EQ(p.check("/usr/bin/ls", std::string(64, 'a')), PolicyMatch::kAllowed);
  EXPECT_EQ(p.check("/usr/bin/ls", std::string(64, 'b')),
            PolicyMatch::kHashMismatch);
  EXPECT_EQ(p.check("/usr/bin/cat", std::string(64, 'a')),
            PolicyMatch::kNotInPolicy);
  EXPECT_EQ(p.check("/tmp/anything", std::string(64, 'c')),
            PolicyMatch::kExcluded);
}

TEST(RuntimePolicyTest, MultipleHashesPerPath) {
  RuntimePolicy p;
  p.allow("/usr/bin/x", std::string(64, '1'));
  p.allow("/usr/bin/x", std::string(64, '2'));
  EXPECT_EQ(p.entry_count(), 2u);
  EXPECT_EQ(p.path_count(), 1u);
  EXPECT_EQ(p.check("/usr/bin/x", std::string(64, '1')), PolicyMatch::kAllowed);
  EXPECT_EQ(p.check("/usr/bin/x", std::string(64, '2')), PolicyMatch::kAllowed);
}

TEST(RuntimePolicyTest, DuplicateAllowIsIdempotent) {
  RuntimePolicy p;
  p.allow("/usr/bin/x", std::string(64, '1'));
  p.allow("/usr/bin/x", std::string(64, '1'));
  EXPECT_EQ(p.entry_count(), 1u);
}

TEST(RuntimePolicyTest, DedupKeepsNewestHash) {
  RuntimePolicy p;
  p.allow("/usr/bin/x", std::string(64, '1'));
  p.allow("/usr/bin/x", std::string(64, '2'));
  EXPECT_EQ(p.dedup(), 1u);
  EXPECT_EQ(p.entry_count(), 1u);
  EXPECT_EQ(p.check("/usr/bin/x", std::string(64, '2')), PolicyMatch::kAllowed);
  EXPECT_EQ(p.check("/usr/bin/x", std::string(64, '1')),
            PolicyMatch::kHashMismatch)
      << "the stale hash must be gone after dedup";
}

TEST(RuntimePolicyTest, SerializeParseRoundTrip) {
  RuntimePolicy p;
  p.allow("/usr/bin/ls", std::string(64, 'a'));
  p.allow("/usr/bin/cat", std::string(64, 'b'));
  p.exclude("/tmp/*");
  auto parsed = RuntimePolicy::parse(p.serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().entry_count(), 2u);
  EXPECT_EQ(parsed.value().check("/usr/bin/ls", std::string(64, 'a')),
            PolicyMatch::kAllowed);
  EXPECT_EQ(parsed.value().check("/tmp/x", std::string(64, 'z')),
            PolicyMatch::kExcluded);
}

TEST(RuntimePolicyTest, ParseRejectsGarbage) {
  EXPECT_FALSE(RuntimePolicy::parse("not a policy line\n").ok());
  EXPECT_FALSE(RuntimePolicy::parse("/usr/bin/x sha256:short\n").ok());
}

TEST(RuntimePolicyTest, MergeCombines) {
  RuntimePolicy a, b;
  a.allow("/usr/bin/x", std::string(64, '1'));
  a.exclude("/tmp/*");
  b.allow("/usr/bin/y", std::string(64, '2'));
  b.exclude("/tmp/*");  // duplicate exclude must not double
  a.merge(b);
  EXPECT_EQ(a.entry_count(), 2u);
  EXPECT_EQ(a.excludes().size(), 1u);
}

TEST(RuntimePolicyTest, ByteSizeTracksEntries) {
  RuntimePolicy p;
  EXPECT_EQ(p.byte_size(), 0u);
  p.allow("/usr/bin/x", std::string(64, '1'));
  const auto one = p.byte_size();
  p.allow("/usr/bin/y", std::string(64, '2'));
  EXPECT_GT(p.byte_size(), one);
}

// ----------------------------------------------------- full protocol rig

struct Rig : ::testing::Test {
  Rig()
      : ca("tpm-manufacturer", to_bytes("mfg-seed")),
        network(&clock, 99),
        registrar(&network, &clock, 7),
        verifier(&network, &clock, 8),
        machine(make_config(), ca, &clock),
        agent(&machine, &network) {
    registrar.trust_manufacturer(ca.public_key());
    auto& fs = machine.fs();
    EXPECT_TRUE(fs.create_file("/usr/bin/ls", to_bytes("elf:ls"), true).ok());
    EXPECT_TRUE(fs.create_file("/usr/bin/cat", to_bytes("elf:cat"), true).ok());
  }

  static oskernel::MachineConfig make_config() {
    oskernel::MachineConfig cfg;
    cfg.hostname = "node0";
    return cfg;
  }

  RuntimePolicy baseline_policy() {
    RuntimePolicy p;
    p.allow("/usr/bin/ls", crypto::sha256(std::string("elf:ls")));
    p.allow("/usr/bin/cat", crypto::sha256(std::string("elf:cat")));
    return p;
  }

  void enroll() {
    ASSERT_TRUE(agent.register_with(Registrar::address()).ok());
    ASSERT_TRUE(verifier.add_agent("node0", agent.address()).ok());
    ASSERT_TRUE(verifier.set_policy("node0", baseline_policy()).ok());
  }

  SimClock clock;
  crypto::CertificateAuthority ca;
  netsim::SimNetwork network;
  Registrar registrar;
  Verifier verifier;
  oskernel::Machine machine;
  Agent agent;
};

TEST_F(Rig, RegistrationActivates) {
  EXPECT_FALSE(registrar.is_active("node0"));
  ASSERT_TRUE(agent.register_with(Registrar::address()).ok());
  EXPECT_TRUE(registrar.is_active("node0"));
  EXPECT_EQ(registrar.registered_count(), 1u);
}

TEST_F(Rig, RegistrationRejectsUntrustedManufacturer) {
  SimClock clock2;
  netsim::SimNetwork net2(&clock2, 1);
  Registrar strict(&net2, &clock2, 2);  // trusts nobody
  oskernel::MachineConfig cfg;
  cfg.hostname = "rogue";
  oskernel::Machine rogue_machine(cfg, ca, &clock2);
  Agent rogue_agent(&rogue_machine, &net2);
  EXPECT_FALSE(rogue_agent.register_with(Registrar::address()).ok());
  EXPECT_FALSE(strict.is_active("rogue"));
}

TEST_F(Rig, VerifierRefusesUnregisteredAgent) {
  EXPECT_FALSE(verifier.add_agent("node0", agent.address()).ok());
}

TEST_F(Rig, CleanAttestationPasses) {
  enroll();
  ASSERT_TRUE(machine.exec("/usr/bin/ls").ok());
  ASSERT_TRUE(machine.exec("/usr/bin/cat").ok());
  auto round = verifier.attest_once("node0");
  ASSERT_TRUE(round.ok());
  EXPECT_TRUE(round.value().alerts.empty());
  EXPECT_EQ(round.value().state, AgentState::kAttesting);
  EXPECT_EQ(round.value().new_entries, 3u);  // boot aggregate + 2 execs
}

TEST_F(Rig, IncrementalPollingOnlyShipsNewEntries) {
  enroll();
  ASSERT_TRUE(machine.exec("/usr/bin/ls").ok());
  ASSERT_TRUE(verifier.attest_once("node0").ok());
  ASSERT_TRUE(machine.exec("/usr/bin/cat").ok());
  auto round = verifier.attest_once("node0");
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(round.value().new_entries, 1u);
  EXPECT_TRUE(round.value().alerts.empty());
}

TEST_F(Rig, UnknownBinaryRaisesNotInPolicy) {
  enroll();
  ASSERT_TRUE(machine.fs().create_file("/usr/bin/evil", to_bytes("elf:evil"), true).ok());
  ASSERT_TRUE(machine.exec("/usr/bin/evil").ok());
  auto round = verifier.attest_once("node0");
  ASSERT_TRUE(round.ok());
  ASSERT_EQ(round.value().alerts.size(), 1u);
  EXPECT_EQ(round.value().alerts[0].type, AlertType::kNotInPolicy);
  EXPECT_EQ(round.value().alerts[0].path, "/usr/bin/evil");
  EXPECT_EQ(verifier.state("node0"), AgentState::kFailed);
}

TEST_F(Rig, ModifiedBinaryRaisesHashMismatch) {
  enroll();
  ASSERT_TRUE(machine.fs().write_file("/usr/bin/ls", to_bytes("elf:trojan")).ok());
  ASSERT_TRUE(machine.exec("/usr/bin/ls").ok());
  auto round = verifier.attest_once("node0");
  ASSERT_TRUE(round.ok());
  ASSERT_EQ(round.value().alerts.size(), 1u);
  EXPECT_EQ(round.value().alerts[0].type, AlertType::kHashMismatch);
}

TEST_F(Rig, FailedAgentIsNoLongerPolled_P2) {
  enroll();
  ASSERT_TRUE(machine.fs().create_file("/usr/bin/evil", to_bytes("e"), true).ok());
  ASSERT_TRUE(machine.exec("/usr/bin/evil").ok());
  ASSERT_TRUE(verifier.attest_once("node0").ok());
  ASSERT_EQ(verifier.state("node0"), AgentState::kFailed);

  const auto alerts_before = verifier.alerts().size();
  // New malicious activity while failed: nothing is fetched or evaluated.
  ASSERT_TRUE(machine.fs().create_file("/usr/bin/evil2", to_bytes("e2"), true).ok());
  ASSERT_TRUE(machine.exec("/usr/bin/evil2").ok());
  auto round = verifier.attest_once("node0");
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(round.value().new_entries, 0u);
  EXPECT_EQ(verifier.alerts().size(), alerts_before)
      << "stock Keylime stops polling after a failure (P2)";
}

TEST_F(Rig, StopOnFailureLeavesLogPartiallyEvaluated) {
  enroll();
  // Two violations in one batch: only the first is evaluated.
  ASSERT_TRUE(machine.fs().create_file("/usr/bin/evil1", to_bytes("e1"), true).ok());
  ASSERT_TRUE(machine.fs().create_file("/usr/bin/evil2", to_bytes("e2"), true).ok());
  ASSERT_TRUE(machine.exec("/usr/bin/evil1").ok());
  ASSERT_TRUE(machine.exec("/usr/bin/evil2").ok());
  auto round = verifier.attest_once("node0");
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(round.value().alerts.size(), 1u);
  EXPECT_GT(verifier.pending_entries("node0"), 0u)
      << "the incomplete attestation log of P2";
}

TEST_F(Rig, ContinueOnFailureEvaluatesWholeLog) {
  Verifier tolerant(&network, &clock, 10, VerifierConfig{.continue_on_failure = true});
  ASSERT_TRUE(agent.register_with(Registrar::address()).ok());
  ASSERT_TRUE(tolerant.add_agent("node0", agent.address()).ok());
  ASSERT_TRUE(tolerant.set_policy("node0", baseline_policy()).ok());

  ASSERT_TRUE(machine.fs().create_file("/usr/bin/evil1", to_bytes("e1"), true).ok());
  ASSERT_TRUE(machine.fs().create_file("/usr/bin/evil2", to_bytes("e2"), true).ok());
  ASSERT_TRUE(machine.exec("/usr/bin/evil1").ok());
  ASSERT_TRUE(machine.exec("/usr/bin/evil2").ok());
  auto round = tolerant.attest_once("node0");
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(round.value().alerts.size(), 2u)
      << "the mitigation must evaluate every entry";
  EXPECT_EQ(tolerant.pending_entries("node0"), 0u);
}

TEST_F(Rig, ResolveFailureResumesAndEvaluatesBacklog) {
  enroll();
  ASSERT_TRUE(machine.fs().create_file("/usr/bin/evil1", to_bytes("e1"), true).ok());
  ASSERT_TRUE(machine.fs().create_file("/usr/bin/evil2", to_bytes("e2"), true).ok());
  ASSERT_TRUE(machine.exec("/usr/bin/evil1").ok());
  ASSERT_TRUE(machine.exec("/usr/bin/evil2").ok());
  ASSERT_TRUE(verifier.attest_once("node0").ok());
  ASSERT_EQ(verifier.state("node0"), AgentState::kFailed);

  // Operator adds evil1 to the policy (it was a benign FP) and resolves.
  RuntimePolicy fixed = baseline_policy();
  fixed.allow("/usr/bin/evil1", crypto::sha256(std::string("e1")));
  ASSERT_TRUE(verifier.set_policy("node0", fixed).ok());
  ASSERT_TRUE(verifier.resolve_failure("node0").ok());

  auto round = verifier.attest_once("node0");
  ASSERT_TRUE(round.ok());
  ASSERT_EQ(round.value().alerts.size(), 1u)
      << "the backlog entry (evil2) is finally evaluated — late detection";
  EXPECT_EQ(round.value().alerts[0].path, "/usr/bin/evil2");
}

// A man-in-the-middle that forwards the agent's traffic verbatim except
// for rewriting the (unsigned) boot_count field of quote responses. The
// quote signature still covers the REAL boot count via bound_quote_nonce,
// so the verifier must reject the response outright.
class BootCountForgingProxy : public netsim::Endpoint {
 public:
  BootCountForgingProxy(netsim::SimNetwork* net, std::string target)
      : net_(net), target_(std::move(target)) {}

  bool forge = false;

  Result<Bytes> handle(const std::string& kind, const Bytes& payload) override {
    auto resp = net_->call(target_, kind, payload);
    if (!forge || kind != kMsgQuote || !resp.ok()) return resp;
    auto qr = QuoteResponse::decode(resp.value());
    if (!qr.ok()) return resp;
    qr.value().boot_count += 1;  // fake "the agent rebooted"
    return qr.value().encode();
  }

 private:
  netsim::SimNetwork* net_;
  std::string target_;
};

// Regression pin: acting on an UNAUTHENTICATED boot_count used to let a
// single garbled response roll log_offset back to zero, so the next
// round re-fetched the complete log and re-appraised (and re-alerted on)
// every entry. The reboot signal must only be honoured from a verified
// quote.
TEST_F(Rig, ForgedBootCountCannotRewindTheLogCursor) {
  ASSERT_TRUE(agent.register_with(Registrar::address()).ok());
  BootCountForgingProxy proxy(&network, agent.address());
  network.attach("mitm", &proxy);
  ASSERT_TRUE(verifier.add_agent("node0", "mitm").ok());
  ASSERT_TRUE(verifier.set_policy("node0", baseline_policy()).ok());
  ASSERT_TRUE(machine.exec("/usr/bin/ls").ok());
  ASSERT_TRUE(machine.exec("/usr/bin/cat").ok());

  auto clean = verifier.attest_once("node0");
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(clean.value().new_entries, 3u);  // boot aggregate + 2 execs
  EXPECT_TRUE(clean.value().alerts.empty());

  proxy.forge = true;
  auto forged = verifier.attest_once("node0");
  ASSERT_TRUE(forged.ok());
  ASSERT_EQ(forged.value().alerts.size(), 1u);
  EXPECT_EQ(forged.value().alerts[0].type, AlertType::kQuoteInvalid)
      << "a rewritten boot_count must fail quote verification";
  EXPECT_FALSE(forged.value().reboot_detected)
      << "an unauthenticated boot_count must never count as a reboot";

  // After the operator clears the alert, the log cursor must still be
  // where the clean round left it: nothing is re-fetched, nothing is
  // double-appraised.
  proxy.forge = false;
  ASSERT_TRUE(verifier.resolve_failure("node0").ok());
  auto resumed = verifier.attest_once("node0");
  ASSERT_TRUE(resumed.ok());
  EXPECT_EQ(resumed.value().new_entries, 0u)
      << "regression: forged boot_count rewound log_offset";
  EXPECT_TRUE(resumed.value().alerts.empty());

  // A genuine reboot (boot_count authenticated under the AK signature)
  // must still reset the incremental state.
  machine.reboot();
  auto rebooted = verifier.attest_once("node0");
  ASSERT_TRUE(rebooted.ok());
  EXPECT_TRUE(rebooted.value().reboot_detected);
}

TEST_F(Rig, RebootResetsAttestationState) {
  enroll();
  ASSERT_TRUE(machine.exec("/usr/bin/ls").ok());
  ASSERT_TRUE(verifier.attest_once("node0").ok());
  machine.reboot();
  auto round = verifier.attest_once("node0");
  ASSERT_TRUE(round.ok());
  EXPECT_TRUE(round.value().reboot_detected);
  // The next round replays the fresh log from scratch.
  ASSERT_TRUE(machine.exec("/usr/bin/cat").ok());
  auto round2 = verifier.attest_once("node0");
  ASSERT_TRUE(round2.ok());
  EXPECT_TRUE(round2.value().alerts.empty());
  EXPECT_EQ(round2.value().new_entries, 2u);  // boot aggregate + cat
}

TEST_F(Rig, ExcludedPathNeverAlerts_P1) {
  enroll();
  RuntimePolicy p = baseline_policy();
  p.exclude("/opt/scratch/*");
  ASSERT_TRUE(verifier.set_policy("node0", p).ok());
  ASSERT_TRUE(machine.fs().create_file("/opt/scratch/tool", to_bytes("t"), true).ok());
  ASSERT_TRUE(machine.exec("/opt/scratch/tool").ok());
  auto round = verifier.attest_once("node0");
  ASSERT_TRUE(round.ok());
  EXPECT_TRUE(round.value().alerts.empty())
      << "P1: Keylime path excludes silence everything beneath them";
}

TEST_F(Rig, DroppedNetworkIsTransient) {
  enroll();
  netsim::FaultConfig faults;
  faults.drop_rate = 1.0;
  network.set_faults(faults);
  auto round = verifier.attest_once("node0");
  ASSERT_TRUE(round.ok());
  ASSERT_EQ(round.value().alerts.size(), 1u);
  EXPECT_EQ(round.value().alerts[0].type, AlertType::kCommsFailure);
  EXPECT_EQ(verifier.state("node0"), AgentState::kAttesting)
      << "comms failures must not fail the agent";

  network.set_faults(netsim::FaultConfig{});
  auto round2 = verifier.attest_once("node0");
  ASSERT_TRUE(round2.ok());
  EXPECT_TRUE(round2.value().alerts.empty());
}

TEST_F(Rig, TamperedResponseIsRejected) {
  enroll();
  netsim::FaultConfig faults;
  faults.tamper_rate = 1.0;
  network.set_faults(faults);
  auto round = verifier.attest_once("node0");
  ASSERT_TRUE(round.ok());
  ASSERT_FALSE(round.value().alerts.empty());
  const AlertType t = round.value().alerts[0].type;
  EXPECT_TRUE(t == AlertType::kQuoteInvalid || t == AlertType::kReplayMismatch)
      << "a corrupted response must fail cryptographic validation";
}

TEST_F(Rig, TenantEnrollAndReport) {
  ASSERT_TRUE(agent.register_with(Registrar::address()).ok());
  Tenant tenant(&verifier, &registrar);
  ASSERT_TRUE(tenant.enroll(agent, baseline_policy()).ok());
  const std::string report = tenant.status_report();
  EXPECT_NE(report.find("node0"), std::string::npos);
  EXPECT_NE(report.find("attesting"), std::string::npos);
}

TEST_F(Rig, TenantStatusJson) {
  ASSERT_TRUE(agent.register_with(Registrar::address()).ok());
  Tenant tenant(&verifier, &registrar);
  ASSERT_TRUE(tenant.enroll(agent, baseline_policy()).ok());
  ASSERT_TRUE(machine.fs().create_file("/usr/bin/evil", to_bytes("e"), true).ok());
  ASSERT_TRUE(machine.exec("/usr/bin/evil").ok());
  ASSERT_TRUE(verifier.attest_once("node0").ok());

  const json::Value doc = tenant.status_json();
  const auto& agents = doc.find("agents")->as_array();
  ASSERT_EQ(agents.size(), 1u);
  EXPECT_EQ(agents[0].find("id")->as_string(), "node0");
  EXPECT_EQ(agents[0].find("state")->as_string(), "failed");
  EXPECT_EQ(agents[0].find("alerts")->as_int(), 1);
  // The JSON round-trips through the parser (dashboard-consumable).
  EXPECT_TRUE(json::parse(doc.dump()).ok());
}

TEST_F(Rig, TenantEnrollRequiresRegistration) {
  Tenant tenant(&verifier, &registrar);
  EXPECT_FALSE(tenant.enroll(agent, baseline_policy()).ok());
}

TEST_F(Rig, AttestAllCoversFleet) {
  enroll();
  oskernel::MachineConfig cfg2;
  cfg2.hostname = "node1";
  cfg2.seed = 2;
  oskernel::Machine machine2(cfg2, ca, &clock);
  Agent agent2(&machine2, &network);
  ASSERT_TRUE(agent2.register_with(Registrar::address()).ok());
  ASSERT_TRUE(verifier.add_agent("node1", agent2.address()).ok());
  ASSERT_TRUE(verifier.set_policy("node1", RuntimePolicy{}).ok());

  const auto rounds = verifier.attest_all();
  EXPECT_EQ(rounds.size(), 2u);
}

}  // namespace
}  // namespace cia::keylime
