// Integration tests for the experiment drivers: these assert the paper's
// headline results hold mechanistically on shortened runs, and the full
// Table II matrix on the real driver.
#include <gtest/gtest.h>

#include "common/strutil.hpp"
#include "experiments/fleet_experiment.hpp"
#include "experiments/fn_experiment.hpp"
#include "experiments/fp_experiment.hpp"
#include "experiments/report.hpp"
#include "experiments/testbed.hpp"
#include "experiments/workload.hpp"

namespace cia::experiments {
namespace {

TestbedOptions small_bed() {
  TestbedOptions options;
  options.provision_extra = 25;
  options.archive.base_package_count = 120;
  return options;
}

// ---------------------------------------------------------------- testbed

TEST(TestbedTest, EnrollRegistersAndAddsAgent) {
  Testbed bed(small_bed());
  ASSERT_TRUE(bed.enroll().ok());
  EXPECT_TRUE(bed.registrar.is_active("node0"));
}

TEST(TestbedTest, ProvisionedBinariesExist) {
  Testbed bed(small_bed());
  EXPECT_TRUE(bed.machine.fs().is_file("/usr/bin/bash"));
  EXPECT_TRUE(bed.machine.fs().is_file("/usr/bin/python3"));
  EXPECT_GT(bed.machine.fs().file_count(), 100u);
}

TEST(TestbedTest, SnapMountIsTruncated) {
  TestbedOptions options = small_bed();
  options.snap_enabled = true;
  Testbed bed(options);
  ASSERT_FALSE(bed.snap_host_paths().empty());
  ASSERT_EQ(bed.snap_host_paths().size(), bed.snap_visible_paths().size());
  EXPECT_TRUE(starts_with(bed.snap_host_paths()[0], "/snap/"));
  EXPECT_FALSE(starts_with(bed.snap_visible_paths()[0], "/snap/"));
}

TEST(TestbedTest, ScanPolicyCoversMachineExecutables) {
  Testbed bed(small_bed());
  const auto policy = scan_machine_policy(bed.machine, true);
  EXPECT_GT(policy.entry_count(), 100u);
  const auto st = bed.machine.fs().stat("/usr/bin/bash").value();
  EXPECT_EQ(policy.check("/usr/bin/bash", st.content_hash),
            keylime::PolicyMatch::kAllowed);
  EXPECT_EQ(policy.check("/tmp/anything", std::string(64, 'a')),
            keylime::PolicyMatch::kExcluded);
}

TEST(TestbedTest, DeterministicAcrossInstances) {
  Testbed a(small_bed());
  Testbed b(small_bed());
  EXPECT_EQ(scan_machine_policy(a.machine, true).serialize(),
            scan_machine_policy(b.machine, true).serialize());
}

// --------------------------------------------------------------- workload

TEST(WorkloadTest, SessionsProduceMeasurements) {
  Testbed bed(small_bed());
  Workload workload(&bed.machine, 7);
  const std::size_t before = bed.machine.ima().log().size();
  workload.run_session();
  EXPECT_GT(bed.machine.ima().log().size(), before + 5);
  EXPECT_EQ(workload.sessions(), 1);
}

TEST(WorkloadTest, CleanMachineAttestsGreenUnderScanPolicy) {
  Testbed bed(small_bed());
  ASSERT_TRUE(bed.enroll().ok());
  (void)bed.verifier.set_policy(bed.agent_id(),
                                scan_machine_policy(bed.machine, true));
  Workload workload(&bed.machine, 7);
  for (int i = 0; i < 3; ++i) {
    workload.run_session();
    bed.attest();
  }
  EXPECT_TRUE(bed.verifier.alerts().empty());
  EXPECT_EQ(bed.verifier.state(bed.agent_id()), keylime::AgentState::kAttesting);
}

TEST(TestbedTest, SnapScrubbingFixesTheTruncationFp) {
  TestbedOptions options = small_bed();
  options.snap_enabled = true;
  Testbed bed(options);
  ASSERT_TRUE(bed.enroll().ok());

  // Under the raw scan policy the SNAP binary alerts (§III-B)...
  keylime::RuntimePolicy raw = scan_machine_policy(bed.machine, true);
  ASSERT_TRUE(bed.verifier.set_policy(bed.agent_id(), raw).ok());
  (void)bed.machine.exec(bed.snap_host_paths()[0]);
  bed.attest();
  ASSERT_EQ(bed.verifier.alerts_for(bed.agent_id()).size(), 1u);
  EXPECT_EQ(bed.verifier.alerts_for(bed.agent_id())[0].path,
            bed.snap_visible_paths()[0]);

  // ...while the §III-C option (a) scrubbed policy matches the truncated
  // measurement. Fresh rig, same machine image.
  TestbedOptions options2 = small_bed();
  options2.snap_enabled = true;
  Testbed bed2(options2);
  ASSERT_TRUE(bed2.enroll().ok());
  std::size_t rewritten = 0;
  keylime::RuntimePolicy scrubbed = scrub_container_prefixes(
      scan_machine_policy(bed2.machine, true), bed2.machine, &rewritten);
  EXPECT_GE(rewritten, 2u) << "both snap binaries must be rewritten";
  ASSERT_TRUE(bed2.verifier.set_policy(bed2.agent_id(), scrubbed).ok());
  (void)bed2.machine.exec(bed2.snap_host_paths()[0]);
  bed2.attest();
  EXPECT_TRUE(bed2.verifier.alerts_for(bed2.agent_id()).empty());
}

// ------------------------------------------------------------ FP baseline

TEST(FpBaselineTest, StaticPolicyProducesUpdateFalsePositives) {
  FpBaselineOptions options;
  options.days = 4;
  options.archive.base_package_count = 120;
  options.provision_extra = 25;
  const auto result = run_fp_baseline(options);
  EXPECT_EQ(result.days, 4);
  EXPECT_GT(result.alerts_total, 0u)
      << "unattended upgrades must break a static policy within days";
  EXPECT_GT(result.update_hash_mismatch, 0u);
  EXPECT_GT(result.operator_interventions, 0u);
}

// --------------------------------------------------------- dynamic policy

TEST(DynamicPolicyTest, ShortRunHasZeroFalsePositives) {
  DynamicRunOptions options;
  options.days = 6;
  options.update_period_days = 1;
  options.archive.base_package_count = 150;
  options.provision_extra = 25;
  const auto result = run_dynamic_policy_experiment(options);
  EXPECT_EQ(result.updates_run, 6);
  EXPECT_EQ(result.false_positives, 0u)
      << "the dynamic policy scheme must keep attestation green";
  EXPECT_GT(result.base_policy_entries, 5000u);
}

TEST(DynamicPolicyTest, InjectedMirrorRaceCausesExactlyTheIncident) {
  DynamicRunOptions options;
  options.days = 6;
  options.update_period_days = 1;
  options.archive.base_package_count = 150;
  options.provision_extra = 25;
  options.inject_mirror_race = true;
  options.race_day = 4;
  const auto result = run_dynamic_policy_experiment(options);
  EXPECT_GT(result.false_positives, 0u);
  EXPECT_EQ(result.false_positives, result.incident_false_positives)
      << "every FP must be attributable to the injected operator error";
}

TEST(DynamicPolicyTest, WeeklyScheduleUpdatesLessOften) {
  DynamicRunOptions options;
  options.days = 14;
  options.update_period_days = 7;
  options.archive.base_package_count = 150;
  options.provision_extra = 25;
  const auto result = run_dynamic_policy_experiment(options);
  EXPECT_EQ(result.updates_run, 2);
  EXPECT_EQ(result.false_positives, 0u);
}

TEST(DynamicPolicyTest, UpdateStatsArePopulated) {
  DynamicRunOptions options;
  options.days = 6;
  options.archive.base_package_count = 150;
  options.provision_extra = 25;
  const auto result = run_dynamic_policy_experiment(options);
  ASSERT_EQ(result.updates.size(), 6u);
  bool any_packages = false;
  for (const auto& u : result.updates) {
    EXPECT_GE(u.seconds, 0.0);
    any_packages |= u.packages_processed > 0;
  }
  EXPECT_TRUE(any_packages);
}

// ----------------------------------------------------------------- fleet

TEST(FleetExperimentTest, SmallFleetStaysGreenUnderLoss) {
  FleetRunOptions options;
  options.nodes = 3;
  options.days = 3;
  options.archive.base_package_count = 100;
  options.provision_extra = 15;
  options.drop_rate = 0.05;
  const auto result = run_fleet_experiment(options);
  EXPECT_EQ(result.nodes, 3u);
  EXPECT_EQ(result.updates_run, 3);
  EXPECT_EQ(result.false_positives, 0u)
      << "the fleet must stay in policy through its upgrades";
  EXPECT_GT(result.polls, 100u);
  EXPECT_TRUE(result.audit_chain_intact);
  EXPECT_GT(result.audit_records, 50u);
}

// ---------------------------------------------------------------- Table II

TEST(FnExperimentTest, ReproducesTableII) {
  FnExperimentOptions options;
  options.archive_packages = 120;
  const auto reports = run_fn_experiment(options);
  ASSERT_EQ(reports.size(), 8u);
  for (const auto& r : reports) {
    EXPECT_EQ(r.basic, DetectionOutcome::kDetectedImmediately)
        << r.name << ": every basic attack is detected in the paper";
    EXPECT_EQ(r.adaptive, DetectionOutcome::kEvaded)
        << r.name << ": every adaptive attack evades in the paper";
    if (r.name == "Aoyama") {
      EXPECT_EQ(r.mitigated, DetectionOutcome::kEvaded)
          << "Aoyama (pure Python) must evade even the mitigations";
    } else {
      EXPECT_NE(r.mitigated, DetectionOutcome::kEvaded)
          << r.name << ": the recommended fixes must catch it";
    }
  }
}

// ----------------------------------------------------------------- report

TEST(ReportTest, RenderersProduceNonEmptyOutput) {
  DynamicRunOptions options;
  options.days = 3;
  options.archive.base_package_count = 120;
  options.provision_extra = 20;
  const auto run = run_dynamic_policy_experiment(options);
  EXPECT_NE(render_fig3(run).find("Fig. 3"), std::string::npos);
  EXPECT_NE(render_fig4(run).find("Fig. 4"), std::string::npos);
  EXPECT_NE(render_fig5(run).find("Fig. 5"), std::string::npos);
  EXPECT_NE(render_table1(run, run).find("Table I"), std::string::npos);
  EXPECT_NE(render_fp_effectiveness(run, run).find("66-day"),
            std::string::npos);
}

}  // namespace
}  // namespace cia::experiments
