// Unit tests for the testkit itself: the mutator, generators, shrinker,
// corpus IO, fuzz loop, and cross-layer invariant checker. The testkit
// guards every other test, so it gets its own guard here — in particular
// the determinism contracts (same seed, same bytes) that make CI fuzz
// failures replayable from two numbers.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "common/hex.hpp"
#include "ima/ima.hpp"
#include "testkit/corpus.hpp"
#include "testkit/fuzzer.hpp"
#include "testkit/generators.hpp"
#include "testkit/invariants.hpp"
#include "testkit/mutator.hpp"
#include "testkit/shrink.hpp"
#include "testkit/targets.hpp"

namespace cia::testkit {
namespace {

// ------------------------------------------------------------- mutator

TEST(MutatorTest, InterestingIntegersCoverTheWidthEdges) {
  const auto& ints = interesting_integers();
  for (std::uint64_t v : {std::uint64_t{0}, std::uint64_t{0x7f},
                          std::uint64_t{0xff}, std::uint64_t{0x7fff},
                          std::uint64_t{0xffffffff},
                          std::uint64_t{0xffffffffffffffff}}) {
    EXPECT_NE(std::find(ints.begin(), ints.end(), v), ints.end()) << v;
  }
}

TEST(MutatorTest, SameSeedSameMutants) {
  const Bytes input = to_bytes("0 deadbeef ima-ng sha256:cafe /usr/bin/x");
  ByteMutator a(42), b(42);
  for (int i = 0; i < 200; ++i) {
    ASSERT_EQ(a.mutate(input), b.mutate(input)) << "iteration " << i;
  }
}

TEST(MutatorTest, DifferentSeedsDiverge) {
  const Bytes input = to_bytes("the quick brown fox");
  ByteMutator a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.mutate(input) != b.mutate(input)) ++differing;
  }
  EXPECT_GT(differing, 40);
}

TEST(MutatorTest, RespectsSizeCapAndGrowsEmptyInput) {
  MutatorOptions options;
  options.max_output_size = 64;
  ByteMutator m(7, options);
  for (int i = 0; i < 300; ++i) {
    EXPECT_LE(m.mutate(Bytes(60, 'a')).size(), 64u);
  }
  int grew = 0;
  for (int i = 0; i < 50; ++i) {
    if (!m.mutate(Bytes{}).empty()) ++grew;
  }
  EXPECT_GT(grew, 0) << "empty inputs must grow via insertion";
}

TEST(MutatorTest, DictionaryTokensAppearInMutants) {
  MutatorOptions options;
  options.dictionary = {"sha256:", "boot_aggregate"};
  ByteMutator m(9, options);
  const Bytes input = to_bytes("xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx");
  int hits = 0;
  for (int i = 0; i < 500; ++i) {
    const std::string s = to_string(m.mutate(input));
    if (s.find("sha256:") != std::string::npos ||
        s.find("boot_aggregate") != std::string::npos) {
      ++hits;
    }
  }
  EXPECT_GT(hits, 10);
}

// ---------------------------------------------------------- generators

TEST(GeneratorTest, LogEntriesRoundTripAndCarryRealTemplateHashes) {
  Rng rng(5);
  for (int i = 0; i < 300; ++i) {
    const ima::LogEntry entry = gen_log_entry(rng);
    auto reparsed = ima::LogEntry::parse(entry.to_string());
    ASSERT_TRUE(reparsed.ok()) << entry.to_string();
    EXPECT_EQ(reparsed.value().to_string(), entry.to_string());
    // Template hash must match Ima::measure's construction.
    crypto::Sha256 ctx;
    ctx.update(crypto::digest_bytes(entry.file_hash));
    ctx.update(entry.path);
    EXPECT_EQ(entry.template_hash, ctx.finish());
  }
}

TEST(GeneratorTest, PathsCoverTheAdversarialShapes) {
  Rng rng(11);
  bool snap = false, tmp = false, tmpfs = false, script = false;
  for (int i = 0; i < 500; ++i) {
    const std::string p = gen_path(rng);
    ASSERT_FALSE(p.empty());
    ASSERT_EQ(p.front(), '/');
    snap = snap || p.rfind("/snap/", 0) == 0;
    tmp = tmp || p.rfind("/tmp/", 0) == 0;
    tmpfs = tmpfs || p.rfind("/dev/shm/", 0) == 0;
    script = script || (p.size() > 3 && p.rfind(".py") == p.size() - 3);
  }
  EXPECT_TRUE(snap && tmp && tmpfs && script);
}

TEST(GeneratorTest, JsonAlwaysReparses) {
  Rng rng(13);
  for (int i = 0; i < 200; ++i) {
    const json::Value v = gen_json(rng);
    auto parsed = json::parse(v.dump());
    ASSERT_TRUE(parsed.ok()) << v.dump();
    EXPECT_TRUE(parsed.value() == v);
  }
}

TEST(GeneratorTest, PoliciesSerializeRoundTrip) {
  Rng rng(17);
  for (int i = 0; i < 50; ++i) {
    const keylime::RuntimePolicy policy = gen_policy(rng, 32);
    auto parsed = keylime::RuntimePolicy::parse(policy.serialize());
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value().serialize(), policy.serialize());
  }
}

TEST(GeneratorTest, WireFramesSatisfyTheWireTargetContract) {
  const FuzzTarget* wire = find_target("wire");
  ASSERT_NE(wire, nullptr);
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    const FuzzOutcome outcome = wire->run(gen_wire_frame(rng));
    EXPECT_EQ(outcome.verdict, FuzzVerdict::kAccepted) << outcome.detail;
  }
}

// ------------------------------------------------------------ shrinker

TEST(ShrinkTest, MinimizesToTheSingleFailingByte) {
  Bytes input(600, 'a');
  input[317] = 'X';
  const Bytes minimized = shrink(
      input, [](const Bytes& b) {
        return std::find(b.begin(), b.end(), 'X') != b.end();
      });
  ASSERT_EQ(minimized.size(), 1u);
  EXPECT_EQ(minimized[0], 'X');
}

TEST(ShrinkTest, SimplifiesSurvivingBytes) {
  // The predicate only cares about length; content should simplify to the
  // canonical '0' filler.
  const Bytes minimized = shrink(to_bytes("zqzqzqzq"), [](const Bytes& b) {
    return b.size() >= 3;
  });
  ASSERT_EQ(minimized.size(), 3u);
  for (std::uint8_t byte : minimized) EXPECT_EQ(byte, '0');
}

TEST(ShrinkTest, DeterministicAndBounded) {
  Bytes input(4096, 'b');
  input[1000] = '!';
  const auto pred = [](const Bytes& b) {
    return std::find(b.begin(), b.end(), '!') != b.end();
  };
  ShrinkStats s1, s2;
  const Bytes a = shrink(input, pred, 100, &s1);
  const Bytes b = shrink(input, pred, 100, &s2);
  EXPECT_EQ(a, b);
  EXPECT_EQ(s1.attempts, s2.attempts);
  EXPECT_LE(s1.attempts, 100u);
}

TEST(ShrinkTest, TextWrapperMatchesByteShrinker) {
  const std::string minimized = shrink_text(
      "aaaaaaFAILaaaaaa",
      [](const std::string& s) { return s.find("FAIL") != std::string::npos; });
  EXPECT_EQ(minimized, "FAIL");
}

// -------------------------------------------------------------- corpus

TEST(CorpusTest, SaveLoadRoundTripSortedByName) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "cia_corpus_test").string();
  std::filesystem::remove_all(dir);
  ASSERT_TRUE(save_corpus_entry(dir, "b.bin", to_bytes("beta")).ok());
  ASSERT_TRUE(save_corpus_entry(dir, "a.bin", to_bytes("alpha")).ok());
  const auto entries = load_corpus(dir);
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].name, "a.bin");
  EXPECT_EQ(to_string(entries[0].data), "alpha");
  EXPECT_EQ(entries[1].name, "b.bin");
  std::filesystem::remove_all(dir);
}

TEST(CorpusTest, MissingDirectoryIsEmptyNotFatal) {
  EXPECT_TRUE(load_corpus("/nonexistent/cia/corpus").empty());
  EXPECT_TRUE(load_regressions("/nonexistent/cia", "json").empty());
}

TEST(CorpusTest, RegressionsFilterByTargetPrefix) {
  const std::string root =
      (std::filesystem::temp_directory_path() / "cia_corpus_reg").string();
  std::filesystem::remove_all(root);
  ASSERT_TRUE(
      save_corpus_entry(root + "/regressions", "json__a.json", to_bytes("1"))
          .ok());
  ASSERT_TRUE(save_corpus_entry(root + "/regressions", "wire__b.bin",
                                to_bytes("2"))
                  .ok());
  const auto json_only = load_regressions(root, "json");
  ASSERT_EQ(json_only.size(), 1u);
  EXPECT_EQ(json_only[0].name, "json__a.json");
  std::filesystem::remove_all(root);
}

TEST(CorpusTest, CommittedCorpusExistsForEveryTarget) {
  // default_corpus_root() resolves to the repo's tests/corpus at compile
  // time; every registered target must have committed seeds.
  const std::string root = default_corpus_root();
  for (const FuzzTarget& target : all_targets()) {
    EXPECT_FALSE(load_corpus(root + "/" + target.name).empty())
        << "no committed corpus for " << target.name;
  }
}

// ---------------------------------------------------------- fuzz loop

// A toy parser with a planted contract violation: inputs containing the
// dictionary token "BUG" anywhere are a violation; inputs starting with
// 'v' are accepted; everything else rejects.
FuzzTarget toy_target() {
  FuzzTarget t;
  t.name = "toy";
  t.run = [](const Bytes& input) {
    if (to_string(input).find("BUG") != std::string::npos) {
      return FuzzOutcome::violation("planted");
    }
    if (!input.empty() && input[0] == 'v') return FuzzOutcome::accepted();
    return FuzzOutcome::rejected();
  };
  t.generate = [](Rng& rng) { return to_bytes("v" + rng.ident(6)); };
  t.dictionary = {"BUG"};
  return t;
}

TEST(FuzzerTest, FindsAndShrinksThePlantedViolation) {
  FuzzOptions options;
  options.seed = 3;
  options.iterations = 3000;
  Fuzzer fuzzer(toy_target(), options);
  const FuzzReport report = fuzzer.run();
  ASSERT_FALSE(report.clean());
  ASSERT_TRUE(report.first_violation.has_value());
  EXPECT_EQ(to_string(*report.first_violation), "BUG")
      << "shrinker should reduce to exactly the token";
  EXPECT_EQ(report.first_violation_detail, "planted");
  EXPECT_GT(report.accepted, 0u);
  EXPECT_GT(report.rejected, 0u);
}

TEST(FuzzerTest, RunsAreDeterministic) {
  FuzzOptions options;
  options.seed = 8;
  options.iterations = 500;
  Fuzzer a(toy_target(), options);
  Fuzzer b(toy_target(), options);
  const FuzzReport ra = a.run();
  const FuzzReport rb = b.run();
  EXPECT_EQ(ra.accepted, rb.accepted);
  EXPECT_EQ(ra.rejected, rb.rejected);
  EXPECT_EQ(ra.violations, rb.violations);
  EXPECT_EQ(ra.first_violation, rb.first_violation);
}

TEST(FuzzerTest, SeedsReplayBeforeMutation) {
  FuzzOptions options;
  options.iterations = 0;  // replay only
  Fuzzer fuzzer(toy_target(), options);
  fuzzer.add_seed(to_bytes("vok"));
  fuzzer.add_seed(to_bytes("contains BUG here"));
  const FuzzReport report = fuzzer.run();
  EXPECT_EQ(report.iterations, 2u);
  EXPECT_EQ(report.accepted, 1u);
  EXPECT_EQ(report.violations, 1u);
}

// ----------------------------------------------------- invariant fleet

TEST(InvariantTest, CleanFleetRunWithRestartsAndTamper) {
  InvariantOptions options;
  options.seed = 21;
  options.machines = 2;
  options.rounds = 12;
  options.checkpoint_every = 4;
  const InvariantReport report = check_invariants(options);
  for (const auto& v : report.violations) {
    ADD_FAILURE() << v.invariant << " round " << v.round << ": " << v.detail;
  }
  EXPECT_EQ(report.rounds, 12u);
  EXPECT_GE(report.restarts, 2u) << "checkpoint/restore cadence must fire";
  EXPECT_GE(report.alerts, 1u) << "the planted tamper must alert";
  EXPECT_GT(report.checks, 50u);
}

TEST(InvariantTest, DeterministicAcrossRuns) {
  InvariantOptions options;
  options.seed = 34;
  options.machines = 2;
  options.rounds = 8;
  const InvariantReport a = check_invariants(options);
  const InvariantReport b = check_invariants(options);
  EXPECT_EQ(a.checks, b.checks);
  EXPECT_EQ(a.alerts, b.alerts);
  EXPECT_EQ(a.restarts, b.restarts);
  EXPECT_EQ(a.violations.size(), b.violations.size());
}

}  // namespace
}  // namespace cia::testkit
