// Adaptive-attack evasion regressions for P1–P5 (§III-B, §IV), driven by
// testkit-generated IMA logs rather than hand-picked fixtures.
//
// problems_test.cpp exercises each P once through the full machine rig;
// these tests attack the *appraisal layer* with generated measurement
// lists — adversarial path shapes straight from gen_path (SNAP and
// container namespace truncation, /tmp and tmpfs payloads, interpreter
// scripts, post-rename destinations) — and pin the exact PolicyMatch
// verdict each evasion or false positive hinges on, across several seeds.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "crypto/sha256.hpp"
#include "experiments/testbed.hpp"
#include "ima/ima.hpp"
#include "keylime/runtime_policy.hpp"
#include "oskernel/machine.hpp"
#include "testkit/generators.hpp"

namespace cia::testkit {
namespace {

using keylime::PolicyMatch;
using keylime::RuntimePolicy;

// A well-formed ima-ng entry at a chosen path with a chosen content hash,
// template-hashed the way Ima::measure does it.
ima::LogEntry forge(const std::string& path, const crypto::Digest& hash) {
  ima::LogEntry e;
  e.pcr = tpm::kImaPcr;
  e.template_name = "ima-ng";
  e.file_hash = hash;
  e.path = path;
  crypto::Sha256 ctx;
  ctx.update(crypto::digest_bytes(hash));
  ctx.update(path);
  e.template_hash = ctx.finish();
  return e;
}

crypto::Digest hash_of(Rng& rng) {
  return crypto::sha256(to_bytes("content:" + rng.ident(12)));
}

// The verifier-side policy an operator would distill from a golden run:
// every measured (path, hash) pair becomes an allow line.
RuntimePolicy distill(const std::vector<ima::LogEntry>& log) {
  RuntimePolicy policy;
  for (const auto& e : log) policy.allow(e.path, e.file_hash);
  return policy;
}

// Draw generated paths until one matches `pred` — the generator emits
// every shape with decent probability, so this terminates fast.
template <typename Pred>
std::string gen_path_where(Rng& rng, Pred pred) {
  for (int i = 0; i < 10000; ++i) {
    std::string p = gen_path(rng);
    if (pred(p)) return p;
  }
  ADD_FAILURE() << "generator never produced the requested path shape";
  return "/";
}

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

// ------------------------------------------------------------------- P1

TEST(P1Evasion, GeneratedTmpImplantRidesTheStockExcludeGlob) {
  for (std::uint64_t seed : {1u, 7u, 42u}) {
    Rng rng(seed);
    const auto golden = gen_log(rng, 24);
    RuntimePolicy hardened = distill(golden);
    RuntimePolicy stock = hardened;
    stock.exclude("/tmp/*");

    const std::string implant_path =
        gen_path_where(rng, [](const std::string& p) {
          return starts_with(p, "/tmp/");
        });
    const ima::LogEntry implant = forge(implant_path, hash_of(rng));

    // The implant IS in the measurement list (the quote covers it)...
    auto extended = golden;
    extended.push_back(implant);
    EXPECT_NE(ima::replay_log(extended), ima::replay_log(golden)) << seed;
    // ...but the stock exclude makes appraisal skip it entirely, while a
    // policy without the glob raises the not-in-policy alert.
    EXPECT_EQ(stock.check(implant.path, implant.file_hash),
              PolicyMatch::kExcluded)
        << implant_path;
    EXPECT_EQ(hardened.check(implant.path, implant.file_hash),
              PolicyMatch::kNotInPolicy)
        << implant_path;
  }
}

TEST(P1Evasion, ExcludeGlobIsScopedToTheDirectoryItNames) {
  RuntimePolicy policy;
  policy.exclude("/tmp/*");
  // '*' crosses '/' — the glob swallows the whole subtree, which is
  // exactly why the paper calls the stock exclusion over-broad.
  EXPECT_TRUE(policy.is_excluded("/tmp/x"));
  EXPECT_TRUE(policy.is_excluded("/tmp/a/b/c"));
  // But it must not leak onto lookalike prefixes an attacker could pick.
  EXPECT_FALSE(policy.is_excluded("/tmpfoo/x"));
  EXPECT_FALSE(policy.is_excluded("/var/tmp/x"));
  EXPECT_FALSE(policy.is_excluded("/tmp"));
}

// ------------------------------------------------------------------- P2

// The adaptive move: trigger one cheap nuisance failure, then drop the
// real payloads behind it. With halt-on-first-failure every later entry
// sits unevaluated in the backlog; continue_on_failure closes the window.
TEST(P2Evasion, NuisanceAlertBlindsEveryLaterGeneratedEntry) {
  constexpr std::size_t kImplants = 4;
  for (const bool mitigated : {false, true}) {
    experiments::TestbedOptions options;
    options.seed = 2026;
    options.provision_extra = 0;
    options.archive.base_package_count = 20;
    options.verifier_config.continue_on_failure = mitigated;
    experiments::Testbed bed(options);
    ASSERT_TRUE(bed.enroll().ok());
    ASSERT_TRUE(bed.verifier
                    .set_policy(bed.agent_id(),
                                experiments::scan_machine_policy(bed.machine,
                                                                 false))
                    .ok());
    bed.attest();
    ASSERT_TRUE(bed.verifier.alerts().empty()) << "baseline must be clean";

    Rng rng(options.seed);
    // Nuisance: a benign-looking unknown tool, executed first.
    const std::string nuisance = "/opt/tools/" + rng.ident(6);
    ASSERT_TRUE(
        bed.machine.fs().create_file(nuisance, to_bytes("lint"), true).ok());
    ASSERT_TRUE(bed.machine.exec(nuisance).ok());
    // Payloads: generated binaries executed in the nuisance's shadow.
    std::vector<std::string> implants;
    for (std::size_t i = 0; i < kImplants; ++i) {
      const std::string path = "/usr/local/bin/gen-" + rng.ident(6);
      ASSERT_TRUE(
          bed.machine.fs().create_file(path, to_bytes("elf:" + path), true)
              .ok());
      ASSERT_TRUE(bed.machine.exec(path).ok());
      implants.push_back(path);
    }
    bed.attest();

    const auto& alerts = bed.verifier.alerts();
    const auto alerted_on = [&](const std::string& path) {
      for (const auto& alert : alerts) {
        if (alert.path == path) return true;
      }
      return false;
    };
    EXPECT_TRUE(alerted_on(nuisance));
    if (mitigated) {
      EXPECT_EQ(alerts.size(), 1 + kImplants);
      for (const auto& path : implants) EXPECT_TRUE(alerted_on(path)) << path;
      EXPECT_EQ(bed.verifier.pending_entries(bed.agent_id()), 0u);
    } else {
      EXPECT_EQ(alerts.size(), 1u) << "halt semantics raise only the first";
      for (const auto& path : implants) EXPECT_FALSE(alerted_on(path)) << path;
      EXPECT_GE(bed.verifier.pending_entries(bed.agent_id()), kImplants)
          << "payloads must be stuck in the unevaluated backlog";
    }
  }
}

// ------------------------------------------------------------------- P3

TEST(P3Evasion, TmpfsImplantIsNeverMeasuredSoNoPolicyCanFlagIt) {
  SimClock clock;
  crypto::CertificateAuthority ca("evasion-mfg", to_bytes("evasion-ca"));
  Rng rng(99);

  oskernel::MachineConfig stock_cfg;
  stock_cfg.hostname = "p3-stock";
  stock_cfg.seed = 301;
  oskernel::Machine stock(stock_cfg, ca, &clock);
  const std::string implant = "/dev/shm/" + rng.ident(6);
  ASSERT_TRUE(
      stock.fs().create_file(implant, to_bytes("payload"), true).ok());
  const std::size_t before = stock.ima().log().size();
  ASSERT_TRUE(stock.exec(implant).ok());
  // The execution happened, the measurement did not: nothing reaches the
  // log, so the strictest verifier policy has nothing to appraise.
  EXPECT_EQ(stock.ima().log().size(), before);

  // The enriched IMA policy measures tmpfs, and only then does the
  // verifier-side allowlist get its chance to flag the payload.
  oskernel::MachineConfig enriched_cfg;
  enriched_cfg.hostname = "p3-enriched";
  enriched_cfg.seed = 301;
  enriched_cfg.ima_policy = ima::ImaPolicy::enriched();
  oskernel::Machine enriched(enriched_cfg, ca, &clock);
  const RuntimePolicy policy = distill(enriched.ima().log());
  ASSERT_TRUE(
      enriched.fs().create_file(implant, to_bytes("payload"), true).ok());
  const std::size_t base = enriched.ima().log().size();
  ASSERT_TRUE(enriched.exec(implant).ok());
  ASSERT_GT(enriched.ima().log().size(), base);
  const ima::LogEntry& measured = enriched.ima().log().back();
  EXPECT_EQ(measured.path, implant);
  EXPECT_EQ(policy.check(measured.path, measured.file_hash),
            PolicyMatch::kNotInPolicy);
}

// ------------------------------------------------------------------- P4

TEST(P4Evasion, AllowedHashAtAGeneratedDestinationStillFails) {
  // If the P4 mitigation re-measures after a move, the entry the verifier
  // sees carries an *allowed* hash at an unexpected path. The allowlist
  // must be (path, hash)-keyed: a known-good digest does not launder an
  // unknown location.
  for (std::uint64_t seed : {3u, 11u, 29u}) {
    Rng rng(seed);
    const auto golden = gen_log(rng, 16);
    const RuntimePolicy policy = distill(golden);
    const ima::LogEntry& victim = golden[rng.uniform(golden.size())];
    const std::string destination =
        gen_path_where(rng, [&](const std::string& p) {
          return starts_with(p, "/moved/") && p != victim.path;
        });
    const ima::LogEntry moved = forge(destination, victim.file_hash);
    EXPECT_EQ(policy.check(victim.path, victim.file_hash),
              PolicyMatch::kAllowed);
    EXPECT_EQ(policy.check(moved.path, moved.file_hash),
              PolicyMatch::kNotInPolicy)
        << destination;
  }
}

// ------------------------------------------------------------------- P5

TEST(P5Evasion, ScriptsAreInvisibleWhileOnlyTheInterpreterIsMeasured) {
  for (std::uint64_t seed : {5u, 13u}) {
    Rng rng(seed);
    const crypto::Digest interp_hash = hash_of(rng);
    RuntimePolicy policy;
    policy.allow("/usr/bin/python3", interp_hash);

    // Stock measurement of `python3 payload.py`: BPRM_CHECK fires on the
    // interpreter only — the whole generated log appraises clean.
    const std::vector<ima::LogEntry> stock_log = {
        forge("/usr/bin/python3", interp_hash)};
    for (const auto& e : stock_log) {
      EXPECT_EQ(policy.check(e.path, e.file_hash), PolicyMatch::kAllowed);
    }

    // A SEC-aware interpreter adds the script read as a measured entry;
    // only then does the generated payload become appraisable at all.
    const std::string script = gen_path_where(rng, [](const std::string& p) {
      return p.size() > 3 && p.compare(p.size() - 3, 3, ".py") == 0;
    });
    const ima::LogEntry script_entry = forge(script, hash_of(rng));
    std::size_t flagged = 0;
    for (const auto& e : {stock_log[0], script_entry}) {
      if (policy.check(e.path, e.file_hash) != PolicyMatch::kAllowed) {
        ++flagged;
      }
    }
    EXPECT_EQ(flagged, 1u) << script;
  }
}

// ------------------------------------------- §III-B path truncation

TEST(SnapTruncation, HostScanPolicyMisfiresOnTruncatedGeneratedPaths) {
  for (std::uint64_t seed : {2u, 17u, 57u}) {
    Rng rng(seed);
    // What the host-side filesystem scan records for a SNAP binary...
    const std::string host_path =
        gen_path_where(rng, [](const std::string& p) {
          return starts_with(p, "/snap/") &&
                 p.find("/usr/bin/") != std::string::npos;
        });
    // ...vs the mount-namespace-truncated path IMA actually logs.
    const std::string truncated = host_path.substr(host_path.find("/usr/bin/"));
    const crypto::Digest hash = hash_of(rng);

    RuntimePolicy scanned;
    scanned.allow(host_path, hash);
    const ima::LogEntry logged = forge(truncated, hash);
    // False positive: the measured binary is the allowed one, but the
    // policy knows it only under the host path.
    EXPECT_EQ(scanned.check(logged.path, logged.file_hash),
              PolicyMatch::kNotInPolicy)
        << host_path << " vs " << truncated;

    // Worse: if an unrelated host binary already owns the truncated path,
    // the verdict upgrades to "modified file" — a tampering alarm.
    RuntimePolicy colliding = scanned;
    colliding.allow(truncated, hash_of(rng));
    EXPECT_EQ(colliding.check(logged.path, logged.file_hash),
              PolicyMatch::kHashMismatch);

    // §III-C option (a): rewrite policy entries to the path IMA will
    // record (scrub_container_prefixes in the testbed does this for real
    // machines). The rewritten policy accepts the same generated entry.
    RuntimePolicy scrubbed;
    scrubbed.allow(truncated, hash);
    EXPECT_EQ(scrubbed.check(logged.path, logged.file_hash),
              PolicyMatch::kAllowed);
  }
}

TEST(SnapTruncation, ContainerRootfsVariantTruncatesTheSameWay) {
  Rng rng(23);
  // Generalized container case from the generator: "/<rootfs>/<file>"
  // measured as "/<file>" inside the namespace.
  for (int i = 0; i < 8; ++i) {
    const std::string host_path =
        gen_path_where(rng, [](const std::string& p) {
          // Rootfs-relative shape: exactly two components, short root.
          const std::size_t second = p.find('/', 1);
          return second != std::string::npos && second == 4 &&
                 p.find('/', second + 1) == std::string::npos &&
                 p.size() > second + 1;
        });
    const std::string truncated = host_path.substr(host_path.find('/', 1));
    const crypto::Digest hash = hash_of(rng);
    RuntimePolicy scanned;
    scanned.allow(host_path, hash);
    EXPECT_EQ(scanned.check(truncated, hash), PolicyMatch::kNotInPolicy)
        << host_path << " vs " << truncated;
    RuntimePolicy scrubbed;
    scrubbed.allow(truncated, hash);
    EXPECT_EQ(scrubbed.check(truncated, hash), PolicyMatch::kAllowed);
  }
}

}  // namespace
}  // namespace cia::testkit
