// Tests for the sharded verifier pool: consistent-hash ring behaviour,
// fleet-level attestation through PoolFleet, copy-on-write policy swaps,
// and the pool's two determinism contracts —
//
//   * the same (seed, shard count) reproduces a byte-identical telemetry
//     snapshot and identical per-shard audit chains;
//   * per-agent verdicts are invariant to the shard count, because every
//     shard network is seeded identically and per-link fault streams
//     derive from the agent's address, never from its shard.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "common/strutil.hpp"
#include "crypto/schnorr.hpp"
#include "crypto/sha256.hpp"
#include "experiments/pool_experiment.hpp"
#include "keylime/policy_index.hpp"
#include "keylime/verifier_pool.hpp"
#include "telemetry/export.hpp"
#include "testkit/invariants.hpp"

namespace cia {
namespace {

using experiments::PoolFleet;
using experiments::PoolFleetOptions;

std::vector<std::string> sequential_ids(std::size_t n) {
  std::vector<std::string> ids;
  ids.reserve(n);
  for (std::size_t i = 0; i < n; ++i) ids.push_back(strformat("agent-%04zu", i));
  return ids;
}

// ------------------------------------------------------ consistent hash

TEST(PoolRingTest, SequentialIdsSpreadAcrossShards) {
  keylime::VerifierPoolConfig config;
  config.shards = 8;
  keylime::VerifierPool pool(7, config);

  std::map<std::size_t, std::size_t> counts;
  for (const std::string& id : sequential_ids(1000)) counts[pool.shard_for(id)]++;

  // Sequentially named fleets are the worst case for a weak ring hash
  // (ids differ only in trailing digits); this pins the avalanche fix.
  ASSERT_EQ(counts.size(), 8u) << "every shard must own part of the fleet";
  for (const auto& [shard, n] : counts) {
    EXPECT_GT(n, 1000 / 8 / 4) << "shard " << shard << " owns almost nothing";
    EXPECT_LT(n, 1000 / 8 * 4) << "shard " << shard << " owns almost everything";
  }
}

TEST(PoolRingTest, AssignmentIsStableAcrossInstances) {
  keylime::VerifierPoolConfig config;
  config.shards = 6;
  keylime::VerifierPool a(1, config);
  keylime::VerifierPool b(2, config);  // pool seed does not shape the ring
  for (const std::string& id : sequential_ids(200)) {
    EXPECT_EQ(a.shard_for(id), b.shard_for(id)) << id;
  }
}

TEST(PoolRingTest, ResizeMovesOnlyAFractionOfTheFleet) {
  keylime::VerifierPoolConfig small, large;
  small.shards = 8;
  large.shards = 10;
  keylime::VerifierPool a(1, small);
  keylime::VerifierPool b(1, large);

  std::size_t moved = 0;
  const auto ids = sequential_ids(1000);
  for (const std::string& id : ids) {
    if (a.shard_for(id) != b.shard_for(id)) ++moved;
  }
  // Consistent hashing: growing 8 -> 10 shards should move roughly 1/5
  // of the keys, nowhere near the ~9/10 a modulo partition would.
  EXPECT_LT(moved, ids.size() / 2)
      << "resize reshuffled most of the fleet - ring is not consistent";
  EXPECT_GT(moved, 0u) << "new shards must take over some agents";
}

// ------------------------------------------------------ fleet behaviour

TEST(PoolFleetTest, CleanFleetAttestsOnEveryShard) {
  PoolFleetOptions options;
  options.agents = 16;
  options.shards = 4;
  options.seed = 11;
  PoolFleet fleet(options);
  ASSERT_TRUE(fleet.init_status().ok());
  ASSERT_TRUE(fleet.push_fleet_policy().ok());

  fleet.run_workload_round(0);
  const std::size_t polls = fleet.pool().run_round();
  EXPECT_EQ(polls, 16u);
  EXPECT_TRUE(fleet.pool().alerts().empty());
  for (const std::string& id : fleet.agent_ids()) {
    ASSERT_TRUE(fleet.pool().state(id).has_value()) << id;
    EXPECT_EQ(*fleet.pool().state(id), keylime::AgentState::kAttesting) << id;
  }
  EXPECT_EQ(fleet.pool().stats().polls, 16u);
  EXPECT_GT(fleet.pool().stats().index_hits, 0u)
      << "appraisal must be served by the PolicyIndex, not the linear scan";
}

TEST(PoolFleetTest, ViolationFailsOnlyTheOffendingAgent) {
  PoolFleetOptions options;
  options.agents = 12;
  options.shards = 4;
  options.seed = 13;
  PoolFleet fleet(options);
  ASSERT_TRUE(fleet.init_status().ok());
  ASSERT_TRUE(fleet.push_fleet_policy().ok());

  fleet.run_workload_round(0);
  fleet.exec_unknown(3);
  fleet.exec_unknown(7);
  fleet.pool().run_round();

  const std::set<std::string> bad = {fleet.agent_ids()[3], fleet.agent_ids()[7]};
  for (const std::string& id : fleet.agent_ids()) {
    const auto state = fleet.pool().state(id);
    ASSERT_TRUE(state.has_value()) << id;
    if (bad.count(id)) {
      EXPECT_EQ(*state, keylime::AgentState::kFailed) << id;
    } else {
      EXPECT_EQ(*state, keylime::AgentState::kAttesting) << id;
    }
  }
  std::set<std::string> alerted;
  for (const keylime::Alert& alert : fleet.pool().alerts()) {
    alerted.insert(alert.agent_id);
    EXPECT_EQ(alert.type, keylime::AlertType::kNotInPolicy);
  }
  EXPECT_EQ(alerted, bad);
}

TEST(PoolFleetTest, MergedAlertsAreDeterministicallyOrdered) {
  PoolFleetOptions options;
  options.agents = 10;
  options.shards = 3;
  options.seed = 17;
  PoolFleet fleet(options);
  ASSERT_TRUE(fleet.init_status().ok());
  ASSERT_TRUE(fleet.push_fleet_policy().ok());
  for (std::size_t i = 0; i < options.agents; ++i) fleet.exec_unknown(i);
  fleet.pool().run_round();

  const auto alerts = fleet.pool().alerts();
  ASSERT_EQ(alerts.size(), options.agents);
  for (std::size_t i = 1; i < alerts.size(); ++i) {
    const auto key = [](const keylime::Alert& a) {
      return std::tie(a.time, a.agent_id, a.log_index);
    };
    EXPECT_LE(key(alerts[i - 1]), key(alerts[i]))
        << "alerts() must merge shards into a deterministic order";
  }
}

// -------------------------------------------------- copy-on-write swaps

TEST(PoolPolicyTest, CowSwapAppliesAtTheNextBatchBoundary) {
  PoolFleetOptions options;
  options.agents = 8;
  options.shards = 4;
  options.seed = 23;
  PoolFleet fleet(options);
  ASSERT_TRUE(fleet.init_status().ok());
  ASSERT_TRUE(fleet.push_fleet_policy().ok());
  EXPECT_EQ(fleet.pool().policy_revision(), 1u);

  fleet.run_workload_round(0);
  fleet.pool().run_round();
  ASSERT_TRUE(fleet.pool().alerts().empty());

  // A new tool rolls out fleet-wide. Under the old revision it would
  // alert; the updated policy must win because the swap is applied
  // before the round's batch starts.
  for (std::size_t i = 0; i < options.agents; ++i) {
    ASSERT_TRUE(fleet.machine(i)
                    .fs()
                    .create_file("/usr/bin/rolled-out", to_bytes("elf:new"), true)
                    .ok());
    ASSERT_TRUE(fleet.machine(i).exec("/usr/bin/rolled-out").ok());
  }
  keylime::RuntimePolicy updated = fleet.fleet_policy();
  updated.allow("/usr/bin/rolled-out", crypto::sha256(std::string("elf:new")));
  ASSERT_TRUE(fleet.pool().set_fleet_policy(updated).ok());
  EXPECT_EQ(fleet.pool().policy_revision(), 2u);

  fleet.pool().run_round();
  EXPECT_TRUE(fleet.pool().alerts().empty())
      << "the round after the push must appraise under the new revision";
  EXPECT_GE(fleet.pool().stats().policy_swaps, options.agents)
      << "every agent's pending swap must have been drained";
}

TEST(PoolPolicyTest, SingleAgentPolicyRoutesToOwningShard) {
  PoolFleetOptions options;
  options.agents = 6;
  options.shards = 3;
  options.seed = 29;
  PoolFleet fleet(options);
  ASSERT_TRUE(fleet.init_status().ok());
  ASSERT_TRUE(fleet.push_fleet_policy().ok());

  // Agent 2 alone gets an extra allowance; only it may run the tool.
  fleet.exec_unknown(2);  // plants /usr/local/bin/dropper-0002
  keylime::RuntimePolicy special = fleet.fleet_policy();
  special.allow("/usr/local/bin/dropper-0002",
                crypto::sha256(std::string("elf:unknown:/usr/local/bin/dropper-0002")));
  ASSERT_TRUE(fleet.pool().set_policy(fleet.agent_ids()[2], special).ok());

  fleet.pool().run_round();
  EXPECT_EQ(*fleet.pool().state(fleet.agent_ids()[2]),
            keylime::AgentState::kAttesting);
  EXPECT_TRUE(fleet.pool().alerts().empty());
}

// ---------------------------------------------------------- determinism

struct RunArtifacts {
  std::string prometheus;                       // full telemetry snapshot
  std::vector<std::string> audit_heads;         // per shard, hex-free compare
  std::map<std::string, keylime::AgentState> verdicts;
  std::vector<std::tuple<std::string, keylime::AlertType, std::string>> alerts;
};

RunArtifacts run_scenario(std::size_t shards, std::uint64_t seed,
                          bool with_faults) {
  telemetry::MetricsRegistry metrics;
  PoolFleetOptions options;
  options.agents = 24;
  options.shards = shards;
  options.seed = seed;
  options.metrics = &metrics;
  PoolFleet fleet(options);
  EXPECT_TRUE(fleet.init_status().ok());
  EXPECT_TRUE(fleet.push_fleet_policy().ok());

  if (with_faults) {
    // Drops and tampering only: timeouts and latency would advance the
    // shard clocks by different amounts per partition, which is allowed
    // to change alert *timestamps* but we keep this scenario time-free
    // so even the telemetry comparison stays simple.
    netsim::FaultProfile chaos;
    chaos.drop_rate = 0.25;
    chaos.tamper_rate = 0.10;
    fleet.pool().set_fleet_faults(chaos);
  }

  fleet.run_workload_round(0);
  fleet.pool().run_round();
  fleet.exec_unknown(5);
  fleet.exec_unknown(13);
  fleet.run_workload_round(1);
  fleet.pool().run_round();

  RunArtifacts artifacts;
  artifacts.prometheus = telemetry::to_prometheus(metrics.snapshot());
  for (std::size_t s = 0; s < fleet.pool().shard_count(); ++s) {
    artifacts.audit_heads.push_back(
        crypto::digest_hex(fleet.pool().verifier(s).audit().head()));
  }
  for (const std::string& id : fleet.agent_ids()) {
    artifacts.verdicts[id] = *fleet.pool().state(id);
  }
  for (const keylime::Alert& a : fleet.pool().alerts()) {
    artifacts.alerts.emplace_back(a.agent_id, a.type, a.path);
  }
  std::sort(artifacts.alerts.begin(), artifacts.alerts.end());
  return artifacts;
}

TEST(PoolDeterminismTest, SameSeedAndShardCountIsByteIdentical) {
  const RunArtifacts a = run_scenario(4, 31, /*with_faults=*/true);
  const RunArtifacts b = run_scenario(4, 31, /*with_faults=*/true);

  EXPECT_EQ(a.prometheus, b.prometheus)
      << "telemetry snapshot must be byte-identical for a fixed "
         "(seed, shard count)";
  EXPECT_EQ(a.audit_heads, b.audit_heads)
      << "every shard's audit chain must replay identically";
  EXPECT_EQ(a.verdicts, b.verdicts);
  EXPECT_EQ(a.alerts, b.alerts);
}

TEST(PoolDeterminismTest, VerdictsInvariantToShardCount) {
  const RunArtifacts one = run_scenario(1, 37, /*with_faults=*/true);
  const RunArtifacts two = run_scenario(2, 37, /*with_faults=*/true);
  const RunArtifacts eight = run_scenario(8, 37, /*with_faults=*/true);

  // Re-partitioning the fleet must not change what any agent experiences:
  // shard networks share a seed and per-link fault streams key on the
  // agent address alone.
  EXPECT_EQ(one.verdicts, two.verdicts);
  EXPECT_EQ(one.verdicts, eight.verdicts);
  EXPECT_EQ(one.alerts, two.alerts);
  EXPECT_EQ(one.alerts, eight.alerts);
}

// ------------------------------------------------------ live resharding

using experiments::ChurnCampaignOptions;
using experiments::per_agent_chain_digests;
using experiments::run_churn_campaign;

/// Drive a churn-free advance_to campaign with the given resize
/// schedule and return the fleet's per-agent chain digests.
std::map<std::string, std::string> resharding_run(
    std::size_t shards, std::uint64_t seed,
    std::vector<std::pair<std::size_t, std::size_t>> resize_at,
    PoolFleet** keep = nullptr) {
  static std::vector<std::unique_ptr<PoolFleet>> kept;
  PoolFleetOptions base;
  base.agents = 24;
  base.shards = shards;
  base.seed = seed;
  auto fleet = std::make_unique<PoolFleet>(base);
  EXPECT_TRUE(fleet->init_status().ok());
  EXPECT_TRUE(fleet->push_fleet_policy().ok());
  ChurnCampaignOptions campaign;
  campaign.rounds = 8;
  campaign.max_joins_per_round = 0;
  campaign.max_leaves_per_round = 0;
  campaign.max_reboots_per_round = 0;
  campaign.resize_at = std::move(resize_at);
  const auto report = run_churn_campaign(*fleet, campaign);
  EXPECT_TRUE(report.status.ok()) << report.status.error().message;
  auto digests = per_agent_chain_digests(fleet->pool());
  if (keep) {
    *keep = fleet.get();
    kept.push_back(std::move(fleet));
  }
  return digests;
}

TEST(PoolReshardTest, MidCampaignResizeMatchesFinalShardCountRun) {
  // A grows 3 -> 6 shards mid-campaign; B runs at 6 shards throughout.
  // Every agent's audit sub-chain — verdicts, alert counts, quote
  // digests, linkage — must come out byte-identical: only the partition
  // changed, never what any agent experienced.
  PoolFleet* resized = nullptr;
  const auto a = resharding_run(3, 61, {{4, 6}}, &resized);
  const auto b = resharding_run(6, 61, {});
  ASSERT_EQ(a.size(), 24u);
  EXPECT_EQ(a, b);

  // Only ring-moved agents pay a handoff. The moved set is exactly the
  // ids whose ring assignment differs between a 3-shard and a 6-shard
  // ring (the ring is seed-independent).
  keylime::VerifierPoolConfig three, six;
  three.shards = 3;
  six.shards = 6;
  keylime::VerifierPool ring3(1, three), ring6(1, six);
  std::uint64_t moved = 0;
  ASSERT_NE(resized, nullptr);
  for (const std::string& id : resized->agent_ids()) {
    const bool moves = ring3.shard_for(id) != ring6.shard_for(id);
    moved += moves ? 1 : 0;
    EXPECT_EQ(resized->pool().handoffs(id), moves ? 1u : 0u) << id;
  }
  EXPECT_GT(moved, 0u) << "a 3->6 resize that moves nobody pins nothing";
  const auto& stats = resized->pool().migration_stats();
  EXPECT_EQ(stats.resizes, 1u);
  EXPECT_EQ(stats.ok, moved) << "fault-free handoffs must all deliver";
  EXPECT_EQ(stats.fallback, 0u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(resized->pool().active_shard_count(), 6u);
}

TEST(PoolReshardTest, ShrinkRetiresShardsWithoutDisturbingChains) {
  PoolFleet* shrunk = nullptr;
  const auto a = resharding_run(4, 83, {{3, 2}}, &shrunk);
  const auto b = resharding_run(2, 83, {});
  EXPECT_EQ(a, b);

  ASSERT_NE(shrunk, nullptr);
  EXPECT_EQ(shrunk->pool().active_shard_count(), 2u);
  // Retired shards stay allocated (their clocks/networks may be
  // referenced externally) but own nothing.
  EXPECT_EQ(shrunk->pool().shard_count(), 4u);
  EXPECT_TRUE(shrunk->pool().verifier(2).agent_ids().empty());
  EXPECT_TRUE(shrunk->pool().verifier(3).agent_ids().empty());
  // And the fleet keeps attesting on the surviving shards.
  EXPECT_EQ(shrunk->pool().run_round(), shrunk->agent_ids().size());
}

TEST(PoolReshardTest, ChurnCampaignVerdictsInvariantAcrossResizePoints) {
  // Full churn — joins, leaves, reboots — with two resize points versus
  // the identical campaign with none: zero drift, and the cross-shard
  // chain invariant holds over every shard ever allocated.
  auto run = [](std::vector<std::pair<std::size_t, std::size_t>> resizes,
                std::map<std::string, std::string>* digests) {
    PoolFleetOptions options;
    options.agents = 24;
    options.shards = 3;
    options.seed = 19;
    PoolFleet fleet(options);
    ASSERT_TRUE(fleet.init_status().ok());
    ASSERT_TRUE(fleet.push_fleet_policy().ok());
    ChurnCampaignOptions campaign;
    campaign.rounds = 10;
    campaign.resize_at = std::move(resizes);
    const auto report = run_churn_campaign(fleet, campaign);
    ASSERT_TRUE(report.status.ok()) << report.status.error().message;
    *digests = per_agent_chain_digests(fleet.pool());

    std::vector<const keylime::AuditLog*> logs;
    for (std::size_t s = 0; s < fleet.pool().shard_count(); ++s) {
      logs.push_back(&fleet.pool().verifier(s).audit());
    }
    const auto violations = testkit::check_cross_shard_audit_chains(logs);
    EXPECT_TRUE(violations.empty())
        << violations.size() << " broken sub-chains, first: "
        << (violations.empty() ? "" : violations.front().detail);
  };

  std::map<std::string, std::string> with_resizes, baseline;
  run({{3, 7}, {7, 2}}, &with_resizes);
  run({}, &baseline);
  EXPECT_FALSE(with_resizes.empty());
  EXPECT_EQ(with_resizes, baseline);
}

TEST(PoolReshardTest, HandoffFaultsNeverWedgeOrForkAChain) {
  PoolFleetOptions options;
  options.agents = 32;
  options.shards = 3;
  options.seed = 29;
  PoolFleet fleet(options);
  ASSERT_TRUE(fleet.init_status().ok());
  ASSERT_TRUE(fleet.push_fleet_policy().ok());

  // Chaos on the handoff links only: drops, duplicates, timeouts, and
  // tampered acks. Every migration must either retry to completion or
  // fall back to a clean single-agent re-enrollment — never a wedged
  // shard, never a forked chain.
  netsim::FaultProfile chaos;
  chaos.drop_rate = 0.35;
  chaos.duplicate_rate = 0.25;
  chaos.timeout_rate = 0.15;
  chaos.tamper_rate = 0.25;
  fleet.pool().set_handoff_faults(chaos);

  for (std::uint64_t round = 0; round < 3; ++round) {
    fleet.run_workload_round(round);
    fleet.pool().run_round();
  }
  ASSERT_TRUE(fleet.pool().resize(8).ok());
  for (std::uint64_t round = 3; round < 6; ++round) {
    fleet.run_workload_round(round);
    fleet.pool().run_round();
  }
  ASSERT_TRUE(fleet.pool().resize(2).ok());

  const auto& stats = fleet.pool().migration_stats();
  EXPECT_EQ(stats.resizes, 2u);
  EXPECT_GT(stats.ok + stats.fallback + stats.failed, 0u);
  EXPECT_GT(stats.retries, 0u) << "chaos this heavy must cost retries";

  // No agent is lost or wedged: every one still resolves to a live
  // shard, still polls, and the union of every shard's records still
  // forms whole per-agent sub-chains.
  EXPECT_EQ(fleet.pool().run_round(), fleet.agent_ids().size());
  for (const std::string& id : fleet.agent_ids()) {
    ASSERT_TRUE(fleet.pool().state(id).has_value()) << id;
  }
  std::vector<const keylime::AuditLog*> logs;
  for (std::size_t s = 0; s < fleet.pool().shard_count(); ++s) {
    logs.push_back(&fleet.pool().verifier(s).audit());
  }
  const auto violations = testkit::check_cross_shard_audit_chains(logs);
  EXPECT_TRUE(violations.empty())
      << violations.size() << " broken sub-chains, first: "
      << (violations.empty() ? "" : violations.front().detail);
}

TEST(PoolReshardTest, CrossShardCheckerFlagsAForkedSubChain) {
  const auto key = [] {
    return crypto::derive_keypair(to_bytes("fork-seed"), "test");
  };
  keylime::AuditLog a(key()), b(key());
  // Two shards both extend agent "x" from the same point — the forked
  // history a botched handoff would create if fallback did not seed the
  // destination tail.
  a.append(0, "x", keylime::AuditVerdict::kPassed, 0, 1,
           crypto::sha256(std::string("q0")));
  b.append(60, "x", keylime::AuditVerdict::kPassed, 0, 1,
           crypto::sha256(std::string("q1")));
  const auto violations = testkit::check_cross_shard_audit_chains({&a, &b});
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].invariant, "cross_shard_chain");
  EXPECT_NE(violations[0].detail.find("forked"), std::string::npos)
      << violations[0].detail;

  // A legitimate continuation — the tail handed to the second log the
  // way a migration does — is clean.
  keylime::AuditLog c(key()), d(key());
  c.append(0, "y", keylime::AuditVerdict::kPassed, 0, 1,
           crypto::sha256(std::string("q0")));
  d.set_agent_tail("y", c.agent_tail("y"));
  d.append(60, "y", keylime::AuditVerdict::kFailed, 1, 1,
           crypto::sha256(std::string("q1")));
  EXPECT_TRUE(testkit::check_cross_shard_audit_chains({&c, &d}).empty());
}

// --------------------------------------------------------- policy index

TEST(PolicyIndexTest, AgreesWithLinearScanOnFixedCases) {
  keylime::RuntimePolicy policy;
  policy.allow("/usr/bin/ls", std::string(64, 'a'));
  policy.allow("/var/cache/app/blob", std::string(64, 'b'));
  policy.exclude("/var/cache/*");   // compiled: directory prefix
  policy.exclude("*.log");          // general: suffix glob
  policy.exclude("*/scratch/*");    // general: infix glob
  const auto index = keylime::PolicyIndex::build(policy, 1);

  const std::vector<std::pair<std::string, std::string>> probes = {
      {"/usr/bin/ls", std::string(64, 'a')},
      {"/usr/bin/ls", std::string(64, 'x')},
      {"/var/cache/app/blob", std::string(64, 'b')},   // excluded wins
      {"/var/cache/other/file", std::string(64, 'c')},
      {"/opt/app/daemon.log", std::string(64, 'd')},
      {"/opt/scratch/tool", std::string(64, 'e')},     // no infix match
      {"/opt/x/scratch/tool", std::string(64, 'e')},
      {"/usr/bin/unknown", std::string(64, 'f')},
  };
  for (const auto& [path, hash] : probes) {
    EXPECT_EQ(index->check(path, hash), policy.check(path, hash)) << path;
  }
}

TEST(PolicyIndexTest, DirPrefixGlobsCompileAndMatchOnBoundaries) {
  keylime::RuntimePolicy policy;
  policy.exclude("/var/cache/*");
  const auto index = keylime::PolicyIndex::build(policy, 1);
  EXPECT_TRUE(index->excluded_by_scan("/var/cache/x"));
  EXPECT_TRUE(index->excluded_by_scan("/var/cache/deep/nested/x"));
  EXPECT_FALSE(index->excluded_by_scan("/var/cachemate/x"))
      << "a directory prefix must only match at a '/' boundary";
  EXPECT_FALSE(index->excluded_by_scan("/var/cache"))
      << "glob '/var/cache/*' does not match the bare directory itself";
}

TEST(PolicyIndexTest, ReportsHitsAndMisses) {
  keylime::RuntimePolicy policy;
  policy.allow("/usr/bin/ls", std::string(64, 'a'));
  const auto index = keylime::PolicyIndex::build(policy, 3);
  EXPECT_EQ(index->revision(), 3u);

  bool known = false;
  index->check("/usr/bin/ls", std::string(64, 'a'), &known);
  EXPECT_TRUE(known);
  index->check("/usr/bin/other", std::string(64, 'a'), &known);
  EXPECT_FALSE(known);
}

}  // namespace
}  // namespace cia
