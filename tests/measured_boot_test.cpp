// Measured-boot attestation tests: the PCR 0/4/7 chain, the boot
// aggregate binding, refstate pinning in the verifier, and bootkit
// detection across reboots.
#include <gtest/gtest.h>

#include <map>

#include "keylime/agent.hpp"
#include "keylime/registrar.hpp"
#include "keylime/verifier.hpp"
#include "oskernel/machine.hpp"

namespace cia {
namespace {

struct MbRig : ::testing::Test {
  MbRig()
      : ca("mfg", to_bytes("mfg-seed")),
        network(&clock, 1),
        registrar(&network, &clock, 2),
        verifier(&network, &clock, 3),
        machine(config(), ca, &clock),
        agent(&machine, &network) {
    registrar.trust_manufacturer(ca.public_key());
    EXPECT_TRUE(machine.fs().create_file("/usr/bin/app", to_bytes("elf:app"),
                                         true).ok());
    EXPECT_TRUE(agent.register_with(keylime::Registrar::address()).ok());
    EXPECT_TRUE(verifier.add_agent("mb-node", agent.address()).ok());
    keylime::RuntimePolicy policy;
    policy.allow("/usr/bin/app", crypto::sha256(std::string("elf:app")));
    EXPECT_TRUE(verifier.set_policy("mb-node", policy).ok());
  }

  static oskernel::MachineConfig config() {
    oskernel::MachineConfig cfg;
    cfg.hostname = "mb-node";
    return cfg;
  }

  SimClock clock;
  crypto::CertificateAuthority ca;
  netsim::SimNetwork network;
  keylime::Registrar registrar;
  keylime::Verifier verifier;
  oskernel::Machine machine;
  keylime::Agent agent;
};

TEST_F(MbRig, BootExtendsBootChainPcrs) {
  EXPECT_NE(machine.tpm().pcr_value(0), crypto::zero_digest());
  EXPECT_NE(machine.tpm().pcr_value(4), crypto::zero_digest());
  EXPECT_NE(machine.tpm().pcr_value(7), crypto::zero_digest());
}

TEST_F(MbRig, IdenticalBootsReproduceIdenticalPcrs) {
  const auto before = keylime::MbRefstate::capture(machine.tpm());
  machine.reboot();
  const auto after = keylime::MbRefstate::capture(machine.tpm());
  EXPECT_EQ(before, after)
      << "an unchanged boot chain must reproduce the same PCR values";
}

TEST_F(MbRig, BootAggregateChangesWithBootChain) {
  const auto first_aggregate = machine.ima().log()[0].file_hash;
  ASSERT_TRUE(machine.fs()
                  .write_file(oskernel::Machine::kBootloaderPath,
                              to_bytes("efi:bootkit"))
                  .ok());
  machine.reboot();
  EXPECT_NE(machine.ima().log()[0].file_hash, first_aggregate)
      << "the boot aggregate is the hash of PCRs 0-7";
}

TEST_F(MbRig, RefstateAcceptsHealthyBoots) {
  ASSERT_TRUE(verifier
                  .set_mb_refstate("mb-node",
                                   keylime::MbRefstate::capture(machine.tpm()))
                  .ok());
  (void)machine.exec("/usr/bin/app");
  auto round = verifier.attest_once("mb-node");
  ASSERT_TRUE(round.ok());
  EXPECT_TRUE(round.value().alerts.empty());

  machine.reboot();
  auto reboot_round = verifier.attest_once("mb-node");
  ASSERT_TRUE(reboot_round.ok());
  EXPECT_TRUE(reboot_round.value().reboot_detected);
  auto after = verifier.attest_once("mb-node");
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(after.value().alerts.empty())
      << "a clean reboot reproduces the refstate";
}

TEST_F(MbRig, TamperedBootloaderIsDetectedAfterReboot) {
  ASSERT_TRUE(verifier
                  .set_mb_refstate("mb-node",
                                   keylime::MbRefstate::capture(machine.tpm()))
                  .ok());
  // A bootkit replaces the first-stage bootloader. Nothing happens until
  // the next boot: IMA does not measure /boot writes.
  ASSERT_TRUE(machine.fs()
                  .write_file(oskernel::Machine::kBootloaderPath,
                              to_bytes("efi:bootkit"))
                  .ok());
  auto round = verifier.attest_once("mb-node");
  ASSERT_TRUE(round.ok());
  EXPECT_TRUE(round.value().alerts.empty()) << "dormant bootkit is invisible";

  machine.reboot();
  (void)verifier.attest_once("mb-node");  // reboot detection round
  auto after = verifier.attest_once("mb-node");
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(after.value().alerts.size(), 1u);
  EXPECT_EQ(after.value().alerts[0].type,
            keylime::AlertType::kMeasuredBootMismatch);
  EXPECT_EQ(verifier.state("mb-node"), keylime::AgentState::kFailed);
}

TEST_F(MbRig, RogueSecurebootKeyIsDetected) {
  ASSERT_TRUE(verifier
                  .set_mb_refstate("mb-node",
                                   keylime::MbRefstate::capture(machine.tpm()))
                  .ok());
  machine.enroll_secureboot_key("db:attacker-mok-2026");
  machine.reboot();
  (void)verifier.attest_once("mb-node");
  (void)verifier.attest_once("mb-node");
  const auto alerts = verifier.alerts_for("mb-node");
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].type, keylime::AlertType::kMeasuredBootMismatch);
}

TEST_F(MbRig, KernelUpgradeChangesPcr4) {
  // Installing and booting a new kernel image legitimately changes the
  // boot chain; operators must re-capture the refstate (the MB analogue
  // of the paper's dynamic policy updates).
  ASSERT_TRUE(machine.fs()
                  .create_file("/boot/vmlinuz-5.15.0-102-generic",
                               to_bytes("vmlinuz:102"), true)
                  .ok());
  const auto before = machine.tpm().pcr_value(4);
  machine.schedule_kernel("5.15.0-102-generic");
  machine.reboot();
  EXPECT_NE(machine.tpm().pcr_value(4), before);
}

TEST_F(MbRig, NoRefstateMeansNoBootChecking) {
  ASSERT_TRUE(machine.fs()
                  .write_file(oskernel::Machine::kBootloaderPath,
                              to_bytes("efi:bootkit"))
                  .ok());
  machine.reboot();
  (void)verifier.attest_once("mb-node");
  auto after = verifier.attest_once("mb-node");
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(after.value().alerts.empty())
      << "without a pinned refstate the verifier only checks IMA's PCR";
}

TEST_F(MbRig, BootEventLogIsRecorded) {
  const auto& events = machine.boot_event_log();
  ASSERT_GE(events.size(), 5u);  // firmware + 2 sb keys + bootloader + kernel
  EXPECT_EQ(events[0].pcr, 0);
  EXPECT_NE(events[0].description.find("firmware"), std::string::npos);
}

TEST_F(MbRig, BootLogAttestationCleanOnHealthyNode) {
  ASSERT_TRUE(verifier
                  .set_boot_baseline("mb-node", machine.boot_event_log())
                  .ok());
  auto report = verifier.attest_boot_log("mb-node");
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.value().clean());
  EXPECT_TRUE(report.value().log_matches_quote);
}

TEST_F(MbRig, BootLogNamesTheChangedComponent) {
  ASSERT_TRUE(verifier
                  .set_boot_baseline("mb-node", machine.boot_event_log())
                  .ok());
  ASSERT_TRUE(machine.fs()
                  .write_file(oskernel::Machine::kBootloaderPath,
                              to_bytes("efi:bootkit"))
                  .ok());
  machine.reboot();
  auto report = verifier.attest_boot_log("mb-node");
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.value().log_matches_quote)
      << "the log is honest — the component itself changed";
  ASSERT_EQ(report.value().changed.size(), 1u);
  EXPECT_NE(report.value().changed[0].find("bootloader"), std::string::npos)
      << "the operator learns WHICH component changed, not just that a PCR "
         "diverged";
  EXPECT_TRUE(report.value().added.empty());
  EXPECT_TRUE(report.value().removed.empty());
}

TEST_F(MbRig, BootLogReportsAddedSecurebootKey) {
  ASSERT_TRUE(verifier
                  .set_boot_baseline("mb-node", machine.boot_event_log())
                  .ok());
  machine.enroll_secureboot_key("db:attacker-mok-2026");
  machine.reboot();
  auto report = verifier.attest_boot_log("mb-node");
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report.value().added.size(), 1u);
  EXPECT_NE(report.value().added[0].find("attacker-mok"), std::string::npos);
}

TEST_F(MbRig, ForgedBootLogIsInconsistentWithQuote) {
  // A compromised agent could ship a doctored event log, but it cannot
  // make the TPM quote match: the fold check exposes the lie.
  // Simulate by comparing a stale baseline log's fold with current PCRs
  // after a real change.
  ASSERT_TRUE(verifier
                  .set_boot_baseline("mb-node", machine.boot_event_log())
                  .ok());
  const auto honest = machine.boot_event_log();
  ASSERT_TRUE(machine.fs()
                  .write_file(oskernel::Machine::kBootloaderPath,
                              to_bytes("efi:bootkit"))
                  .ok());
  machine.reboot();
  // The agent (honest in our rig) reports the real post-compromise log,
  // which matches the quote. Folding the *old* log against the new quote
  // must NOT match — this is exactly the check attest_boot_log performs.
  std::map<int, crypto::Digest> folded;
  for (const auto& e : honest) {
    auto [it2, inserted] = folded.emplace(e.pcr, crypto::zero_digest());
    crypto::Sha256 ctx;
    ctx.update(it2->second.data(), it2->second.size());
    ctx.update(e.digest.data(), e.digest.size());
    it2->second = ctx.finish();
  }
  EXPECT_NE(folded[4], machine.tpm().pcr_value(4));
}

}  // namespace
}  // namespace cia
