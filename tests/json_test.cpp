// Unit tests for the JSON module and the Keylime JSON policy format.
#include <gtest/gtest.h>

#include "common/json.hpp"
#include "common/rng.hpp"
#include "keylime/runtime_policy.hpp"

namespace cia::json {
namespace {

// ---------------------------------------------------------------- values

TEST(JsonValueTest, TypePredicates) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_TRUE(Value(true).is_bool());
  EXPECT_TRUE(Value(3.5).is_number());
  EXPECT_TRUE(Value("s").is_string());
  EXPECT_TRUE(Value(Array{}).is_array());
  EXPECT_TRUE(Value(Object{}).is_object());
}

TEST(JsonValueTest, ObjectBuilding) {
  Value doc;
  doc.set("name", "keylime");
  doc.set("count", 3);
  doc.set("ok", true);
  EXPECT_EQ(doc.find("name")->as_string(), "keylime");
  EXPECT_EQ(doc.find("count")->as_int(), 3);
  EXPECT_TRUE(doc.find("ok")->as_bool());
  EXPECT_EQ(doc.find("missing"), nullptr);
}

TEST(JsonValueTest, ArrayBuilding) {
  Value list;
  list.push_back(1);
  list.push_back("two");
  ASSERT_TRUE(list.is_array());
  EXPECT_EQ(list.as_array().size(), 2u);
}

TEST(JsonValueTest, CopyAndMoveSemantics) {
  Value doc;
  doc.set("k", Value(Array{Value(1), Value(2)}));
  Value copy = doc;
  EXPECT_EQ(copy, doc);
  Value moved = std::move(copy);
  EXPECT_EQ(moved, doc);
}

// ------------------------------------------------------------ serialization

TEST(JsonDumpTest, CompactForm) {
  Value doc;
  doc.set("a", 1);
  doc.set("b", Value(Array{Value("x"), Value(true), Value(nullptr)}));
  EXPECT_EQ(doc.dump(), R"({"a":1,"b":["x",true,null]})");
}

TEST(JsonDumpTest, EscapesSpecials) {
  EXPECT_EQ(Value("a\"b\\c\nd").dump(), R"("a\"b\\c\nd")");
  EXPECT_EQ(escape(std::string(1, '\x01')), "\\u0001");
}

TEST(JsonDumpTest, NumbersIntegralAndReal) {
  EXPECT_EQ(Value(42).dump(), "42");
  EXPECT_EQ(Value(-7).dump(), "-7");
  EXPECT_EQ(Value(2.5).dump(), "2.5");
}

TEST(JsonDumpTest, PrettyIsReparseable) {
  Value doc;
  doc.set("digests", Value(Object{{"/usr/bin/ls", Value(Array{Value("ab")})}}));
  auto parsed = parse(doc.pretty());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), doc);
}

// ----------------------------------------------------------------- parser

TEST(JsonParseTest, BasicDocument) {
  auto doc = parse(R"({"a": [1, 2.5, "x"], "b": {"c": null}, "d": false})");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc.value().find("a")->as_array()[1].as_number(), 2.5);
  EXPECT_TRUE(doc.value().find("b")->find("c")->is_null());
  EXPECT_FALSE(doc.value().find("d")->as_bool());
}

TEST(JsonParseTest, RoundTripsRandomDocuments) {
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    Value doc;
    for (int i = 0; i < 10; ++i) {
      Value inner;
      inner.set("n", static_cast<double>(rng.uniform(1000)));
      inner.set("s", rng.ident(8));
      inner.set("b", rng.chance(0.5));
      doc.set(rng.ident(6), std::move(inner));
    }
    auto parsed = parse(doc.dump());
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), doc);
  }
}

TEST(JsonParseTest, StringEscapes) {
  auto doc = parse(R"("tab\there A quote\"")");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc.value().as_string(), "tab\there A quote\"");
}

TEST(JsonParseTest, RejectsMalformedInput) {
  EXPECT_FALSE(parse("").ok());
  EXPECT_FALSE(parse("{").ok());
  EXPECT_FALSE(parse("[1,]").ok());
  EXPECT_FALSE(parse("{\"a\":}").ok());
  EXPECT_FALSE(parse("{\"a\" 1}").ok());
  EXPECT_FALSE(parse("\"unterminated").ok());
  EXPECT_FALSE(parse("tru").ok());
  EXPECT_FALSE(parse("1 2").ok());
  EXPECT_FALSE(parse("\"bad\\q\"").ok());
}

TEST(JsonParseTest, RejectsExcessiveNesting) {
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_FALSE(parse(deep).ok());
}

TEST(JsonParseTest, WhitespaceTolerant) {
  auto doc = parse("  {\n\t\"a\" :\r 1 }  ");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc.value().find("a")->as_int(), 1);
}

}  // namespace
}  // namespace cia::json

namespace cia::keylime {
namespace {

TEST(PolicyJsonTest, RoundTrip) {
  RuntimePolicy policy;
  policy.allow("/usr/bin/ls", std::string(64, 'a'));
  policy.allow("/usr/bin/ls", std::string(64, 'b'));
  policy.allow("/usr/bin/cat", std::string(64, 'c'));
  policy.exclude("/tmp/*");

  const json::Value doc = policy.to_json();
  auto restored = RuntimePolicy::from_json(doc);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored.value().entry_count(), 3u);
  EXPECT_EQ(restored.value().check("/usr/bin/ls", std::string(64, 'b')),
            PolicyMatch::kAllowed);
  EXPECT_EQ(restored.value().check("/tmp/x", std::string(64, 'z')),
            PolicyMatch::kExcluded);
}

TEST(PolicyJsonTest, TextualRoundTripThroughParser) {
  RuntimePolicy policy;
  policy.allow("/usr/bin/x", std::string(64, '1'));
  const std::string text = policy.to_json().pretty();
  auto doc = json::parse(text);
  ASSERT_TRUE(doc.ok());
  auto restored = RuntimePolicy::from_json(doc.value());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored.value().entry_count(), 1u);
}

TEST(PolicyJsonTest, RejectsMalformedDocuments) {
  EXPECT_FALSE(RuntimePolicy::from_json(json::Value("not an object")).ok());
  json::Value no_digests;
  no_digests.set("meta", json::Value(json::Object{}));
  EXPECT_FALSE(RuntimePolicy::from_json(no_digests).ok());
  json::Value bad_hash;
  bad_hash.set("digests",
               json::Value(json::Object{
                   {"/x", json::Value(json::Array{json::Value("short")})}}));
  EXPECT_FALSE(RuntimePolicy::from_json(bad_hash).ok());
}

TEST(PolicyJsonTest, MetaFieldsPresent) {
  RuntimePolicy policy;
  const json::Value doc = policy.to_json();
  ASSERT_NE(doc.find("meta"), nullptr);
  EXPECT_EQ(doc.find("meta")->find("version")->as_int(), 1);
}

}  // namespace
}  // namespace cia::keylime
