// Tests for durable attestation (the hash-chained, signed audit log) and
// revocation notification.
#include <gtest/gtest.h>

#include "keylime/agent.hpp"
#include "keylime/audit.hpp"
#include "keylime/notifier.hpp"
#include "keylime/registrar.hpp"
#include "keylime/verifier.hpp"
#include "oskernel/machine.hpp"

namespace cia::keylime {
namespace {

crypto::KeyPair test_key() {
  return crypto::derive_keypair(to_bytes("audit-seed"), "test");
}

// ----------------------------------------------------------- chain unit

TEST(AuditLogTest, AppendBuildsVerifiableChain) {
  AuditLog log(test_key());
  for (int i = 0; i < 5; ++i) {
    log.append(i * kHour, "node0",
               i % 2 ? AuditVerdict::kPassed : AuditVerdict::kFailed,
               static_cast<std::size_t>(i), 10, crypto::sha256(std::to_string(i)));
  }
  EXPECT_EQ(log.records().size(), 5u);
  EXPECT_TRUE(verify_audit_chain(log.records(), log.public_key()).ok());
}

TEST(AuditLogTest, EmptyChainVerifies) {
  AuditLog log(test_key());
  EXPECT_TRUE(verify_audit_chain(log.records(), log.public_key()).ok());
}

TEST(AuditLogTest, TamperedFieldIsDetected) {
  AuditLog log(test_key());
  log.append(0, "node0", AuditVerdict::kPassed, 0, 3, crypto::zero_digest());
  log.append(1, "node0", AuditVerdict::kFailed, 1, 2, crypto::zero_digest());
  auto records = log.records();
  records[0].verdict = AuditVerdict::kPassed;
  records[1].verdict = AuditVerdict::kPassed;  // whitewash the failure
  EXPECT_FALSE(verify_audit_chain(records, log.public_key()).ok());
}

TEST(AuditLogTest, RemovedRecordBreaksChain) {
  AuditLog log(test_key());
  for (int i = 0; i < 4; ++i) {
    log.append(i, "node0", AuditVerdict::kPassed, 0, 1, crypto::zero_digest());
  }
  auto records = log.records();
  records.erase(records.begin() + 1);
  EXPECT_FALSE(verify_audit_chain(records, log.public_key()).ok());
}

TEST(AuditLogTest, ReorderedRecordsAreDetected) {
  AuditLog log(test_key());
  for (int i = 0; i < 3; ++i) {
    log.append(i, "node0", AuditVerdict::kPassed, 0, 1,
               crypto::sha256(std::to_string(i)));
  }
  auto records = log.records();
  std::swap(records[0], records[1]);
  EXPECT_FALSE(verify_audit_chain(records, log.public_key()).ok());
}

TEST(AuditLogTest, ForgedSignatureIsDetected) {
  AuditLog log(test_key());
  log.append(0, "node0", AuditVerdict::kPassed, 0, 1, crypto::zero_digest());
  // An attacker re-signs a modified record with their own key.
  const auto attacker = crypto::derive_keypair(to_bytes("attacker"), "a");
  auto records = log.records();
  records[0].alerts = 0;
  records[0].record_hash = records[0].compute_hash();
  records[0].signature =
      crypto::sign(attacker, crypto::digest_bytes(records[0].record_hash));
  EXPECT_FALSE(verify_audit_chain(records, log.public_key()).ok());
}

TEST(AuditLogTest, JsonExportImportRoundTrip) {
  AuditLog log(test_key());
  for (int i = 0; i < 4; ++i) {
    log.append(i * kHour, "node0",
               i == 2 ? AuditVerdict::kFailed : AuditVerdict::kPassed,
               i == 2 ? 1u : 0u, 5, crypto::sha256(std::to_string(i)));
  }
  const json::Value doc = export_audit_chain(log.records(), log.public_key());
  auto parsed = json::parse(doc.pretty());
  ASSERT_TRUE(parsed.ok());
  auto imported = import_audit_chain(parsed.value());
  ASSERT_TRUE(imported.ok());
  const auto& [records, key] = imported.value();
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(key, log.public_key());
  EXPECT_TRUE(verify_audit_chain(records, key).ok());
  EXPECT_EQ(records[2].verdict, AuditVerdict::kFailed);
}

TEST(AuditLogTest, ImportRejectsTamperedJson) {
  AuditLog log(test_key());
  log.append(0, "node0", AuditVerdict::kFailed, 1, 1, crypto::zero_digest());
  json::Value doc = export_audit_chain(log.records(), log.public_key());
  // Whitewash via the JSON form.
  doc.set("records", [&] {
    json::Value list{json::Array{}};
    json::Value record = log.records()[0].to_json();
    record.set("verdict", "passed");
    list.push_back(std::move(record));
    return list;
  }());
  auto imported = import_audit_chain(doc);
  ASSERT_TRUE(imported.ok());
  EXPECT_FALSE(verify_audit_chain(imported.value().first,
                                  imported.value().second).ok());
}

TEST(AuditLogTest, ImportRejectsGarbage) {
  EXPECT_FALSE(import_audit_chain(json::Value("nope")).ok());
  json::Value empty;
  empty.set("verifier_key", "zz");
  empty.set("records", json::Value(json::Array{}));
  EXPECT_FALSE(import_audit_chain(empty).ok());
}

// ----------------------------------------------------- verifier wiring

struct AuditRig : ::testing::Test {
  AuditRig()
      : ca("mfg", to_bytes("mfg-seed")),
        network(&clock, 1),
        registrar(&network, &clock, 2),
        verifier(&network, &clock, 3),
        machine(config(), ca, &clock),
        agent(&machine, &network) {
    registrar.trust_manufacturer(ca.public_key());
    EXPECT_TRUE(machine.fs().create_file("/usr/bin/app", to_bytes("elf:app"),
                                         true).ok());
    EXPECT_TRUE(agent.register_with(Registrar::address()).ok());
    EXPECT_TRUE(verifier.add_agent("audit-node", agent.address()).ok());
    RuntimePolicy policy;
    policy.allow("/usr/bin/app", crypto::sha256(std::string("elf:app")));
    EXPECT_TRUE(verifier.set_policy("audit-node", policy).ok());
  }

  static oskernel::MachineConfig config() {
    oskernel::MachineConfig cfg;
    cfg.hostname = "audit-node";
    return cfg;
  }

  SimClock clock;
  crypto::CertificateAuthority ca;
  netsim::SimNetwork network;
  Registrar registrar;
  Verifier verifier;
  oskernel::Machine machine;
  Agent agent;
};

TEST_F(AuditRig, EveryPollProducesASignedRecord) {
  (void)machine.exec("/usr/bin/app");
  for (int i = 0; i < 3; ++i) {
    clock.advance(kMinute);
    (void)verifier.attest_once("audit-node");
  }
  const auto& records = verifier.audit().records();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_TRUE(verify_audit_chain(records, verifier.audit().public_key()).ok());
  for (const auto& r : records) {
    EXPECT_EQ(r.verdict, AuditVerdict::kPassed);
    EXPECT_NE(r.quote_digest, crypto::zero_digest());
  }
}

TEST_F(AuditRig, FailureAndRebootAreRecorded) {
  ASSERT_TRUE(machine.fs().create_file("/usr/bin/evil", to_bytes("e"), true).ok());
  (void)machine.exec("/usr/bin/evil");
  (void)verifier.attest_once("audit-node");  // -> kFailed
  (void)verifier.attest_once("audit-node");  // frozen: no record
  (void)verifier.resolve_failure("audit-node");
  machine.reboot();
  (void)verifier.attest_once("audit-node");  // -> kRebootSeen

  const auto& records = verifier.audit().records();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].verdict, AuditVerdict::kFailed);
  EXPECT_EQ(records[1].verdict, AuditVerdict::kRebootSeen);
  EXPECT_TRUE(verify_audit_chain(records, verifier.audit().public_key()).ok());
}

TEST_F(AuditRig, UnreachableAgentIsRecorded) {
  netsim::FaultConfig faults;
  faults.drop_rate = 1.0;
  network.set_faults(faults);
  (void)verifier.attest_once("audit-node");
  const auto& records = verifier.audit().records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].verdict, AuditVerdict::kUnreachable);
}

TEST_F(AuditRig, NotifierFiresOnFailureTransitionOnly) {
  CollectingNotifier webhook;
  verifier.add_notifier(&webhook);

  (void)machine.exec("/usr/bin/app");
  (void)verifier.attest_once("audit-node");
  EXPECT_TRUE(webhook.events().empty()) << "healthy rounds do not notify";

  ASSERT_TRUE(machine.fs().create_file("/usr/bin/evil1", to_bytes("1"), true).ok());
  ASSERT_TRUE(machine.fs().create_file("/usr/bin/evil2", to_bytes("2"), true).ok());
  (void)machine.exec("/usr/bin/evil1");
  (void)machine.exec("/usr/bin/evil2");
  (void)verifier.attest_once("audit-node");
  ASSERT_EQ(webhook.events().size(), 1u)
      << "one revocation per transition, not per alert";
  EXPECT_EQ(webhook.events()[0].agent_id, "audit-node");
  EXPECT_NE(webhook.events()[0].reason.find("evil1"), std::string::npos);

  // Resolve and fail again: a second transition, a second notification.
  (void)verifier.resolve_failure("audit-node");
  auto round = verifier.attest_once("audit-node");
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(webhook.events().size(), 2u);
}

}  // namespace
}  // namespace cia::keylime
