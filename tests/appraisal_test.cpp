// IMA appraisal tests: signature-enforced execution (the enforcement
// counterpart of the paper's §V signed-hashes discussion). With a
// maintainer key pinned in the kernel, unsigned or tampered executables
// cannot run at all — independent of Keylime's detection pipeline.
#include <gtest/gtest.h>

#include "attacks/botnets.hpp"
#include "pkg/apt.hpp"
#include "pkg/archive.hpp"

namespace cia {
namespace {

struct AppraisalRig : ::testing::Test {
  AppraisalRig()
      : ca("mfg", to_bytes("mfg-seed")),
        archive(archive_config(), 31),
        machine(machine_config(archive), ca, &clock),
        apt(&machine, pkg::CostModel{}) {
    apt.set_file_signer([this](const pkg::Package& pkg,
                               const pkg::PackageFile& file) {
      return archive.sign_file(pkg, file);
    });
    EXPECT_TRUE(apt.provision(archive.index(), {"bash", "python3"}).ok());
  }

  static pkg::ArchiveConfig archive_config() {
    pkg::ArchiveConfig cfg;
    cfg.base_package_count = 30;
    return cfg;
  }

  static oskernel::MachineConfig machine_config(const pkg::Archive& archive) {
    oskernel::MachineConfig cfg;
    cfg.hostname = "appraised";
    cfg.ima_config.appraisal_key = archive.maintainer_key();
    return cfg;
  }

  SimClock clock;
  crypto::CertificateAuthority ca;
  pkg::Archive archive;
  oskernel::Machine machine;
  pkg::AptClient apt;
};

TEST_F(AppraisalRig, SignedPackageBinariesExecute) {
  EXPECT_TRUE(machine.exec("/usr/bin/bash").ok());
  EXPECT_TRUE(machine.exec("/usr/bin/python3").ok());
}

TEST_F(AppraisalRig, UnsignedDroppedBinaryIsDenied) {
  ASSERT_TRUE(machine.fs()
                  .create_file("/usr/local/bin/evil", to_bytes("elf:evil"), true)
                  .ok());
  const auto result = machine.exec("/usr/local/bin/evil");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, Errc::kPermissionDenied);
  // Denied loads never execute, so they also never appear in the log.
  for (const auto& entry : machine.ima().log()) {
    EXPECT_NE(entry.path, "/usr/local/bin/evil");
  }
}

TEST_F(AppraisalRig, TamperedSignedBinaryIsDenied) {
  ASSERT_TRUE(machine.exec("/usr/bin/bash").ok());
  // The signature xattr survives the write but no longer matches.
  ASSERT_TRUE(machine.fs().write_file("/usr/bin/bash", to_bytes("elf:trojan")).ok());
  const auto result = machine.exec("/usr/bin/bash");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, Errc::kPermissionDenied);
}

TEST_F(AppraisalRig, SignatureSurvivesRename) {
  // Moving a signed binary keeps its inode and its xattr: it still runs.
  ASSERT_TRUE(machine.fs().rename("/usr/bin/bash", "/usr/local/bin/bash2").ok());
  EXPECT_TRUE(machine.exec("/usr/local/bin/bash2").ok());
}

TEST_F(AppraisalRig, UnsignedKernelModuleIsDenied) {
  ASSERT_TRUE(machine.fs()
                  .create_file("/lib/modules/rk.ko", to_bytes("ko:rk"), false)
                  .ok());
  EXPECT_FALSE(machine.load_kernel_module("/lib/modules/rk.ko").ok());
  EXPECT_TRUE(machine.loaded_modules().empty());
}

TEST_F(AppraisalRig, UnsignedLibraryIsNotMapped) {
  ASSERT_TRUE(machine.fs()
                  .create_file("/usr/lib/injected.so", to_bytes("so:x"), true)
                  .ok());
  const std::size_t before = machine.ima().log().size();
  machine.mmap_library("/usr/lib/injected.so");
  EXPECT_EQ(machine.ima().log().size(), before);
}

TEST_F(AppraisalRig, AppraisalBlocksAdaptiveAttackPayloads) {
  // The Mirai adaptive variant relies on executing an unsigned payload
  // from tmpfs (P3). Under appraisal the exec itself is denied — the
  // measurement blind spot no longer matters.
  attacks::Mirai mirai;
  attacks::AttackContext ctx;
  ctx.machine = &machine;
  EXPECT_FALSE(mirai.run_adaptive(ctx).ok())
      << "the unsigned bot must fail to start";
}

TEST_F(AppraisalRig, InterpreterScriptsRemainTheGap) {
  // python3 is signed and runs; the unsigned script it interprets is a
  // data read appraisal does not cover — P5's logic applies to appraisal
  // exactly as it does to measurement (Aoyama's escape hatch).
  ASSERT_TRUE(machine.fs()
                  .create_file("/opt/bot.py", to_bytes("py:bot"), false)
                  .ok());
  EXPECT_TRUE(machine.exec_via_interpreter("/usr/bin/python3", "/opt/bot.py").ok());
}

TEST_F(AppraisalRig, WrongKeySignatureIsDenied) {
  const auto rogue = crypto::derive_keypair(to_bytes("rogue"), "rogue");
  ASSERT_TRUE(machine.fs()
                  .create_file("/usr/local/bin/selfsigned", to_bytes("elf:s"), true)
                  .ok());
  const auto digest =
      machine.fs().stat("/usr/local/bin/selfsigned").value().content_hash;
  ASSERT_TRUE(machine.fs()
                  .set_ima_xattr("/usr/local/bin/selfsigned",
                                 crypto::sign(rogue, crypto::digest_bytes(digest))
                                     .encode())
                  .ok());
  EXPECT_FALSE(machine.exec("/usr/local/bin/selfsigned").ok())
      << "a signature by an untrusted key must not appraise";
}

TEST(AppraisalDisabledTest, EverythingRunsWithoutAppraisalKey) {
  SimClock clock;
  crypto::CertificateAuthority ca("mfg", to_bytes("seed"));
  oskernel::Machine machine(oskernel::MachineConfig{}, ca, &clock);
  ASSERT_TRUE(machine.fs().create_file("/x", to_bytes("elf:x"), true).ok());
  EXPECT_TRUE(machine.exec("/x").ok());
}

}  // namespace
}  // namespace cia
