// Unit tests for the software TPM: PCR semantics, quotes, EK certificates,
// and credential activation.
#include <gtest/gtest.h>

#include "tpm/tpm.hpp"

namespace cia::tpm {
namespace {

crypto::CertificateAuthority test_ca() {
  return crypto::CertificateAuthority("tpm-manufacturer", to_bytes("mfg-seed"));
}

TEST(TpmTest, PcrsStartAtZero) {
  const auto ca = test_ca();
  Tpm2 tpm("dev0", to_bytes("seed"), ca);
  for (int i = 0; i < kNumPcrs; ++i) {
    EXPECT_EQ(tpm.pcr_value(i), crypto::zero_digest());
  }
}

TEST(TpmTest, ExtendIsFoldedHash) {
  const auto ca = test_ca();
  Tpm2 tpm("dev0", to_bytes("seed"), ca);
  const crypto::Digest d = crypto::sha256(std::string("measurement"));
  tpm.extend(kImaPcr, d);

  crypto::Sha256 ctx;
  const crypto::Digest zero = crypto::zero_digest();
  ctx.update(zero.data(), zero.size());
  ctx.update(d.data(), d.size());
  EXPECT_EQ(tpm.pcr_value(kImaPcr), ctx.finish());
}

TEST(TpmTest, ExtendOrderMatters) {
  const auto ca = test_ca();
  Tpm2 a("dev0", to_bytes("seed"), ca);
  Tpm2 b("dev0", to_bytes("seed"), ca);
  const crypto::Digest d1 = crypto::sha256(std::string("one"));
  const crypto::Digest d2 = crypto::sha256(std::string("two"));
  a.extend(kImaPcr, d1);
  a.extend(kImaPcr, d2);
  b.extend(kImaPcr, d2);
  b.extend(kImaPcr, d1);
  EXPECT_NE(a.pcr_value(kImaPcr), b.pcr_value(kImaPcr));
}

TEST(TpmTest, ResetClearsPcrs) {
  const auto ca = test_ca();
  Tpm2 tpm("dev0", to_bytes("seed"), ca);
  tpm.extend(kImaPcr, crypto::sha256(std::string("x")));
  tpm.reset();
  EXPECT_EQ(tpm.pcr_value(kImaPcr), crypto::zero_digest());
}

TEST(TpmTest, QuoteVerifiesWithCorrectAk) {
  const auto ca = test_ca();
  Tpm2 tpm("dev0", to_bytes("seed"), ca);
  tpm.extend(kImaPcr, crypto::sha256(std::string("x")));
  const Quote q = tpm.quote(to_bytes("nonce-123"), {kImaPcr});
  EXPECT_TRUE(q.verify(tpm.ak_public()));
  EXPECT_EQ(q.pcr_values[0], tpm.pcr_value(kImaPcr));
}

TEST(TpmTest, QuoteRejectsWrongAk) {
  const auto ca = test_ca();
  Tpm2 tpm1("dev0", to_bytes("seed0"), ca);
  Tpm2 tpm2("dev1", to_bytes("seed1"), ca);
  const Quote q = tpm1.quote(to_bytes("nonce"), {kImaPcr});
  EXPECT_FALSE(q.verify(tpm2.ak_public()));
}

TEST(TpmTest, TamperedQuotePcrFailsVerification) {
  const auto ca = test_ca();
  Tpm2 tpm("dev0", to_bytes("seed"), ca);
  Quote q = tpm.quote(to_bytes("nonce"), {kImaPcr});
  q.pcr_values[0] = crypto::sha256(std::string("forged"));
  EXPECT_FALSE(q.verify(tpm.ak_public()));
}

TEST(TpmTest, TamperedNonceFailsVerification) {
  const auto ca = test_ca();
  Tpm2 tpm("dev0", to_bytes("seed"), ca);
  Quote q = tpm.quote(to_bytes("nonce"), {kImaPcr});
  q.nonce = to_bytes("replayed-nonce");
  EXPECT_FALSE(q.verify(tpm.ak_public()));
}

TEST(TpmTest, EkCertificateChainsToManufacturer) {
  const auto ca = test_ca();
  Tpm2 tpm("dev0", to_bytes("seed"), ca);
  EXPECT_TRUE(crypto::verify_certificate(tpm.ek_certificate(), ca.public_key(),
                                         /*now=*/kDay));
  EXPECT_EQ(tpm.ek_certificate().subject, "tpm:ek:dev0");
  EXPECT_EQ(tpm.ek_certificate().subject_key, tpm.ek_public());
}

TEST(TpmTest, CredentialActivationRoundTrip) {
  const auto ca = test_ca();
  Tpm2 tpm("dev0", to_bytes("seed"), ca);
  const Bytes secret = to_bytes("challenge-secret");
  const CredentialBlob blob =
      make_credential(tpm.ek_public(), tpm.ak_name(), secret, to_bytes("entropy"));
  auto recovered = tpm.activate_credential(blob);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered.value(), secret);
}

TEST(TpmTest, CredentialForOtherEkFails) {
  const auto ca = test_ca();
  Tpm2 tpm1("dev0", to_bytes("seed0"), ca);
  Tpm2 tpm2("dev1", to_bytes("seed1"), ca);
  const CredentialBlob blob = make_credential(
      tpm1.ek_public(), tpm2.ak_name(), to_bytes("s"), to_bytes("entropy"));
  // tpm2 holds the named AK but not the EK the blob was encrypted to.
  EXPECT_FALSE(tpm2.activate_credential(blob).ok());
}

TEST(TpmTest, CredentialForOtherAkNameFails) {
  const auto ca = test_ca();
  Tpm2 tpm("dev0", to_bytes("seed"), ca);
  const CredentialBlob blob = make_credential(
      tpm.ek_public(), "someone-elses-ak", to_bytes("s"), to_bytes("entropy"));
  EXPECT_FALSE(tpm.activate_credential(blob).ok());
}

TEST(TpmTest, DistinctDevicesHaveDistinctKeys) {
  const auto ca = test_ca();
  Tpm2 a("dev0", to_bytes("seed0"), ca);
  Tpm2 b("dev1", to_bytes("seed1"), ca);
  EXPECT_NE(a.ek_public(), b.ek_public());
  EXPECT_NE(a.ak_public(), b.ak_public());
  EXPECT_NE(a.ak_name(), b.ak_name());
}

}  // namespace
}  // namespace cia::tpm
