// Unit tests for the simulated network and wire format.
#include <gtest/gtest.h>

#include "netsim/network.hpp"
#include "netsim/wire.hpp"

namespace cia::netsim {
namespace {

// ------------------------------------------------------------------ wire

TEST(WireTest, RoundTripAllTypes) {
  WireWriter w;
  w.put_u8(0xab);
  w.put_u32(0xdeadbeef);
  w.put_u64(0x0123456789abcdefull);
  w.put_i64(-42);
  w.put_bool(true);
  w.put_string("hello");
  w.put_bytes({1, 2, 3});
  const crypto::Digest d = crypto::sha256(std::string("x"));
  w.put_digest(d);

  WireReader r(w.data());
  EXPECT_EQ(r.u8().value(), 0xab);
  EXPECT_EQ(r.u32().value(), 0xdeadbeefu);
  EXPECT_EQ(r.u64().value(), 0x0123456789abcdefull);
  EXPECT_EQ(r.i64().value(), -42);
  EXPECT_TRUE(r.boolean().value());
  EXPECT_EQ(r.string().value(), "hello");
  EXPECT_EQ(r.bytes().value(), (Bytes{1, 2, 3}));
  EXPECT_EQ(r.digest().value(), d);
  EXPECT_TRUE(r.at_end());
}

TEST(WireTest, TruncatedReadsFail) {
  WireWriter w;
  w.put_u64(7);
  Bytes data = w.take();
  data.pop_back();
  WireReader r(data);
  EXPECT_FALSE(r.u64().ok());
}

TEST(WireTest, TruncatedStringFails) {
  WireWriter w;
  w.put_string("hello");
  Bytes data = w.take();
  data.resize(data.size() - 2);
  WireReader r(data);
  EXPECT_FALSE(r.string().ok());
}

TEST(WireTest, OversizedLengthPrefixFails) {
  WireWriter w;
  w.put_u64(1ull << 40);  // claims a petabyte string
  WireReader r(w.data());
  EXPECT_FALSE(r.string().ok());
}

TEST(WireTest, BadBoolFails) {
  WireWriter w;
  w.put_u8(7);
  WireReader r(w.data());
  EXPECT_FALSE(r.boolean().ok());
}

// --------------------------------------------------------------- network

class EchoEndpoint : public Endpoint {
 public:
  Result<Bytes> handle(const std::string& kind, const Bytes& payload) override {
    ++calls;
    if (kind == "fail") return err(Errc::kInternal, "handler error");
    return payload;
  }
  int calls = 0;
};

TEST(NetworkTest, RoutesToAttachedEndpoint) {
  SimClock clock;
  SimNetwork net(&clock, 1);
  EchoEndpoint echo;
  net.attach("svc", &echo);
  auto resp = net.call("svc", "echo", to_bytes("ping"));
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(to_string(resp.value()), "ping");
  EXPECT_EQ(echo.calls, 1);
}

TEST(NetworkTest, UnroutableAddressFails) {
  SimClock clock;
  SimNetwork net(&clock, 1);
  EXPECT_FALSE(net.call("nobody", "x", {}).ok());
  EXPECT_EQ(net.stats().unroutable, 1u);
}

TEST(NetworkTest, DetachStopsRouting) {
  SimClock clock;
  SimNetwork net(&clock, 1);
  EchoEndpoint echo;
  net.attach("svc", &echo);
  net.detach("svc");
  EXPECT_FALSE(net.call("svc", "x", {}).ok());
}

TEST(NetworkTest, HandlerErrorsPropagate) {
  SimClock clock;
  SimNetwork net(&clock, 1);
  EchoEndpoint echo;
  net.attach("svc", &echo);
  EXPECT_FALSE(net.call("svc", "fail", {}).ok());
}

TEST(NetworkTest, LatencyChargesClock) {
  SimClock clock;
  SimNetwork net(&clock, 1);
  EchoEndpoint echo;
  net.attach("svc", &echo);
  FaultConfig faults;
  faults.latency = 3;
  net.set_faults(faults);
  ASSERT_TRUE(net.call("svc", "echo", {}).ok());
  ASSERT_TRUE(net.call("svc", "echo", {}).ok());
  EXPECT_EQ(clock.now(), 6);
}

TEST(NetworkTest, DropRateDropsRoughlyProportionally) {
  SimClock clock;
  SimNetwork net(&clock, 42);
  EchoEndpoint echo;
  net.attach("svc", &echo);
  FaultConfig faults;
  faults.drop_rate = 0.5;
  net.set_faults(faults);
  int failures = 0;
  for (int i = 0; i < 1000; ++i) {
    if (!net.call("svc", "echo", to_bytes("x")).ok()) ++failures;
  }
  EXPECT_GT(failures, 400);
  EXPECT_LT(failures, 600);
  EXPECT_EQ(net.stats().dropped, static_cast<std::uint64_t>(failures));
}

TEST(NetworkTest, TamperingCorruptsPayload) {
  SimClock clock;
  SimNetwork net(&clock, 7);
  EchoEndpoint echo;
  net.attach("svc", &echo);
  FaultConfig faults;
  faults.tamper_rate = 1.0;
  net.set_faults(faults);
  auto resp = net.call("svc", "echo", to_bytes("payload"));
  ASSERT_TRUE(resp.ok());
  EXPECT_NE(to_string(resp.value()), "payload");
  EXPECT_EQ(net.stats().tampered, 1u);
}

}  // namespace
}  // namespace cia::netsim
