// Unit tests for the simulated network, fault injection, the retrying
// transport, and the wire format.
#include <gtest/gtest.h>

#include <vector>

#include "netsim/network.hpp"
#include "netsim/transport.hpp"
#include "netsim/wire.hpp"

namespace cia::netsim {
namespace {

// ------------------------------------------------------------------ wire

TEST(WireTest, RoundTripAllTypes) {
  WireWriter w;
  w.put_u8(0xab);
  w.put_u32(0xdeadbeef);
  w.put_u64(0x0123456789abcdefull);
  w.put_i64(-42);
  w.put_bool(true);
  w.put_string("hello");
  w.put_bytes({1, 2, 3});
  const crypto::Digest d = crypto::sha256(std::string("x"));
  w.put_digest(d);

  WireReader r(w.data());
  EXPECT_EQ(r.u8().value(), 0xab);
  EXPECT_EQ(r.u32().value(), 0xdeadbeefu);
  EXPECT_EQ(r.u64().value(), 0x0123456789abcdefull);
  EXPECT_EQ(r.i64().value(), -42);
  EXPECT_TRUE(r.boolean().value());
  EXPECT_EQ(r.string().value(), "hello");
  EXPECT_EQ(r.bytes().value(), (Bytes{1, 2, 3}));
  EXPECT_EQ(r.digest().value(), d);
  EXPECT_TRUE(r.at_end());
}

TEST(WireTest, TruncatedReadsFail) {
  WireWriter w;
  w.put_u64(7);
  Bytes data = w.take();
  data.pop_back();
  WireReader r(data);
  EXPECT_FALSE(r.u64().ok());
}

TEST(WireTest, TruncatedStringFails) {
  WireWriter w;
  w.put_string("hello");
  Bytes data = w.take();
  data.resize(data.size() - 2);
  WireReader r(data);
  EXPECT_FALSE(r.string().ok());
}

TEST(WireTest, OversizedLengthPrefixFails) {
  WireWriter w;
  w.put_u64(1ull << 40);  // claims a petabyte string
  WireReader r(w.data());
  EXPECT_FALSE(r.string().ok());
}

TEST(WireTest, BadBoolFails) {
  WireWriter w;
  w.put_u8(7);
  WireReader r(w.data());
  EXPECT_FALSE(r.boolean().ok());
}

// --------------------------------------------------------------- network

class EchoEndpoint : public Endpoint {
 public:
  Result<Bytes> handle(const std::string& kind, const Bytes& payload) override {
    ++calls;
    if (kind == "fail") return err(Errc::kInternal, "handler error");
    return payload;
  }
  int calls = 0;
};

TEST(NetworkTest, RoutesToAttachedEndpoint) {
  SimClock clock;
  SimNetwork net(&clock, 1);
  EchoEndpoint echo;
  net.attach("svc", &echo);
  auto resp = net.call("svc", "echo", to_bytes("ping"));
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(to_string(resp.value()), "ping");
  EXPECT_EQ(echo.calls, 1);
}

TEST(NetworkTest, UnroutableAddressFails) {
  SimClock clock;
  SimNetwork net(&clock, 1);
  EXPECT_FALSE(net.call("nobody", "x", {}).ok());
  EXPECT_EQ(net.stats().unroutable, 1u);
}

TEST(NetworkTest, DetachStopsRouting) {
  SimClock clock;
  SimNetwork net(&clock, 1);
  EchoEndpoint echo;
  net.attach("svc", &echo);
  net.detach("svc");
  EXPECT_FALSE(net.call("svc", "x", {}).ok());
}

TEST(NetworkTest, HandlerErrorsPropagate) {
  SimClock clock;
  SimNetwork net(&clock, 1);
  EchoEndpoint echo;
  net.attach("svc", &echo);
  EXPECT_FALSE(net.call("svc", "fail", {}).ok());
}

TEST(NetworkTest, LatencyChargesClock) {
  SimClock clock;
  SimNetwork net(&clock, 1);
  EchoEndpoint echo;
  net.attach("svc", &echo);
  FaultConfig faults;
  faults.latency = 3;
  net.set_faults(faults);
  ASSERT_TRUE(net.call("svc", "echo", {}).ok());
  ASSERT_TRUE(net.call("svc", "echo", {}).ok());
  EXPECT_EQ(clock.now(), 6);
}

TEST(NetworkTest, DropRateDropsRoughlyProportionally) {
  SimClock clock;
  SimNetwork net(&clock, 42);
  EchoEndpoint echo;
  net.attach("svc", &echo);
  FaultConfig faults;
  faults.drop_rate = 0.5;
  net.set_faults(faults);
  int failures = 0;
  for (int i = 0; i < 1000; ++i) {
    if (!net.call("svc", "echo", to_bytes("x")).ok()) ++failures;
  }
  EXPECT_GT(failures, 400);
  EXPECT_LT(failures, 600);
  EXPECT_EQ(net.stats().dropped, static_cast<std::uint64_t>(failures));
}

TEST(NetworkTest, TamperingCorruptsPayload) {
  SimClock clock;
  SimNetwork net(&clock, 7);
  EchoEndpoint echo;
  net.attach("svc", &echo);
  FaultConfig faults;
  faults.tamper_rate = 1.0;
  net.set_faults(faults);
  auto resp = net.call("svc", "echo", to_bytes("payload"));
  ASSERT_TRUE(resp.ok());
  EXPECT_NE(to_string(resp.value()), "payload");
  EXPECT_EQ(net.stats().tampered, 1u);
}

// ---------------------------------------------------------- link faults

TEST(NetworkTest, PerLinkProfileOverridesGlobal) {
  SimClock clock;
  SimNetwork net(&clock, 1);
  EchoEndpoint lossy_svc;
  EchoEndpoint clean_svc;
  net.attach("lossy", &lossy_svc);
  net.attach("clean", &clean_svc);
  // Global default is clean; the "lossy" link alone drops everything.
  net.set_link_faults("lossy", FaultProfile::outage());
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(net.call("lossy", "echo", to_bytes("x")).ok());
    EXPECT_TRUE(net.call("clean", "echo", to_bytes("x")).ok());
  }
  EXPECT_EQ(lossy_svc.calls, 0);
  EXPECT_EQ(clean_svc.calls, 20);

  // Clearing the override restores the global profile for that link.
  net.clear_link_faults("lossy");
  EXPECT_TRUE(net.call("lossy", "echo", to_bytes("x")).ok());
}

TEST(NetworkTest, ScheduleWindowsOpenAndCloseWithClock) {
  SimClock clock;
  SimNetwork net(&clock, 1);
  EchoEndpoint echo;
  net.attach("svc", &echo);
  FaultSchedule schedule;
  schedule.outage(100, 200);
  net.set_link_schedule("svc", std::move(schedule));

  EXPECT_TRUE(net.call("svc", "echo", {}).ok());  // before the window
  clock.advance_to(100);
  EXPECT_FALSE(net.call("svc", "echo", {}).ok());  // window opens
  clock.advance_to(199);
  EXPECT_FALSE(net.call("svc", "echo", {}).ok());
  clock.advance_to(200);
  EXPECT_TRUE(net.call("svc", "echo", {}).ok());  // window closed (end excl.)
}

TEST(NetworkTest, LaterScheduleWindowWinsWhenOverlapping) {
  SimClock clock;
  SimNetwork net(&clock, 1);
  EchoEndpoint echo;
  net.attach("svc", &echo);
  FaultSchedule schedule;
  schedule.outage(0, 1000);
  schedule.add(100, 200, FaultProfile{});  // carve a healthy hole
  net.set_link_schedule("svc", std::move(schedule));

  EXPECT_FALSE(net.call("svc", "echo", {}).ok());
  clock.advance_to(150);
  EXPECT_TRUE(net.call("svc", "echo", {}).ok());
  clock.advance_to(300);
  EXPECT_FALSE(net.call("svc", "echo", {}).ok());
}

TEST(NetworkTest, DuplicateDeliveryInvokesHandlerTwiceRespondsOnce) {
  SimClock clock;
  SimNetwork net(&clock, 1);
  EchoEndpoint echo;
  net.attach("svc", &echo);
  FaultProfile faults;
  faults.duplicate_rate = 1.0;
  net.set_faults(faults);
  auto resp = net.call("svc", "echo", to_bytes("once"));
  ASSERT_TRUE(resp.ok());
  // The handler (idempotent by protocol design) saw the message twice,
  // but the caller observed exactly one response.
  EXPECT_EQ(to_string(resp.value()), "once");
  EXPECT_EQ(echo.calls, 2);
  EXPECT_EQ(net.stats().duplicated, 1u);
  EXPECT_EQ(net.stats().calls, 1u);
}

TEST(NetworkTest, TimeoutsChargeFullTimeoutLatencyAndCount) {
  SimClock clock;
  SimNetwork net(&clock, 1);
  EchoEndpoint echo;
  net.attach("svc", &echo);
  FaultProfile faults;
  faults.timeout_rate = 1.0;
  faults.latency = 2;
  faults.timeout_latency = 30;
  net.set_faults(faults);
  auto resp = net.call("svc", "echo", {});
  EXPECT_FALSE(resp.ok());
  EXPECT_EQ(resp.error().code, Errc::kUnavailable);
  EXPECT_EQ(clock.now(), 32);  // latency + full timeout budget burned
  EXPECT_EQ(net.stats().timeouts, 1u);
  EXPECT_EQ(echo.calls, 0);
}

TEST(NetworkTest, EveryOutcomeChargesLinkLatency) {
  SimClock clock;
  SimNetwork net(&clock, 1);
  EchoEndpoint echo;
  net.attach("svc", &echo);
  FaultProfile faults;
  faults.latency = 5;
  net.set_faults(faults);

  (void)net.call("nobody", "echo", {});  // unroutable still burns the wire
  EXPECT_EQ(clock.now(), 5);

  FaultProfile dropping = faults;
  dropping.drop_rate = 1.0;
  net.set_faults(dropping);
  (void)net.call("svc", "echo", {});  // dropped after transit
  EXPECT_EQ(clock.now(), 10);
}

TEST(NetworkTest, IdenticalSeedsProduceIdenticalFaultTraces) {
  const auto trace = [](std::uint64_t seed) {
    SimClock clock;
    SimNetwork net(&clock, seed);
    EchoEndpoint a, b;
    net.attach("a", &a);
    net.attach("b", &b);
    FaultProfile faults;
    faults.drop_rate = 0.3;
    faults.timeout_rate = 0.1;
    faults.duplicate_rate = 0.1;
    net.set_faults(faults);
    std::vector<bool> outcomes;
    for (int i = 0; i < 200; ++i) {
      outcomes.push_back(net.call(i % 2 ? "a" : "b", "echo", to_bytes("x")).ok());
    }
    return std::make_tuple(outcomes, net.stats().dropped, net.stats().timeouts,
                           net.stats().duplicated);
  };
  EXPECT_EQ(trace(1234), trace(1234));
  EXPECT_NE(std::get<0>(trace(1234)), std::get<0>(trace(5678)));
}

TEST(NetworkTest, PerLinkRngStreamsAreOrderIndependent) {
  // The fault decisions on link "a" must not depend on traffic to "b":
  // each link draws from its own seed-derived stream.
  const auto a_outcomes = [](bool interleave) {
    SimClock clock;
    SimNetwork net(&clock, 99);
    EchoEndpoint a, b;
    net.attach("a", &a);
    net.attach("b", &b);
    FaultProfile faults;
    faults.drop_rate = 0.5;
    net.set_faults(faults);
    std::vector<bool> outcomes;
    for (int i = 0; i < 100; ++i) {
      if (interleave) (void)net.call("b", "echo", to_bytes("x"));
      outcomes.push_back(net.call("a", "echo", to_bytes("x")).ok());
    }
    return outcomes;
  };
  EXPECT_EQ(a_outcomes(false), a_outcomes(true));
}

TEST(NetworkTest, PerLinkStreamsAreIdenticalAcrossNetworkInstances) {
  // Two networks with the same seed give the SAME link the SAME fault
  // sequence, regardless of what else each network hosts. The sharded
  // verifier pool leans on this: every shard network shares one seed, so
  // an agent's fault experience is a function of (seed, address) alone
  // and survives re-partitioning the fleet across a different number of
  // shards.
  const auto svc_outcomes = [](bool with_neighbors) {
    SimClock clock;
    SimNetwork net(&clock, 4242);
    EchoEndpoint svc, neighbor;
    net.attach("svc", &svc);
    if (with_neighbors) net.attach("neighbor", &neighbor);
    FaultProfile faults;
    faults.drop_rate = 0.4;
    faults.tamper_rate = 0.2;
    net.set_faults(faults);
    std::vector<std::string> outcomes;
    for (int i = 0; i < 150; ++i) {
      if (with_neighbors) (void)net.call("neighbor", "echo", to_bytes("y"));
      auto r = net.call("svc", "echo", to_bytes("payload"));
      outcomes.push_back(!r.ok() ? "drop"
                         : r.value() == to_bytes("payload") ? "ok"
                                                            : "tampered");
    }
    return outcomes;
  };
  EXPECT_EQ(svc_outcomes(false), svc_outcomes(true));
}

// ------------------------------------------------------------ transport

TEST(TransportTest, RetriesTransientFailuresUntilSuccess) {
  SimClock clock;
  SimNetwork net(&clock, 3);
  EchoEndpoint echo;
  net.attach("svc", &echo);
  FaultProfile faults;
  faults.drop_rate = 0.5;
  net.set_faults(faults);
  RetryPolicy policy;
  policy.max_attempts = 8;
  RetryingTransport transport(&net, &clock, 3, policy);
  int failures = 0;
  for (int i = 0; i < 200; ++i) {
    if (!transport.call("svc", "echo", to_bytes("x")).ok()) ++failures;
  }
  // A raw 50% loss link fails half the calls; eight attempts with backoff
  // push the per-call failure rate to ~0.4%.
  EXPECT_LT(failures, 5);
  EXPECT_GT(transport.stats().retries, 0u);
  EXPECT_GT(transport.stats().recovered, 0u);
}

TEST(TransportTest, DoesNotRetryNonTransientErrors) {
  SimClock clock;
  SimNetwork net(&clock, 3);
  EchoEndpoint echo;
  net.attach("svc", &echo);
  RetryingTransport transport(&net, &clock, 3);
  EXPECT_FALSE(transport.call("svc", "fail", {}).ok());
  // The handler returned a hard error: one attempt, no retries.
  EXPECT_EQ(echo.calls, 1);
  EXPECT_EQ(transport.stats().retries, 0u);
}

TEST(TransportTest, BackoffDelaysAreBoundedByCallBudget) {
  SimClock clock;
  SimNetwork net(&clock, 3);
  EchoEndpoint echo;
  net.attach("svc", &echo);
  net.set_link_faults("svc", FaultProfile::outage());
  RetryPolicy policy;
  policy.max_attempts = 100;  // budget, not attempts, must be the bound
  policy.call_budget = 120;
  RetryingTransport transport(&net, &clock, 3, policy);
  const SimTime start = clock.now();
  EXPECT_FALSE(transport.call("svc", "echo", {}).ok());
  EXPECT_LE(clock.now() - start, 120);
  EXPECT_EQ(transport.stats().giveups, 1u);
}

TEST(TransportTest, CircuitBreakerOpensAndRecovers) {
  SimClock clock;
  SimNetwork net(&clock, 3);
  EchoEndpoint echo;
  net.attach("svc", &echo);
  net.set_link_faults("svc", FaultProfile::outage());
  RetryPolicy policy;
  policy.max_attempts = 2;
  policy.breaker_threshold = 4;
  policy.breaker_cooldown = 300;
  RetryingTransport transport(&net, &clock, 3, policy);

  // Enough consecutive give-ups trip the breaker.
  for (int i = 0; i < 4; ++i) (void)transport.call("svc", "echo", {});
  EXPECT_EQ(transport.breaker_state("svc"), BreakerState::kOpen);
  EXPECT_EQ(transport.stats().breaker_opens, 1u);

  // While open, calls fast-fail without touching the network.
  const std::uint64_t attempts_before = transport.stats().attempts;
  EXPECT_FALSE(transport.call("svc", "echo", {}).ok());
  EXPECT_EQ(transport.stats().attempts, attempts_before);
  EXPECT_GT(transport.stats().breaker_fastfails, 0u);

  // After the cooldown the link heals; a half-open probe closes it.
  net.clear_link_faults("svc");
  clock.advance(301);
  EXPECT_EQ(transport.breaker_state("svc"), BreakerState::kHalfOpen);
  EXPECT_TRUE(transport.call("svc", "echo", to_bytes("x")).ok());
  EXPECT_EQ(transport.breaker_state("svc"), BreakerState::kClosed);
}

TEST(TransportTest, BreakerIsPerAddress) {
  SimClock clock;
  SimNetwork net(&clock, 3);
  EchoEndpoint up;
  net.attach("up", &up);
  net.attach("down", &up);
  net.set_link_faults("down", FaultProfile::outage());
  RetryPolicy policy;
  policy.max_attempts = 2;
  policy.breaker_threshold = 2;
  RetryingTransport transport(&net, &clock, 3, policy);
  for (int i = 0; i < 2; ++i) (void)transport.call("down", "echo", {});
  EXPECT_EQ(transport.breaker_state("down"), BreakerState::kOpen);
  EXPECT_EQ(transport.breaker_state("up"), BreakerState::kClosed);
  EXPECT_TRUE(transport.call("up", "echo", to_bytes("x")).ok());
}

TEST(TransportTest, DeterministicAcrossRuns) {
  const auto run = [] {
    SimClock clock;
    SimNetwork net(&clock, 11);
    EchoEndpoint echo;
    net.attach("svc", &echo);
    FaultProfile faults;
    faults.drop_rate = 0.4;
    net.set_faults(faults);
    RetryingTransport transport(&net, &clock, 11);
    for (int i = 0; i < 100; ++i) (void)transport.call("svc", "echo", to_bytes("x"));
    return std::make_tuple(transport.stats().attempts,
                           transport.stats().retries, clock.now());
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace cia::netsim
