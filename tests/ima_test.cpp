// Unit tests for IMA: policy rule matching, measurement/caching semantics,
// PCR-10 extension, log replay, and the P3/P4/P5 behaviours.
#include <gtest/gtest.h>

#include "ima/ima.hpp"

namespace cia::ima {
namespace {

struct ImaFixture : ::testing::Test {
  ImaFixture()
      : ca("mfg", to_bytes("mfg-seed")),
        tpm("dev0", to_bytes("seed"), ca),
        ima(ImaPolicy::keylime_recommended(), ImaConfig{}, &fs, &tpm) {
    setup_fs();
    ima.on_boot("boot1");
  }

  void setup_fs() {
    ASSERT_TRUE(fs.mount("/tmp", vfs::FsType::kTmpfs).ok());
    ASSERT_TRUE(fs.mount("/proc", vfs::FsType::kProcfs).ok());
    ASSERT_TRUE(fs.create_file("/usr/bin/ls", to_bytes("elf:ls"), true).ok());
    ASSERT_TRUE(
        fs.create_file("/usr/bin/python3", to_bytes("elf:python3"), true).ok());
  }

  crypto::CertificateAuthority ca;
  vfs::Vfs fs;
  tpm::Tpm2 tpm;
  Ima ima;
};

// -------------------------------------------------------------- policy

TEST(ImaPolicyTest, RecommendedPolicySkipsVolatileFilesystems) {
  const ImaPolicy p = ImaPolicy::keylime_recommended();
  EXPECT_FALSE(p.should_measure(Hook::kBprmCheck, vfs::fs_magic(vfs::FsType::kTmpfs)));
  EXPECT_FALSE(p.should_measure(Hook::kBprmCheck, vfs::fs_magic(vfs::FsType::kProcfs)));
  EXPECT_TRUE(p.should_measure(Hook::kBprmCheck, vfs::fs_magic(vfs::FsType::kExt4)));
}

TEST(ImaPolicyTest, RecommendedPolicyIgnoresPlainReads) {
  const ImaPolicy p = ImaPolicy::keylime_recommended();
  EXPECT_FALSE(p.should_measure(Hook::kFileCheck, vfs::fs_magic(vfs::FsType::kExt4)));
}

TEST(ImaPolicyTest, EnrichedPolicyMeasuresTmpfsAndProcfs) {
  const ImaPolicy p = ImaPolicy::enriched();
  EXPECT_TRUE(p.should_measure(Hook::kBprmCheck, vfs::fs_magic(vfs::FsType::kTmpfs)));
  EXPECT_TRUE(p.should_measure(Hook::kBprmCheck, vfs::fs_magic(vfs::FsType::kProcfs)));
  EXPECT_FALSE(p.should_measure(Hook::kBprmCheck, vfs::fs_magic(vfs::FsType::kSysfs)));
}

TEST(ImaPolicyTest, FirstMatchWins) {
  // dont_measure placed before measure masks it for that magic.
  ImaPolicy p({Rule{Rule::Action::kDontMeasure, std::nullopt,
                    vfs::fs_magic(vfs::FsType::kExt4)},
               Rule{Rule::Action::kMeasure, Hook::kBprmCheck, std::nullopt}});
  EXPECT_FALSE(p.should_measure(Hook::kBprmCheck, vfs::fs_magic(vfs::FsType::kExt4)));
  EXPECT_TRUE(p.should_measure(Hook::kBprmCheck, vfs::fs_magic(vfs::FsType::kTmpfs)));
}

TEST(ImaPolicyTest, EmptyPolicyMeasuresNothing) {
  ImaPolicy p;
  EXPECT_FALSE(p.should_measure(Hook::kBprmCheck, 0xEF53));
}

TEST(ImaPolicyTest, ToStringRendersRules) {
  const std::string s = ImaPolicy::keylime_recommended().to_string();
  EXPECT_NE(s.find("dont_measure fsmagic=0x1021994"), std::string::npos);
  EXPECT_NE(s.find("measure func=BPRM_CHECK"), std::string::npos);
}

// --------------------------------------------------------- measurement

TEST_F(ImaFixture, BootAggregateIsFirstEntry) {
  ASSERT_EQ(ima.log().size(), 1u);
  EXPECT_EQ(ima.log()[0].path, "boot_aggregate");
}

TEST_F(ImaFixture, ExecOnExt4IsMeasured) {
  ima.on_exec("/usr/bin/ls");
  ASSERT_EQ(ima.log().size(), 2u);
  EXPECT_EQ(ima.log()[1].path, "/usr/bin/ls");
  EXPECT_EQ(ima.log()[1].file_hash, crypto::sha256(std::string("elf:ls")));
}

TEST_F(ImaFixture, ExecOnTmpfsIsNotMeasured_P3) {
  ASSERT_TRUE(fs.create_file("/tmp/payload", to_bytes("evil"), true).ok());
  ima.on_exec("/tmp/payload");
  EXPECT_EQ(ima.log().size(), 1u) << "P3: tmpfs is excluded by fsmagic";
}

TEST_F(ImaFixture, MeasurementExtendsPcr10) {
  const auto before = tpm.pcr_value(tpm::kImaPcr);
  ima.on_exec("/usr/bin/ls");
  EXPECT_NE(tpm.pcr_value(tpm::kImaPcr), before);
}

TEST_F(ImaFixture, RepeatedExecMeasuredOnce) {
  ima.on_exec("/usr/bin/ls");
  ima.on_exec("/usr/bin/ls");
  ima.on_exec("/usr/bin/ls");
  EXPECT_EQ(ima.log().size(), 2u);
}

TEST_F(ImaFixture, ContentChangeTriggersRemeasurement) {
  ima.on_exec("/usr/bin/ls");
  ASSERT_TRUE(fs.write_file("/usr/bin/ls", to_bytes("elf:ls-v2")).ok());
  ima.on_exec("/usr/bin/ls");
  ASSERT_EQ(ima.log().size(), 3u);
  EXPECT_EQ(ima.log()[2].file_hash, crypto::sha256(std::string("elf:ls-v2")));
}

TEST_F(ImaFixture, RenameWithinFsNotRemeasured_P4) {
  // Measure in one location...
  ASSERT_TRUE(fs.create_file("/home/stage/mal", to_bytes("mal"), true).ok());
  ima.on_exec("/home/stage/mal");
  ASSERT_EQ(ima.log().size(), 2u);
  // ...move within the root fs and execute again: same inode, no new entry.
  ASSERT_TRUE(fs.rename("/home/stage/mal", "/usr/bin/mal").ok());
  ima.on_exec("/usr/bin/mal");
  EXPECT_EQ(ima.log().size(), 2u)
      << "P4: identical inode on the same fs is never re-evaluated";
}

TEST_F(ImaFixture, ReevaluateOnPathChangeMitigatesP4) {
  ImaConfig cfg;
  cfg.reevaluate_on_path_change = true;
  ima.set_config(cfg);
  ASSERT_TRUE(fs.create_file("/home/stage/mal", to_bytes("mal"), true).ok());
  ima.on_exec("/home/stage/mal");
  ASSERT_TRUE(fs.rename("/home/stage/mal", "/usr/bin/mal").ok());
  ima.on_exec("/usr/bin/mal");
  ASSERT_EQ(ima.log().size(), 3u);
  EXPECT_EQ(ima.log()[2].path, "/usr/bin/mal");
}

TEST_F(ImaFixture, InterpreterInvocationMeasuresInterpreterOnly_P5) {
  ASSERT_TRUE(fs.create_file("/home/attack.py", to_bytes("print('x')"), false).ok());
  // python3 attack.py: BPRM_CHECK on the interpreter, plain read of script.
  ima.on_exec("/usr/bin/python3");
  ima.on_open_read("/home/attack.py", /*sec_marked=*/false);
  ASSERT_EQ(ima.log().size(), 2u);
  EXPECT_EQ(ima.log()[1].path, "/usr/bin/python3");
}

TEST_F(ImaFixture, ScriptExecControlMeasuresScript) {
  ImaConfig cfg;
  cfg.script_exec_control = true;
  ima.set_config(cfg);
  ASSERT_TRUE(fs.create_file("/home/attack.py", to_bytes("print('x')"), false).ok());
  ima.on_open_read("/home/attack.py", /*sec_marked=*/true);
  ASSERT_EQ(ima.log().size(), 2u);
  EXPECT_EQ(ima.log()[1].path, "/home/attack.py");
}

TEST_F(ImaFixture, SecMarkWithoutKernelSupportIsIgnored) {
  ASSERT_TRUE(fs.create_file("/home/attack.py", to_bytes("print('x')"), false).ok());
  ima.on_open_read("/home/attack.py", /*sec_marked=*/true);
  EXPECT_EQ(ima.log().size(), 1u)
      << "the SEC flag needs the kernel-side config to matter";
}

TEST_F(ImaFixture, SnapPathIsTruncatedInLog) {
  ASSERT_TRUE(fs.mount("/snap/core20/1891", vfs::FsType::kSquashfs,
                       /*truncated=*/true).ok());
  ASSERT_TRUE(fs.create_file("/snap/core20/1891/bin/jq", to_bytes("elf:jq"),
                             true).ok());
  ima.on_exec("/snap/core20/1891/bin/jq");
  ASSERT_EQ(ima.log().size(), 2u);
  EXPECT_EQ(ima.log()[1].path, "/bin/jq")
      << "SNAP measurements appear without their /snap prefix (§III-B)";
}

TEST_F(ImaFixture, ModuleLoadMeasured) {
  ASSERT_TRUE(fs.create_file("/lib/modules/mod.ko", to_bytes("ko"), false).ok());
  ima.on_module_load("/lib/modules/mod.ko");
  ASSERT_EQ(ima.log().size(), 2u);
  EXPECT_EQ(ima.log()[1].path, "/lib/modules/mod.ko");
}

TEST_F(ImaFixture, MissingFileIsIgnored) {
  ima.on_exec("/does/not/exist");
  EXPECT_EQ(ima.log().size(), 1u);
}

TEST_F(ImaFixture, LogSince) {
  ima.on_exec("/usr/bin/ls");
  ima.on_exec("/usr/bin/python3");
  EXPECT_EQ(ima.log_since(0).size(), 3u);
  EXPECT_EQ(ima.log_since(1).size(), 2u);
  EXPECT_EQ(ima.log_since(3).size(), 0u);
  EXPECT_EQ(ima.log_since(99).size(), 0u);
}

TEST_F(ImaFixture, RebootClearsLogAndCache) {
  ima.on_exec("/usr/bin/ls");
  tpm.reset();
  ima.on_boot("boot2");
  EXPECT_EQ(ima.log().size(), 1u);
  ima.on_exec("/usr/bin/ls");
  EXPECT_EQ(ima.log().size(), 2u) << "fresh boot must re-measure";
}

// -------------------------------------------------------------- replay

TEST_F(ImaFixture, ReplayMatchesPcr10) {
  ima.on_exec("/usr/bin/ls");
  ima.on_exec("/usr/bin/python3");
  EXPECT_EQ(replay_log(ima.log()), tpm.pcr_value(tpm::kImaPcr));
}

TEST_F(ImaFixture, ReplayDetectsTampering) {
  ima.on_exec("/usr/bin/ls");
  auto tampered = ima.log();
  tampered[1].template_hash = crypto::sha256(std::string("forged"));
  EXPECT_NE(replay_log(tampered), tpm.pcr_value(tpm::kImaPcr));
}

TEST_F(ImaFixture, ReplayDetectsDeletion) {
  ima.on_exec("/usr/bin/ls");
  ima.on_exec("/usr/bin/python3");
  auto truncated = ima.log();
  truncated.pop_back();
  EXPECT_NE(replay_log(truncated), tpm.pcr_value(tpm::kImaPcr));
}

TEST_F(ImaFixture, LogEntryParseRoundTrip) {
  ima.on_exec("/usr/bin/ls");
  const LogEntry& original = ima.log()[1];
  auto parsed = LogEntry::parse(original.to_string());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().pcr, original.pcr);
  EXPECT_EQ(parsed.value().template_hash, original.template_hash);
  EXPECT_EQ(parsed.value().template_name, original.template_name);
  EXPECT_EQ(parsed.value().file_hash, original.file_hash);
  EXPECT_EQ(parsed.value().path, original.path);
}

TEST_F(ImaFixture, LogEntryParsePathWithSpaces) {
  ASSERT_TRUE(fs.create_file("/usr/bin/my tool", to_bytes("elf"), true).ok());
  ima.on_exec("/usr/bin/my tool");
  auto parsed = LogEntry::parse(ima.log()[1].to_string());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().path, "/usr/bin/my tool");
}

TEST(LogEntryParseTest, RejectsMalformedLines) {
  EXPECT_FALSE(LogEntry::parse("").ok());
  EXPECT_FALSE(LogEntry::parse("10 zz ima-ng sha256:aa /x").ok());
  EXPECT_FALSE(LogEntry::parse("10").ok());
  EXPECT_FALSE(LogEntry::parse(
      "99 " + std::string(64, 'a') + " ima-ng sha256:" + std::string(64, 'b') +
      " /x").ok()) << "PCR out of range";
  EXPECT_FALSE(LogEntry::parse(
      "10 " + std::string(64, 'a') + " ima-ng md5:" + std::string(64, 'b') +
      " /x").ok()) << "unsupported digest algorithm";
  EXPECT_FALSE(LogEntry::parse(
      "10 " + std::string(64, 'a') + " ima-ng sha256:" + std::string(64, 'b'))
      .ok()) << "missing path";
}

TEST_F(ImaFixture, LogEntryRendering) {
  ima.on_exec("/usr/bin/ls");
  const std::string line = ima.log()[1].to_string();
  EXPECT_NE(line.find("10 "), std::string::npos);
  EXPECT_NE(line.find("ima-ng sha256:"), std::string::npos);
  EXPECT_NE(line.find("/usr/bin/ls"), std::string::npos);
}

}  // namespace
}  // namespace cia::ima
