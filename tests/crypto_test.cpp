// Unit tests for the crypto substrate: SHA-256 known-answer vectors,
// HMAC vectors, bignum arithmetic, secp256k1 group laws, Schnorr
// sign/verify, and certificate chains.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/hex.hpp"
#include "crypto/cert.hpp"
#include "crypto/hmac.hpp"
#include "crypto/schnorr.hpp"
#include "crypto/secp256k1.hpp"
#include "crypto/sha256.hpp"

namespace cia::crypto {
namespace {

// ---------------------------------------------------------------- SHA-256

TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(digest_hex(sha256(std::string())),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(digest_hex(sha256(std::string("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(
      digest_hex(sha256(std::string(
          "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 ctx;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) ctx.update(chunk);
  EXPECT_EQ(digest_hex(ctx.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, ResetReproducesAFreshContext) {
  Sha256 ctx;
  ctx.update(std::string("poison the state"));
  (void)ctx.finish();
  ctx.reset();
  ctx.update(std::string("abc"));
  EXPECT_EQ(digest_hex(ctx.finish()),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  // And again mid-message: reset before finish must also discard state.
  ctx.reset();
  ctx.update(std::string("partial inp"));
  ctx.reset();
  EXPECT_EQ(digest_hex(ctx.finish()),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, ScalarAndDispatchedBackendsAgree) {
  // Every length class that exercises a distinct padding/block path:
  // empty, sub-block, exact block, block+1, multi-block, and the 55/56/57
  // boundary where the length field forces a second padding block.
  std::vector<std::size_t> lens = {0, 1, 31, 55, 56, 57, 63, 64, 65, 127, 128, 1000};
  for (std::size_t len : lens) {
    Bytes msg(len);
    for (std::size_t i = 0; i < len; ++i) {
      msg[i] = static_cast<std::uint8_t>(i * 131 + len);
    }
    // Pad the way finish() does, then run both compressors directly.
    Bytes padded = msg;
    padded.push_back(0x80);
    while (padded.size() % 64 != 56) padded.push_back(0);
    const std::uint64_t bits = static_cast<std::uint64_t>(len) * 8;
    for (int i = 0; i < 8; ++i) {
      padded.push_back(static_cast<std::uint8_t>(bits >> (56 - 8 * i)));
    }
    std::uint32_t scalar_state[8] = {0x6a09e667, 0xbb67ae85, 0x3c6ef372,
                                     0xa54ff53a, 0x510e527f, 0x9b05688c,
                                     0x1f83d9ab, 0x5be0cd19};
    std::uint32_t dispatched_state[8];
    std::memcpy(dispatched_state, scalar_state, sizeof(scalar_state));
    detail::sha256_compress_scalar(scalar_state, padded.data(),
                                   padded.size() / 64);
    detail::sha256_compress(dispatched_state, padded.data(),
                            padded.size() / 64);
    for (int i = 0; i < 8; ++i) {
      ASSERT_EQ(scalar_state[i], dispatched_state[i])
          << "len " << len << " word " << i
          << (sha256_hw_accelerated() ? " (sha-ni)" : " (scalar)");
    }
  }
}

TEST(Sha256Test, PairAndTemplateHelpersMatchStreaming) {
  const Digest file_hash = sha256(std::string("file content"));
  const std::string path = "/usr/bin/env";
  Sha256 ctx;
  ctx.update(digest_bytes(file_hash));
  ctx.update(path);
  const Digest expected = ctx.finish();
  EXPECT_EQ(template_hash_of(file_hash, path), expected);

  const Digest acc = sha256(std::string("acc"));
  ctx.reset();
  ctx.update(acc.data(), acc.size());
  ctx.update(expected.data(), expected.size());
  EXPECT_EQ(pcr_fold(acc, expected), ctx.finish());
}

TEST(Sha256Test, BatchMatchesOneShots) {
  const std::string a0 = "alpha", b0 = "/bin/sh";
  const std::string a1 = "", b1 = "solo-second-segment";
  const std::string a2 = std::string(200, 'x');
  HashInput in[3] = {
      {reinterpret_cast<const std::uint8_t*>(a0.data()), a0.size(),
       reinterpret_cast<const std::uint8_t*>(b0.data()), b0.size()},
      {nullptr, 0, reinterpret_cast<const std::uint8_t*>(b1.data()), b1.size()},
      {reinterpret_cast<const std::uint8_t*>(a2.data()), a2.size(), nullptr, 0},
  };
  Digest out[3];
  sha256_batch(in, 3, out);
  EXPECT_EQ(out[0], sha256(a0 + b0));
  EXPECT_EQ(out[1], sha256(a1 + b1));
  EXPECT_EQ(out[2], sha256(a2));
}

TEST(Sha256Test, StreamingMatchesOneShot) {
  const std::string msg = "The quick brown fox jumps over the lazy dog";
  for (std::size_t cut = 0; cut <= msg.size(); ++cut) {
    Sha256 ctx;
    ctx.update(msg.substr(0, cut));
    ctx.update(msg.substr(cut));
    EXPECT_EQ(digest_hex(ctx.finish()), digest_hex(sha256(msg)))
        << "cut at " << cut;
  }
}

TEST(Sha256Test, BoundaryLengths) {
  // Lengths around the 64-byte block boundary exercise padding paths.
  for (std::size_t len : {55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u, 127u, 128u}) {
    const std::string msg(len, 'x');
    Sha256 a;
    a.update(msg);
    Sha256 b;
    for (char c : msg) b.update(std::string(1, c));
    EXPECT_EQ(digest_hex(a.finish()), digest_hex(b.finish())) << "len " << len;
  }
}

// ------------------------------------------------------------------ HMAC

TEST(HmacTest, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  const Bytes data = to_bytes("Hi There");
  EXPECT_EQ(digest_hex(hmac_sha256(key, data)),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacTest, Rfc4231Case2) {
  const Bytes key = to_bytes("Jefe");
  const Bytes data = to_bytes("what do ya want for nothing?");
  EXPECT_EQ(digest_hex(hmac_sha256(key, data)),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacTest, Rfc4231Case3) {
  const Bytes key(20, 0xaa);
  const Bytes data(50, 0xdd);
  EXPECT_EQ(digest_hex(hmac_sha256(key, data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(HmacTest, LongKeyIsHashedFirst) {
  const Bytes key(131, 0xaa);  // longer than the block size
  const Bytes data = to_bytes("Test Using Larger Than Block-Size Key - Hash Key First");
  EXPECT_EQ(digest_hex(hmac_sha256(key, data)),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

// ----------------------------------------------------------------- U256

TEST(U256Test, HexRoundTrip) {
  const std::string h =
      "0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef";
  EXPECT_EQ(U256::from_hex(h).to_hex(), h);
}

TEST(U256Test, BytesRoundTrip) {
  const std::string h =
      "00ff00ff00ff00ff00ff00ff00ff00ff00ff00ff00ff00ff00ff00ff00ff00ff";
  const U256 v = U256::from_hex(h);
  EXPECT_EQ(U256::from_be_bytes(v.to_be_bytes()), v);
}

TEST(U256Test, AddCarry) {
  U256 max;
  max.limb = {~0ull, ~0ull, ~0ull, ~0ull};
  U256 out;
  EXPECT_EQ(add_with_carry(max, U256::one(), out), 1u);
  EXPECT_TRUE(out.is_zero());
}

TEST(U256Test, SubBorrow) {
  U256 out;
  EXPECT_EQ(sub_with_borrow(U256::zero(), U256::one(), out), 1u);
  U256 max;
  max.limb = {~0ull, ~0ull, ~0ull, ~0ull};
  EXPECT_EQ(out, max);
}

TEST(U256Test, MulWideSimple) {
  const U256 a = U256::from_u64(0xffffffffffffffffull);
  const U512 p = mul_wide(a, a);
  // (2^64-1)^2 = 2^128 - 2^65 + 1
  EXPECT_EQ(p[0], 1u);
  EXPECT_EQ(p[1], 0xfffffffffffffffeull);
  EXPECT_EQ(p[2], 0u);
}

TEST(U256Test, ModularArithmeticAgainstKnownPrime) {
  const auto& fp = field_modulus();
  // (p-1) + 2 == 1 (mod p)
  U256 pm1;
  sub_with_borrow(fp.p, U256::one(), pm1);
  EXPECT_EQ(add_mod(pm1, U256::from_u64(2), fp), U256::one());
  // (p-1) * (p-1) == 1 (mod p)   [since p-1 == -1]
  EXPECT_EQ(mul_mod(pm1, pm1, fp), U256::one());
}

TEST(U256Test, FermatInverse) {
  const auto& fp = field_modulus();
  const U256 a = U256::from_hex(
      "00000000000000000000000000000000000000000000000000000000deadbeef");
  const U256 ainv = inv_mod(a, fp);
  EXPECT_EQ(mul_mod(a, ainv, fp), U256::one());
}

TEST(U256Test, PowModSmallCases) {
  const auto& fp = field_modulus();
  EXPECT_EQ(pow_mod(U256::from_u64(2), U256::from_u64(10), fp),
            U256::from_u64(1024));
  EXPECT_EQ(pow_mod(U256::from_u64(7), U256::zero(), fp), U256::one());
}

// ------------------------------------------------------------- secp256k1

TEST(Secp256k1Test, GeneratorOnCurve) {
  EXPECT_TRUE(on_curve(generator()));
}

TEST(Secp256k1Test, KnownMultiple2G) {
  const Point p2 = scalar_mul_base(U256::from_u64(2));
  EXPECT_EQ(p2.x.to_hex(),
            "c6047f9441ed7d6d3045406e95c07cd85c778e4b8cef3ca7abac09b95c709ee5");
  EXPECT_EQ(p2.y.to_hex(),
            "1ae168fea63dc339a3c58419466ceaeef7f632653266d0e1236431a950cfe52a");
}

TEST(Secp256k1Test, AdditionAgreesWithScalarMul) {
  const Point g = generator();
  const Point g2 = add(g, g);
  const Point g3 = add(g2, g);
  EXPECT_EQ(g3, scalar_mul_base(U256::from_u64(3)));
}

TEST(Secp256k1Test, OrderTimesGIsInfinity) {
  EXPECT_TRUE(scalar_mul_base(order_modulus().p).infinity);
}

TEST(Secp256k1Test, PointPlusNegationIsInfinity) {
  const Point g5 = scalar_mul_base(U256::from_u64(5));
  EXPECT_TRUE(add(g5, negate(g5)).infinity);
}

TEST(Secp256k1Test, ScalarMulDistributes) {
  // (a+b)G == aG + bG
  const U256 a = U256::from_u64(123456789);
  const U256 b = U256::from_u64(987654321);
  const auto& n = order_modulus();
  const Point lhs = scalar_mul_base(add_mod(a, b, n));
  const Point rhs = add(scalar_mul_base(a), scalar_mul_base(b));
  EXPECT_EQ(lhs, rhs);
}

TEST(Secp256k1Test, EncodeDecodeRoundTrip) {
  const Point p = scalar_mul_base(U256::from_u64(42));
  auto decoded = decode_point(encode_point(p));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, p);
}

TEST(Secp256k1Test, DecodeRejectsOffCurvePoint) {
  Bytes bad(64, 0x01);
  EXPECT_FALSE(decode_point(bad).has_value());
}

// --------------------------------------------------------------- Schnorr

TEST(SchnorrTest, SignVerifyRoundTrip) {
  const KeyPair key = derive_keypair(to_bytes("seed"), "test");
  const Bytes msg = to_bytes("attestation quote");
  const Signature sig = sign(key, msg);
  EXPECT_TRUE(verify(key.pub, msg, sig));
}

TEST(SchnorrTest, RejectsTamperedMessage) {
  const KeyPair key = derive_keypair(to_bytes("seed"), "test");
  const Signature sig = sign(key, to_bytes("original"));
  EXPECT_FALSE(verify(key.pub, to_bytes("tampered"), sig));
}

TEST(SchnorrTest, RejectsWrongKey) {
  const KeyPair key1 = derive_keypair(to_bytes("seed1"), "a");
  const KeyPair key2 = derive_keypair(to_bytes("seed2"), "b");
  const Bytes msg = to_bytes("message");
  EXPECT_FALSE(verify(key2.pub, msg, sign(key1, msg)));
}

TEST(SchnorrTest, RejectsTamperedSignature) {
  const KeyPair key = derive_keypair(to_bytes("seed"), "test");
  const Bytes msg = to_bytes("message");
  Signature sig = sign(key, msg);
  sig.s = add_mod(sig.s, U256::one(), order_modulus());
  EXPECT_FALSE(verify(key.pub, msg, sig));
}

TEST(SchnorrTest, DeterministicSignatures) {
  const KeyPair key = derive_keypair(to_bytes("seed"), "test");
  const Bytes msg = to_bytes("message");
  EXPECT_EQ(sign(key, msg).encode(), sign(key, msg).encode());
}

TEST(SchnorrTest, SignatureEncodingRoundTrip) {
  const KeyPair key = derive_keypair(to_bytes("seed"), "test");
  const Signature sig = sign(key, to_bytes("m"));
  auto decoded = Signature::decode(sig.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, sig);
}

// ----------------------------------------------------------- Certificates

TEST(CertTest, IssueAndVerify) {
  const CertificateAuthority ca("manufacturer-sim", to_bytes("ca-seed"));
  const KeyPair ek = derive_keypair(to_bytes("tpm-seed"), "ek");
  const Certificate cert = ca.issue("tpm:ek:device0", ek.pub, 0, kDay * 365);
  EXPECT_TRUE(verify_certificate(cert, ca.public_key(), kDay));
}

TEST(CertTest, RejectsExpired) {
  const CertificateAuthority ca("manufacturer-sim", to_bytes("ca-seed"));
  const KeyPair ek = derive_keypair(to_bytes("tpm-seed"), "ek");
  const Certificate cert = ca.issue("tpm:ek:device0", ek.pub, 0, kDay);
  EXPECT_FALSE(verify_certificate(cert, ca.public_key(), kDay * 2));
}

TEST(CertTest, RejectsWrongIssuerKey) {
  const CertificateAuthority ca("real", to_bytes("ca-seed"));
  const CertificateAuthority rogue("rogue", to_bytes("rogue-seed"));
  const KeyPair ek = derive_keypair(to_bytes("tpm-seed"), "ek");
  const Certificate cert = rogue.issue("tpm:ek:device0", ek.pub, 0, kDay * 365);
  EXPECT_FALSE(verify_certificate(cert, ca.public_key(), kDay));
}

TEST(CertTest, EncodingRoundTrip) {
  const CertificateAuthority ca("manufacturer-sim", to_bytes("ca-seed"));
  const KeyPair ek = derive_keypair(to_bytes("tpm-seed"), "ek");
  const Certificate cert = ca.issue("tpm:ek:device0", ek.pub, 100, 200);
  auto decoded = Certificate::decode(cert.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->subject, cert.subject);
  EXPECT_EQ(decoded->issuer, cert.issuer);
  EXPECT_EQ(decoded->not_before, 100);
  EXPECT_EQ(decoded->not_after, 200);
  EXPECT_TRUE(verify_certificate(*decoded, ca.public_key(), 150));
}

TEST(CertTest, DecodeRejectsTruncated) {
  const CertificateAuthority ca("manufacturer-sim", to_bytes("ca-seed"));
  const KeyPair ek = derive_keypair(to_bytes("tpm-seed"), "ek");
  Bytes enc = ca.issue("s", ek.pub, 0, 1).encode();
  enc.pop_back();
  EXPECT_FALSE(Certificate::decode(enc).has_value());
}

}  // namespace
}  // namespace cia::crypto
