// Wire round-trip and hostile-input tests for every Keylime protocol
// message.
#include <gtest/gtest.h>

#include "keylime/messages.hpp"
#include "keylime/verifier.hpp"

namespace cia::keylime {
namespace {

tpm::Tpm2 make_tpm() {
  static const crypto::CertificateAuthority ca("mfg", to_bytes("seed"));
  return tpm::Tpm2("dev", to_bytes("seed"), ca);
}

TEST(MessagesTest, RegisterRequestRoundTrip) {
  const auto tpm = make_tpm();
  RegisterRequest req;
  req.agent_id = "node-with-a-long-name";
  req.ek_cert = tpm.ek_certificate().encode();
  req.ak_pub = tpm.ak_public().encode();
  auto decoded = RegisterRequest::decode(req.encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().agent_id, req.agent_id);
  EXPECT_EQ(decoded.value().ek_cert, req.ek_cert);
  EXPECT_EQ(decoded.value().ak_pub, req.ak_pub);
}

TEST(MessagesTest, RegisterChallengeRoundTrip) {
  const auto tpm = make_tpm();
  RegisterChallenge challenge;
  challenge.blob = tpm::make_credential(tpm.ek_public(), tpm.ak_name(),
                                        to_bytes("secret"), to_bytes("entropy"));
  auto decoded = RegisterChallenge::decode(challenge.encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().blob.ephemeral_pub, challenge.blob.ephemeral_pub);
  EXPECT_EQ(decoded.value().blob.encrypted, challenge.blob.encrypted);
  EXPECT_EQ(decoded.value().blob.mac, challenge.blob.mac);
  EXPECT_EQ(decoded.value().blob.ak_name, challenge.blob.ak_name);
}

TEST(MessagesTest, ActivateRequestRoundTrip) {
  ActivateRequest req;
  req.agent_id = "node0";
  req.proof = Bytes(32, 0xaa);
  auto decoded = ActivateRequest::decode(req.encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().agent_id, "node0");
  EXPECT_EQ(decoded.value().proof, req.proof);
}

TEST(MessagesTest, GetAgentRoundTrip) {
  GetAgentRequest req{"node0"};
  auto decoded_req = GetAgentRequest::decode(req.encode());
  ASSERT_TRUE(decoded_req.ok());
  EXPECT_EQ(decoded_req.value().agent_id, "node0");

  GetAgentResponse resp;
  resp.active = true;
  resp.ak_pub = Bytes(64, 0x01);
  auto decoded_resp = GetAgentResponse::decode(resp.encode());
  ASSERT_TRUE(decoded_resp.ok());
  EXPECT_TRUE(decoded_resp.value().active);
  EXPECT_EQ(decoded_resp.value().ak_pub, resp.ak_pub);
}

TEST(MessagesTest, QuoteRequestRoundTrip) {
  QuoteRequest req;
  req.nonce = Bytes{1, 2, 3, 4};
  req.log_offset = 0xdeadbeefcafeull;
  auto decoded = QuoteRequest::decode(req.encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().nonce, req.nonce);
  EXPECT_EQ(decoded.value().log_offset, req.log_offset);
}

TEST(MessagesTest, QuoteResponseRoundTripPreservesSignature) {
  const auto tpm = make_tpm();
  QuoteResponse resp;
  resp.quote = tpm.quote(to_bytes("nonce"), quoted_pcrs());
  ima::LogEntry entry;
  entry.path = "/usr/bin/x";
  entry.file_hash = crypto::sha256(std::string("x"));
  entry.template_hash = crypto::sha256(std::string("t"));
  resp.entries.push_back(entry);
  resp.total_log_length = 7;
  resp.boot_count = 3;

  auto decoded = QuoteResponse::decode(resp.encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded.value().quote.verify(tpm.ak_public()));
  EXPECT_EQ(decoded.value().entries.size(), 1u);
  EXPECT_EQ(decoded.value().entries[0].path, "/usr/bin/x");
  EXPECT_EQ(decoded.value().total_log_length, 7u);
  EXPECT_EQ(decoded.value().boot_count, 3u);
}

TEST(MessagesTest, BootLogResponseRoundTrip) {
  BootLogResponse resp;
  for (int i = 0; i < 5; ++i) {
    oskernel::BootEvent e;
    e.pcr = i % 2 ? 4 : 7;
    e.description = "component-" + std::to_string(i);
    e.digest = crypto::sha256(std::to_string(i));
    resp.events.push_back(e);
  }
  auto decoded = BootLogResponse::decode(resp.encode());
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded.value().events.size(), 5u);
  EXPECT_EQ(decoded.value().events[2].description, "component-2");
  EXPECT_EQ(decoded.value().events[2].digest, crypto::sha256(std::string("2")));
}

TEST(MessagesTest, DecodersRejectTrailingGarbage) {
  QuoteRequest req;
  req.nonce = Bytes{1};
  Bytes enc = req.encode();
  enc.push_back(0x00);
  EXPECT_FALSE(QuoteRequest::decode(enc).ok());

  ActivateRequest act;
  act.agent_id = "x";
  Bytes enc2 = act.encode();
  enc2.push_back(0x00);
  EXPECT_FALSE(ActivateRequest::decode(enc2).ok());
}

TEST(MessagesTest, QuoteDecoderRejectsBadPcrIndices) {
  const auto tpm = make_tpm();
  QuoteResponse resp;
  resp.quote = tpm.quote(to_bytes("n"), {tpm::kImaPcr});
  Bytes enc = resp.encode();
  // The PCR index is a u32 after device_id (8+3 bytes) + nonce (8+1) +
  // count (4); flip it to an out-of-range value.
  const std::size_t idx_offset = 8 + 3 + 8 + 1 + 4;
  enc[idx_offset + 3] = 0xff;
  EXPECT_FALSE(QuoteResponse::decode(enc).ok());
}

TEST(MessagesTest, BootLogDecoderRejectsImplausibleSizes) {
  netsim::WireWriter w;
  w.put_u32(1u << 20);  // claims a million events
  EXPECT_FALSE(BootLogResponse::decode(w.data()).ok());
}

TEST(MessagesTest, BootLogDecoderRejectsBadPcr) {
  netsim::WireWriter w;
  w.put_u32(1);
  w.put_u32(99);  // no such PCR
  w.put_string("x");
  w.put_digest(crypto::zero_digest());
  EXPECT_FALSE(BootLogResponse::decode(w.data()).ok());
}

TEST(MessagesTest, AllDecodersRejectEmptyInput) {
  EXPECT_FALSE(RegisterRequest::decode({}).ok());
  EXPECT_FALSE(RegisterChallenge::decode({}).ok());
  EXPECT_FALSE(ActivateRequest::decode({}).ok());
  EXPECT_FALSE(GetAgentRequest::decode({}).ok());
  EXPECT_FALSE(GetAgentResponse::decode({}).ok());
  EXPECT_FALSE(QuoteRequest::decode({}).ok());
  EXPECT_FALSE(QuoteResponse::decode({}).ok());
  // An empty boot log is legitimately decodable only with its count field;
  // a zero-byte payload is not.
  EXPECT_FALSE(BootLogResponse::decode({}).ok());
}

}  // namespace
}  // namespace cia::keylime
