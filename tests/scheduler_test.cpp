// Tests for the fleet polling scheduler: staggering, cadence, and
// exponential backoff on unreachable agents.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "common/strutil.hpp"
#include "keylime/agent.hpp"
#include "keylime/registrar.hpp"
#include "keylime/scheduler.hpp"
#include "keylime/verifier.hpp"
#include "oskernel/machine.hpp"

namespace cia::keylime {
namespace {

struct SchedulerRig : ::testing::Test {
  SchedulerRig()
      : ca("mfg", to_bytes("seed")),
        network(&clock, 1),
        registrar(&network, &clock, 2),
        verifier(&network, &clock, 3) {
    registrar.trust_manufacturer(ca.public_key());
  }

  void add_agents(int n) {
    for (int i = 0; i < n; ++i) {
      oskernel::MachineConfig cfg;
      cfg.hostname = strformat("sched-%02d", i);
      cfg.seed = static_cast<std::uint64_t>(i + 1);
      machines.push_back(std::make_unique<oskernel::Machine>(cfg, ca, &clock));
      agents.push_back(
          std::make_unique<Agent>(machines.back().get(), &network));
      ASSERT_TRUE(agents.back()->register_with(Registrar::address()).ok());
      ASSERT_TRUE(verifier.add_agent(cfg.hostname, agents.back()->address()).ok());
      ASSERT_TRUE(verifier.set_policy(cfg.hostname, RuntimePolicy{}).ok());
    }
  }

  SimClock clock;
  crypto::CertificateAuthority ca;
  netsim::SimNetwork network;
  Registrar registrar;
  Verifier verifier;
  std::vector<std::unique_ptr<oskernel::Machine>> machines;
  std::vector<std::unique_ptr<Agent>> agents;
};

TEST_F(SchedulerRig, StaggersFirstPollsAcrossInterval) {
  add_agents(8);
  AttestationScheduler scheduler(&verifier, &clock, SchedulerConfig{});
  std::set<SimTime> first_polls;
  for (const auto& agent : agents) {
    scheduler.enroll(agent->agent_id());
    first_polls.insert(scheduler.schedule(agent->agent_id())->next_poll);
  }
  EXPECT_GT(first_polls.size(), 4u)
      << "agents must not thunder-herd at the same instant";
}

TEST_F(SchedulerRig, PollsAtConfiguredCadence) {
  add_agents(1);
  SchedulerConfig config;
  config.poll_interval = 60;
  AttestationScheduler scheduler(&verifier, &clock, config);
  scheduler.enroll("sched-00");

  std::size_t total = 0;
  for (int t = 0; t < 600; t += 10) {
    clock.advance_to(t);
    total += scheduler.tick();
  }
  // Roughly one poll per minute over ten minutes.
  EXPECT_GE(total, 9u);
  EXPECT_LE(total, 11u);
  EXPECT_EQ(scheduler.schedule("sched-00")->polls, total);
}

TEST_F(SchedulerRig, TickOnlyPollsDueAgents) {
  add_agents(3);
  AttestationScheduler scheduler(&verifier, &clock, SchedulerConfig{});
  for (const auto& agent : agents) scheduler.enroll(agent->agent_id());
  // Immediately after enrolment nothing is due (stagger > 0 for most).
  const std::size_t first = scheduler.tick();
  clock.advance(59);
  const std::size_t second = scheduler.tick();
  EXPECT_EQ(first + second, 3u) << "each agent polled exactly once so far";
}

TEST_F(SchedulerRig, BackoffGrowsAndCaps) {
  add_agents(1);
  SchedulerConfig config;
  config.poll_interval = 60;
  config.initial_backoff = 30;
  config.max_backoff = 120;
  AttestationScheduler scheduler(&verifier, &clock, config);
  scheduler.enroll("sched-00");

  netsim::FaultConfig faults;
  faults.drop_rate = 1.0;
  network.set_faults(faults);

  std::vector<SimTime> backoffs;
  for (int i = 0; i < 5; ++i) {
    clock.advance_to(scheduler.next_due());
    ASSERT_EQ(scheduler.tick(), 1u);
    backoffs.push_back(scheduler.schedule("sched-00")->current_backoff);
  }
  EXPECT_EQ(backoffs[0], 30);
  EXPECT_EQ(backoffs[1], 60);
  EXPECT_EQ(backoffs[2], 120);
  EXPECT_EQ(backoffs[3], 120) << "backoff must cap";
  EXPECT_EQ(scheduler.schedule("sched-00")->comms_failures, 5u);
}

TEST_F(SchedulerRig, BackoffResetsOnRecovery) {
  add_agents(1);
  SchedulerConfig config;
  config.poll_interval = 60;
  AttestationScheduler scheduler(&verifier, &clock, config);
  scheduler.enroll("sched-00");

  netsim::FaultConfig faults;
  faults.drop_rate = 1.0;
  network.set_faults(faults);
  clock.advance_to(scheduler.next_due());
  ASSERT_EQ(scheduler.tick(), 1u);
  EXPECT_GT(scheduler.schedule("sched-00")->current_backoff, 0);

  network.set_faults(netsim::FaultConfig{});
  clock.advance_to(scheduler.next_due());
  ASSERT_EQ(scheduler.tick(), 1u);
  EXPECT_EQ(scheduler.schedule("sched-00")->current_backoff, 0)
      << "a successful poll restores the healthy cadence";
}

TEST_F(SchedulerRig, FleetOfTwentyStaysGreen) {
  add_agents(20);
  AttestationScheduler scheduler(&verifier, &clock, SchedulerConfig{});
  for (const auto& agent : agents) scheduler.enroll(agent->agent_id());
  for (int t = 0; t <= 300; t += 5) {
    clock.advance_to(t);
    (void)scheduler.tick();
  }
  EXPECT_TRUE(verifier.alerts().empty());
  for (const auto& agent : agents) {
    EXPECT_GE(scheduler.schedule(agent->agent_id())->polls, 4u)
        << agent->agent_id();
  }
}

TEST_F(SchedulerRig, BackoffCeilingHoldsThroughLongOutage) {
  add_agents(1);
  SchedulerConfig config;
  config.poll_interval = 60;
  config.initial_backoff = 30;
  config.max_backoff = 120;
  AttestationScheduler scheduler(&verifier, &clock, config);
  scheduler.enroll("sched-00");

  netsim::FaultConfig faults;
  faults.drop_rate = 1.0;
  network.set_faults(faults);
  // A long outage: backoff plus jitter must never exceed ceiling + 25%.
  for (int i = 0; i < 20; ++i) {
    clock.advance_to(scheduler.next_due());
    ASSERT_EQ(scheduler.tick(), 1u);
    const auto* schedule = scheduler.schedule("sched-00");
    EXPECT_LE(schedule->current_backoff, 120);
    EXPECT_LE(schedule->next_poll - clock.now(), 120 + 120 / 4);
  }
  EXPECT_EQ(scheduler.healthy_count(), 0u);
  EXPECT_EQ(scheduler.backing_off_count(), 1u);
}

TEST_F(SchedulerRig, RecoveryReturnsToHealthyCadence) {
  add_agents(1);
  SchedulerConfig config;
  config.poll_interval = 60;
  AttestationScheduler scheduler(&verifier, &clock, config);
  scheduler.enroll("sched-00");

  netsim::FaultConfig faults;
  faults.drop_rate = 1.0;
  network.set_faults(faults);
  for (int i = 0; i < 6; ++i) {
    clock.advance_to(scheduler.next_due());
    ASSERT_EQ(scheduler.tick(), 1u);
  }
  EXPECT_EQ(scheduler.backing_off_count(), 1u);

  network.set_faults(netsim::FaultConfig{});
  clock.advance_to(scheduler.next_due());
  ASSERT_EQ(scheduler.tick(), 1u);
  EXPECT_EQ(scheduler.healthy_count(), 1u);
  // The next polls land exactly one interval apart again.
  const SimTime recovered_at = clock.now();
  EXPECT_EQ(scheduler.schedule("sched-00")->next_poll, recovered_at + 60);
  clock.advance_to(scheduler.next_due());
  ASSERT_EQ(scheduler.tick(), 1u);
  EXPECT_EQ(scheduler.schedule("sched-00")->next_poll, recovered_at + 120);
}

TEST_F(SchedulerRig, ReEnrollSameIdDoesNotDoubleSchedule) {
  add_agents(1);
  SchedulerConfig config;
  config.poll_interval = 60;
  AttestationScheduler scheduler(&verifier, &clock, config);
  scheduler.enroll("sched-00");
  scheduler.enroll("sched-00");  // agent reinstall / re-activation
  std::size_t total = 0;
  for (int t = 0; t <= 600; t += 5) {
    clock.advance_to(t);
    total += scheduler.tick();
  }
  // One slot, one cadence: ~10 polls over 10 minutes, not ~20.
  EXPECT_LE(total, 11u);
  EXPECT_EQ(scheduler.schedule("sched-00")->polls, total);
}

TEST_F(SchedulerRig, RetryJitterDesynchronizesSimultaneousFailures) {
  add_agents(8);
  SchedulerConfig config;
  config.poll_interval = 60;
  config.initial_backoff = 60;
  config.max_backoff = 15 * kMinute;
  AttestationScheduler scheduler(&verifier, &clock, config);
  for (const auto& agent : agents) scheduler.enroll(agent->agent_id());
  // Let every agent complete its staggered first poll, then kill the rack.
  for (int t = 0; t <= 60; t += 5) {
    clock.advance_to(t);
    (void)scheduler.tick();
  }
  netsim::FaultConfig faults;
  faults.drop_rate = 1.0;
  network.set_faults(faults);
  // Drive everyone into repeated failures so backoff grows past the
  // jitter granularity, then check the retries are spread out.
  for (int round = 0; round < 6; ++round) {
    clock.advance_to(scheduler.next_due() + config.max_backoff);
    (void)scheduler.tick();
  }
  std::set<SimTime> retry_times;
  for (const auto& agent : agents) {
    retry_times.insert(scheduler.schedule(agent->agent_id())->next_poll);
  }
  EXPECT_GT(retry_times.size(), 4u)
      << "a rack that died together must not retry in lockstep";
  EXPECT_EQ(scheduler.backing_off_count(), 8u);
}

}  // namespace
}  // namespace cia::keylime
