// Property-based suites (parameterized over seeds / sizes) asserting the
// library's core invariants:
//
//   * IMA/TPM: replaying the measurement list always reproduces PCR 10,
//     no matter what the machine did;
//   * VFS: inode identity is unique per filesystem and stable across
//     in-filesystem renames, under arbitrary operation sequences;
//   * policy: serialize/parse and JSON round-trips for generated
//     policies; merge is a union; dedup never removes the ability to
//     match the newest hash;
//   * wire: arbitrary truncations of valid messages fail cleanly, and
//     bit-flipped frames never break the decode/re-encode contract;
//   * checkpoint: generated verifier checkpoints restore and round-trip;
//   * crypto: streaming hashing equals one-shot for any chunking; every
//     signed message verifies and no tampered one does.
//
// Random instances come from src/testkit's generators (the same sources
// the fuzz targets use), and failing policy round trips are minimized
// with the testkit shrinker before being reported.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "common/hex.hpp"
#include "common/rng.hpp"
#include "crypto/schnorr.hpp"
#include "keylime/messages.hpp"
#include "keylime/policy_index.hpp"
#include "keylime/runtime_policy.hpp"
#include "oskernel/machine.hpp"
#include "testkit/generators.hpp"
#include "testkit/shrink.hpp"
#include "testkit/targets.hpp"

namespace cia {
namespace {

// ----------------------------------------------- IMA replay invariant

class ImaReplayProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ImaReplayProperty, RandomActivityAlwaysReplaysToPcr10) {
  Rng rng(GetParam());
  crypto::CertificateAuthority ca("mfg", to_bytes("seed"));
  SimClock clock;
  oskernel::MachineConfig config;
  config.seed = GetParam();
  oskernel::Machine machine(config, ca, &clock);
  auto& fs = machine.fs();

  std::vector<std::string> files;
  for (int step = 0; step < 300; ++step) {
    const auto action = rng.uniform(8);
    if (action <= 2 || files.empty()) {
      // Create an executable somewhere — half the time at a generated
      // adversarial path (SNAP shapes, spaces, deep nesting, tmpfs),
      // half at the classic mount points (incl. IMA-excluded ones).
      std::string path;
      if (rng.chance(0.5)) {
        path = testkit::gen_path(rng);
      } else {
        static const char* kDirs[] = {"/usr/bin", "/tmp", "/dev/shm",
                                      "/opt", "/proc", "/home"};
        path = std::string(kDirs[rng.uniform(6)]) + "/f" +
               std::to_string(step);
      }
      if (fs.create_file(path, rng.bytes(16), true).ok()) {
        files.push_back(path);
      }
    } else if (action == 3) {
      (void)machine.exec(files[rng.uniform(files.size())]);
    } else if (action == 4) {
      machine.mmap_library(files[rng.uniform(files.size())]);
    } else if (action == 5) {
      (void)fs.write_file(files[rng.uniform(files.size())], rng.bytes(16));
    } else if (action == 6) {
      const std::size_t idx = rng.uniform(files.size());
      const std::string dst = "/moved/f" + std::to_string(step);
      if (fs.rename(files[idx], dst).ok()) files[idx] = dst;
    } else {
      (void)machine.load_kernel_module(files[rng.uniform(files.size())]);
    }

    if (step % 50 == 0) {
      ASSERT_EQ(ima::replay_log(machine.ima().log()),
                machine.tpm().pcr_value(tpm::kImaPcr))
          << "seed " << GetParam() << " step " << step;
    }
  }
  EXPECT_EQ(ima::replay_log(machine.ima().log()),
            machine.tpm().pcr_value(tpm::kImaPcr));

  // The invariant must survive a reboot as well.
  machine.reboot();
  for (const auto& f : files) (void)machine.exec(f);
  EXPECT_EQ(ima::replay_log(machine.ima().log()),
            machine.tpm().pcr_value(tpm::kImaPcr));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ImaReplayProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ----------------------------------------------------- VFS invariants

class VfsProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VfsProperty, InodesUniquePerFilesystemUnderRandomOps) {
  Rng rng(GetParam());
  vfs::Vfs fs;
  ASSERT_TRUE(fs.mount("/tmp2", vfs::FsType::kTmpfs).ok());
  ASSERT_TRUE(fs.mount("/data", vfs::FsType::kExt4).ok());

  std::vector<std::string> files;
  for (int step = 0; step < 400; ++step) {
    const auto action = rng.uniform(5);
    if (action <= 1 || files.empty()) {
      static const char* kDirs[] = {"/usr", "/tmp2", "/data", "/home"};
      const std::string path = std::string(kDirs[rng.uniform(4)]) + "/f" +
                               std::to_string(step);
      if (fs.create_file(path, rng.bytes(8), rng.chance(0.5)).ok()) {
        files.push_back(path);
      }
    } else if (action == 2) {
      const std::size_t idx = rng.uniform(files.size());
      static const char* kDirs[] = {"/usr", "/tmp2", "/data"};
      const std::string dst = std::string(kDirs[rng.uniform(3)]) + "/m" +
                              std::to_string(step);
      if (fs.rename(files[idx], dst).ok()) files[idx] = dst;
    } else if (action == 3) {
      const std::size_t idx = rng.uniform(files.size());
      if (fs.unlink(files[idx]).ok()) {
        files.erase(files.begin() + static_cast<std::ptrdiff_t>(idx));
      }
    } else {
      (void)fs.write_file(files[rng.uniform(files.size())], rng.bytes(8));
    }
  }

  // Invariants: listing agrees with our bookkeeping, and no two files on
  // one filesystem share an inode.
  EXPECT_EQ(fs.list_files("/").size(), files.size());
  std::set<vfs::FileIdentity> identities;
  for (const auto& path : files) {
    const auto st = fs.stat(path);
    ASSERT_TRUE(st.ok()) << path;
    EXPECT_TRUE(identities.insert(st.value().id).second)
        << "duplicate identity for " << path;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VfsProperty,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

// ------------------------------------------------- policy round trips

class PolicyProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PolicyProperty, GeneratedPoliciesRoundTripThroughTextAndJson) {
  Rng rng(GetParam());
  for (int i = 0; i < 4; ++i) {
    const keylime::RuntimePolicy policy = testkit::gen_policy(rng);
    const std::string text = policy.serialize();

    auto parsed = keylime::RuntimePolicy::parse(text);
    ASSERT_TRUE(parsed.ok()) << text;
    EXPECT_EQ(parsed.value().entry_count(), policy.entry_count());
    EXPECT_EQ(parsed.value().path_count(), policy.path_count());
    if (parsed.value().serialize() != text) {
      // Minimize before reporting: the shrunken text is a committable
      // reproducer for tests/corpus/regressions/.
      const std::string minimized = testkit::shrink_text(
          text, [](const std::string& t) {
            auto p = keylime::RuntimePolicy::parse(t);
            return p.ok() && p.value().serialize() != t;
          });
      FAIL() << "serialize round-trip diverged; minimized reproducer:\n"
             << minimized;
    }

    auto from_json = keylime::RuntimePolicy::from_json(policy.to_json());
    ASSERT_TRUE(from_json.ok());
    EXPECT_EQ(from_json.value().serialize(), text);
  }
}

TEST_P(PolicyProperty, MergeIsAUnionOfAllowsAndExcludes) {
  Rng rng(GetParam() ^ 0x6d657267);
  const keylime::RuntimePolicy ours = testkit::gen_policy(rng, 24);
  const keylime::RuntimePolicy theirs = testkit::gen_policy(rng, 24);

  // Every (path, hash) pair either side accepted must still be
  // acceptable after the merge (modulo the other side's excludes).
  const auto pairs_of = [](const keylime::RuntimePolicy& p) {
    std::vector<std::pair<std::string, std::string>> out;
    const json::Value doc = p.to_json();
    for (const auto& [path, hashes] : doc.find("digests")->as_object()) {
      for (const auto& h : hashes.as_array()) {
        out.emplace_back(path, h.as_string());
      }
    }
    return out;
  };

  keylime::RuntimePolicy merged = ours;
  merged.merge(theirs);
  for (const auto& source : {ours, theirs}) {
    for (const auto& [path, hash] : pairs_of(source)) {
      const auto match = merged.check(path, hash);
      EXPECT_TRUE(match == keylime::PolicyMatch::kAllowed ||
                  match == keylime::PolicyMatch::kExcluded)
          << path << " " << keylime::policy_match_name(match);
    }
    for (const auto& glob : source.excludes()) {
      EXPECT_EQ(std::count(merged.excludes().begin(), merged.excludes().end(),
                           glob),
                1)
          << glob;
    }
  }
  EXPECT_LE(merged.entry_count(),
            ours.entry_count() + theirs.entry_count());
  EXPECT_GE(merged.path_count(),
            std::max(ours.path_count(), theirs.path_count()));

  // Post-update dedup on the merged policy keeps exactly the newest
  // hash per path: the last of theirs when they brought a new one,
  // otherwise the last of ours.
  const auto last_hash_per_path = [&](const keylime::RuntimePolicy& p) {
    std::map<std::string, std::vector<std::string>> hashes;
    for (const auto& [path, hash] : pairs_of(p)) hashes[path].push_back(hash);
    return hashes;
  };
  const auto our_hashes = last_hash_per_path(ours);
  const auto their_hashes = last_hash_per_path(theirs);
  keylime::RuntimePolicy deduped = merged;
  deduped.dedup();
  EXPECT_EQ(deduped.entry_count(), deduped.path_count());
  for (const auto& [path, hashes] : last_hash_per_path(merged)) {
    // Reconstruct the merged insertion order: ours, then any of theirs
    // not already present (allow() skips duplicates).
    std::vector<std::string> combined;
    if (auto it = our_hashes.find(path); it != our_hashes.end()) {
      combined = it->second;
    }
    if (auto it = their_hashes.find(path); it != their_hashes.end()) {
      for (const auto& h : it->second) {
        if (std::find(combined.begin(), combined.end(), h) == combined.end()) {
          combined.push_back(h);
        }
      }
    }
    ASSERT_FALSE(combined.empty()) << path;
    if (deduped.is_excluded(path)) continue;
    EXPECT_EQ(deduped.check(path, combined.back()),
              keylime::PolicyMatch::kAllowed)
        << path;
    (void)hashes;
  }
}

TEST_P(PolicyProperty, DedupKeepsExactlyTheNewestHash) {
  Rng rng(GetParam());
  keylime::RuntimePolicy policy;
  std::map<std::string, std::string> newest;
  for (int i = 0; i < 300; ++i) {
    const std::string path = "/bin/" + rng.ident(2);
    const std::string hash = to_hex(rng.bytes(32));
    policy.allow(path, hash);
    newest[path] = hash;
  }
  policy.dedup();
  EXPECT_EQ(policy.entry_count(), newest.size());
  for (const auto& [path, hash] : newest) {
    EXPECT_EQ(policy.check(path, hash), keylime::PolicyMatch::kAllowed);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PolicyProperty,
                         ::testing::Values(101, 202, 303, 404));

// ------------------------------------ policy index / linear agreement

class PolicyIndexProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PolicyIndexProperty, IndexAgreesWithLinearScanEverywhere) {
  Rng rng(GetParam() ^ 0x1d3f);
  for (int iter = 0; iter < 4; ++iter) {
    keylime::RuntimePolicy policy = testkit::gen_policy(rng, 48);
    // gen_policy emits few excludes; stack on the shapes PolicyIndex
    // compiles specially (directory prefixes), the ones it cannot
    // (suffix and infix globs), and a prefix glob ending mid-component,
    // which must NOT take the compiled path.
    policy.exclude("/" + rng.ident(3) + "/*");
    policy.exclude("/usr/" + rng.ident(2) + "/*");
    policy.exclude("*." + rng.ident(2));
    policy.exclude("/opt/" + rng.ident(2) + "*");
    const auto index =
        keylime::PolicyIndex::build(policy, static_cast<std::uint64_t>(iter));

    std::vector<std::pair<std::string, std::string>> probes;
    const std::string random_hash = to_hex(rng.bytes(32));
    policy.for_each_path(
        [&](const std::string& path, const std::vector<std::string>& hashes) {
          probes.emplace_back(path, hashes.front());  // policy hit
          probes.emplace_back(path, random_hash);     // hash mismatch
          probes.emplace_back(path + "x", random_hash);  // near miss
        });
    for (int i = 0; i < 64; ++i) {
      probes.emplace_back(testkit::gen_path(rng), random_hash);
    }

    for (const auto& [path, hash] : probes) {
      if (index->check(path, hash) == policy.check(path, hash)) continue;
      // Minimize the disagreeing path before reporting: the index and
      // the linear scan must be indistinguishable on EVERY input.
      const std::string h = hash;
      const std::string minimized = testkit::shrink_text(
          path, [&](const std::string& p) {
            return keylime::PolicyIndex::build(policy)->check(p, h) !=
                   policy.check(p, h);
          });
      FAIL() << "PolicyIndex diverged from RuntimePolicy; minimized path:\n"
             << minimized << "\nhash: " << hash << "\npolicy:\n"
             << policy.serialize();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PolicyIndexProperty,
                         ::testing::Values(501, 502, 503, 504, 505, 506));

// ---------------------------------------------------- wire truncation

class WireTruncationProperty : public ::testing::TestWithParam<int> {};

TEST_P(WireTruncationProperty, TruncatedQuoteResponsesFailCleanly) {
  crypto::CertificateAuthority ca("mfg", to_bytes("seed"));
  tpm::Tpm2 tpm("dev", to_bytes("seed"), ca);
  keylime::QuoteResponse resp;
  resp.quote = tpm.quote(to_bytes("nonce"), {tpm::kImaPcr});
  for (int i = 0; i < 5; ++i) {
    ima::LogEntry e;
    e.path = "/usr/bin/tool" + std::to_string(i);
    e.file_hash = crypto::sha256(std::to_string(i));
    e.template_hash = crypto::sha256("t" + std::to_string(i));
    resp.entries.push_back(e);
  }
  resp.total_log_length = 5;
  resp.boot_count = 1;
  const Bytes encoded = resp.encode();

  // Truncate at a fraction of the length (parameter = percent).
  const std::size_t cut = encoded.size() * static_cast<std::size_t>(GetParam()) / 100;
  const Bytes truncated(encoded.begin(),
                        encoded.begin() + static_cast<std::ptrdiff_t>(cut));
  const auto decoded = keylime::QuoteResponse::decode(truncated);
  if (cut == encoded.size()) {
    EXPECT_TRUE(decoded.ok());
  } else {
    EXPECT_FALSE(decoded.ok()) << "cut at " << cut << "/" << encoded.size();
  }
}

INSTANTIATE_TEST_SUITE_P(Cuts, WireTruncationProperty,
                         ::testing::Values(0, 5, 17, 33, 50, 66, 80, 95, 99,
                                           100));

TEST(WireFuzzTest, BitFlippedFramesNeverBreakTheDecodeContract) {
  // The wire fuzz target enforces the full contract (clean reject or
  // byte-identical re-encode) across every message decoder; here it is
  // driven with bit-flipped generated quote responses, historically the
  // richest frame shape.
  Rng rng(7);
  const testkit::FuzzTarget* wire = testkit::find_target("wire");
  ASSERT_NE(wire, nullptr);
  for (int trial = 0; trial < 200; ++trial) {
    Bytes frame =
        testkit::gen_quote_response(rng, rng.uniform(4)).encode();
    const std::size_t flips = 1 + rng.uniform(8);
    for (std::size_t i = 0; i < flips; ++i) {
      frame[rng.uniform(frame.size())] ^=
          static_cast<std::uint8_t>(1u << rng.uniform(8));
    }
    const auto outcome = wire->run(frame);
    EXPECT_NE(outcome.verdict, testkit::FuzzVerdict::kViolation)
        << "trial " << trial << ": " << outcome.detail;
  }
}

// ------------------------------------------- checkpoint round trips

class CheckpointProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CheckpointProperty, GeneratedCheckpointsRestoreAndRoundTrip) {
  // The checkpoint fuzz target restores a generated checkpoint document
  // into a live verifier, re-dumps it, and demands a fixed point — the
  // crash-recovery contract from the robustness PR, now property-tested.
  const testkit::FuzzTarget* checkpoint = testkit::find_target("checkpoint");
  ASSERT_NE(checkpoint, nullptr);
  Rng rng(GetParam());
  for (int i = 0; i < 3; ++i) {
    const Bytes doc = checkpoint->generate(rng);
    const auto outcome = checkpoint->run(doc);
    EXPECT_NE(outcome.verdict, testkit::FuzzVerdict::kViolation)
        << outcome.detail;
  }
  // Mutated documents must reject cleanly, never half-restore.
  testkit::ByteMutator mutator(GetParam() ^ 0x636b7074);
  const Bytes base = checkpoint->generate(rng);
  for (int i = 0; i < 40; ++i) {
    const auto outcome = checkpoint->run(mutator.mutate(base));
    EXPECT_NE(outcome.verdict, testkit::FuzzVerdict::kViolation)
        << outcome.detail;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CheckpointProperty,
                         ::testing::Values(61, 62, 63));

// -------------------------------------------------- crypto properties

class HashChunkingProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(HashChunkingProperty, StreamingEqualsOneShotForAnyChunkSize) {
  Rng rng(99);
  const Bytes data = rng.bytes(4096 + 77);
  const auto expected = crypto::sha256(data);
  crypto::Sha256 ctx;
  for (std::size_t off = 0; off < data.size(); off += GetParam()) {
    const std::size_t len = std::min(GetParam(), data.size() - off);
    ctx.update(data.data() + off, len);
  }
  EXPECT_EQ(ctx.finish(), expected);
}

INSTANTIATE_TEST_SUITE_P(Chunks, HashChunkingProperty,
                         ::testing::Values(1, 3, 7, 32, 63, 64, 65, 127, 128,
                                           1000, 4096));

class SignVerifyProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SignVerifyProperty, EverySignatureVerifiesAndTamperedOnesDoNot) {
  Rng rng(GetParam());
  const auto key = crypto::derive_keypair(rng.bytes(32), "prop");
  for (int i = 0; i < 5; ++i) {
    const Bytes msg = rng.bytes(1 + rng.uniform(256));
    const auto sig = crypto::sign(key, msg);
    EXPECT_TRUE(crypto::verify(key.pub, msg, sig));
    Bytes tampered = msg;
    tampered[rng.uniform(tampered.size())] ^= 0x01;
    EXPECT_FALSE(crypto::verify(key.pub, tampered, sig));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SignVerifyProperty,
                         ::testing::Values(1, 2, 3, 4));

// -------------------------------------------------- P4 inode property

class RenameMeasurementProperty
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RenameMeasurementProperty, StockImaNeverRemeasuresAfterRename) {
  // For any file measured once, any chain of same-filesystem renames
  // followed by re-execution adds no log entry (the P4 guarantee the
  // attacks rely on); any *content change* always re-measures.
  Rng rng(GetParam());
  crypto::CertificateAuthority ca("mfg", to_bytes("seed"));
  SimClock clock;
  oskernel::Machine machine(oskernel::MachineConfig{}, ca, &clock);
  auto& fs = machine.fs();

  std::string path = "/home/f0";
  ASSERT_TRUE(fs.create_file(path, rng.bytes(8), true).ok());
  ASSERT_TRUE(machine.exec(path).ok());
  const std::size_t measured = machine.ima().log().size();

  for (int i = 1; i <= 10; ++i) {
    const std::string dst = "/usr/dir" + std::to_string(rng.uniform(4)) +
                            "/f" + std::to_string(i);
    ASSERT_TRUE(fs.rename(path, dst).ok());
    path = dst;
    ASSERT_TRUE(machine.exec(path).ok());
    EXPECT_EQ(machine.ima().log().size(), measured) << "rename " << i;
  }

  ASSERT_TRUE(fs.write_file(path, rng.bytes(8)).ok());
  ASSERT_TRUE(machine.exec(path).ok());
  EXPECT_EQ(machine.ima().log().size(), measured + 1)
      << "content change must always re-measure";
}

INSTANTIATE_TEST_SUITE_P(Seeds, RenameMeasurementProperty,
                         ::testing::Values(17, 29, 41));

}  // namespace
}  // namespace cia
