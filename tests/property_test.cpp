// Property-based suites (parameterized over seeds / sizes) asserting the
// library's core invariants:
//
//   * IMA/TPM: replaying the measurement list always reproduces PCR 10,
//     no matter what the machine did;
//   * VFS: inode identity is unique per filesystem and stable across
//     in-filesystem renames, under arbitrary operation sequences;
//   * policy: serialize/parse round-trips arbitrary policies; dedup never
//     removes the ability to match the newest hash;
//   * wire: arbitrary truncations of valid messages fail cleanly;
//   * crypto: streaming hashing equals one-shot for any chunking; every
//     signed message verifies and no tampered one does.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/hex.hpp"
#include "common/rng.hpp"
#include "crypto/schnorr.hpp"
#include "keylime/messages.hpp"
#include "keylime/runtime_policy.hpp"
#include "oskernel/machine.hpp"

namespace cia {
namespace {

// ----------------------------------------------- IMA replay invariant

class ImaReplayProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ImaReplayProperty, RandomActivityAlwaysReplaysToPcr10) {
  Rng rng(GetParam());
  crypto::CertificateAuthority ca("mfg", to_bytes("seed"));
  SimClock clock;
  oskernel::MachineConfig config;
  config.seed = GetParam();
  oskernel::Machine machine(config, ca, &clock);
  auto& fs = machine.fs();

  std::vector<std::string> files;
  for (int step = 0; step < 300; ++step) {
    const auto action = rng.uniform(8);
    if (action <= 2 || files.empty()) {
      // Create an executable somewhere (sometimes on excluded mounts).
      static const char* kDirs[] = {"/usr/bin", "/tmp", "/dev/shm",
                                    "/opt", "/proc", "/home"};
      const std::string path = std::string(kDirs[rng.uniform(6)]) + "/f" +
                               std::to_string(step);
      if (fs.create_file(path, rng.bytes(16), true).ok()) {
        files.push_back(path);
      }
    } else if (action == 3) {
      (void)machine.exec(files[rng.uniform(files.size())]);
    } else if (action == 4) {
      machine.mmap_library(files[rng.uniform(files.size())]);
    } else if (action == 5) {
      (void)fs.write_file(files[rng.uniform(files.size())], rng.bytes(16));
    } else if (action == 6) {
      const std::size_t idx = rng.uniform(files.size());
      const std::string dst = "/moved/f" + std::to_string(step);
      if (fs.rename(files[idx], dst).ok()) files[idx] = dst;
    } else {
      (void)machine.load_kernel_module(files[rng.uniform(files.size())]);
    }

    if (step % 50 == 0) {
      ASSERT_EQ(ima::replay_log(machine.ima().log()),
                machine.tpm().pcr_value(tpm::kImaPcr))
          << "seed " << GetParam() << " step " << step;
    }
  }
  EXPECT_EQ(ima::replay_log(machine.ima().log()),
            machine.tpm().pcr_value(tpm::kImaPcr));

  // The invariant must survive a reboot as well.
  machine.reboot();
  for (const auto& f : files) (void)machine.exec(f);
  EXPECT_EQ(ima::replay_log(machine.ima().log()),
            machine.tpm().pcr_value(tpm::kImaPcr));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ImaReplayProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ----------------------------------------------------- VFS invariants

class VfsProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VfsProperty, InodesUniquePerFilesystemUnderRandomOps) {
  Rng rng(GetParam());
  vfs::Vfs fs;
  ASSERT_TRUE(fs.mount("/tmp2", vfs::FsType::kTmpfs).ok());
  ASSERT_TRUE(fs.mount("/data", vfs::FsType::kExt4).ok());

  std::vector<std::string> files;
  for (int step = 0; step < 400; ++step) {
    const auto action = rng.uniform(5);
    if (action <= 1 || files.empty()) {
      static const char* kDirs[] = {"/usr", "/tmp2", "/data", "/home"};
      const std::string path = std::string(kDirs[rng.uniform(4)]) + "/f" +
                               std::to_string(step);
      if (fs.create_file(path, rng.bytes(8), rng.chance(0.5)).ok()) {
        files.push_back(path);
      }
    } else if (action == 2) {
      const std::size_t idx = rng.uniform(files.size());
      static const char* kDirs[] = {"/usr", "/tmp2", "/data"};
      const std::string dst = std::string(kDirs[rng.uniform(3)]) + "/m" +
                              std::to_string(step);
      if (fs.rename(files[idx], dst).ok()) files[idx] = dst;
    } else if (action == 3) {
      const std::size_t idx = rng.uniform(files.size());
      if (fs.unlink(files[idx]).ok()) {
        files.erase(files.begin() + static_cast<std::ptrdiff_t>(idx));
      }
    } else {
      (void)fs.write_file(files[rng.uniform(files.size())], rng.bytes(8));
    }
  }

  // Invariants: listing agrees with our bookkeeping, and no two files on
  // one filesystem share an inode.
  EXPECT_EQ(fs.list_files("/").size(), files.size());
  std::set<vfs::FileIdentity> identities;
  for (const auto& path : files) {
    const auto st = fs.stat(path);
    ASSERT_TRUE(st.ok()) << path;
    EXPECT_TRUE(identities.insert(st.value().id).second)
        << "duplicate identity for " << path;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VfsProperty,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

// ------------------------------------------------- policy round trips

class PolicyProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PolicyProperty, SerializeParseRoundTripsRandomPolicies) {
  Rng rng(GetParam());
  keylime::RuntimePolicy policy;
  const std::size_t paths = 50 + rng.uniform(200);
  for (std::size_t i = 0; i < paths; ++i) {
    const std::string path = "/usr/" + rng.ident(1 + rng.uniform(3)) + "/" +
                             rng.ident(8);
    const std::size_t hashes = 1 + rng.uniform(3);
    for (std::size_t j = 0; j < hashes; ++j) {
      policy.allow(path, to_hex(rng.bytes(32)));
    }
  }
  policy.exclude("/tmp/*");
  policy.exclude("/" + rng.ident(4) + "/*");

  auto parsed = keylime::RuntimePolicy::parse(policy.serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().entry_count(), policy.entry_count());
  EXPECT_EQ(parsed.value().path_count(), policy.path_count());
  EXPECT_EQ(parsed.value().serialize(), policy.serialize());
}

TEST_P(PolicyProperty, DedupKeepsExactlyTheNewestHash) {
  Rng rng(GetParam());
  keylime::RuntimePolicy policy;
  std::map<std::string, std::string> newest;
  for (int i = 0; i < 300; ++i) {
    const std::string path = "/bin/" + rng.ident(2);
    const std::string hash = to_hex(rng.bytes(32));
    policy.allow(path, hash);
    newest[path] = hash;
  }
  policy.dedup();
  EXPECT_EQ(policy.entry_count(), newest.size());
  for (const auto& [path, hash] : newest) {
    EXPECT_EQ(policy.check(path, hash), keylime::PolicyMatch::kAllowed);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PolicyProperty,
                         ::testing::Values(101, 202, 303, 404));

// ---------------------------------------------------- wire truncation

class WireTruncationProperty : public ::testing::TestWithParam<int> {};

TEST_P(WireTruncationProperty, TruncatedQuoteResponsesFailCleanly) {
  crypto::CertificateAuthority ca("mfg", to_bytes("seed"));
  tpm::Tpm2 tpm("dev", to_bytes("seed"), ca);
  keylime::QuoteResponse resp;
  resp.quote = tpm.quote(to_bytes("nonce"), {tpm::kImaPcr});
  for (int i = 0; i < 5; ++i) {
    ima::LogEntry e;
    e.path = "/usr/bin/tool" + std::to_string(i);
    e.file_hash = crypto::sha256(std::to_string(i));
    e.template_hash = crypto::sha256("t" + std::to_string(i));
    resp.entries.push_back(e);
  }
  resp.total_log_length = 5;
  resp.boot_count = 1;
  const Bytes encoded = resp.encode();

  // Truncate at a fraction of the length (parameter = percent).
  const std::size_t cut = encoded.size() * static_cast<std::size_t>(GetParam()) / 100;
  const Bytes truncated(encoded.begin(),
                        encoded.begin() + static_cast<std::ptrdiff_t>(cut));
  const auto decoded = keylime::QuoteResponse::decode(truncated);
  if (cut == encoded.size()) {
    EXPECT_TRUE(decoded.ok());
  } else {
    EXPECT_FALSE(decoded.ok()) << "cut at " << cut << "/" << encoded.size();
  }
}

INSTANTIATE_TEST_SUITE_P(Cuts, WireTruncationProperty,
                         ::testing::Values(0, 5, 17, 33, 50, 66, 80, 95, 99,
                                           100));

TEST(WireFuzzTest, RandomBitFlipsNeverCrashDecoders) {
  Rng rng(7);
  crypto::CertificateAuthority ca("mfg", to_bytes("seed"));
  tpm::Tpm2 tpm("dev", to_bytes("seed"), ca);
  keylime::QuoteResponse resp;
  resp.quote = tpm.quote(to_bytes("nonce"), {tpm::kImaPcr});
  resp.total_log_length = 0;
  resp.boot_count = 1;
  const Bytes encoded = resp.encode();
  for (int trial = 0; trial < 500; ++trial) {
    Bytes corrupted = encoded;
    const std::size_t flips = 1 + rng.uniform(8);
    for (std::size_t i = 0; i < flips; ++i) {
      corrupted[rng.uniform(corrupted.size())] ^=
          static_cast<std::uint8_t>(1u << rng.uniform(8));
    }
    // Must not crash; may or may not decode, but if it decodes the quote
    // signature check must reject any semantic change.
    const auto decoded = keylime::QuoteResponse::decode(corrupted);
    if (decoded.ok() && !(corrupted == encoded)) {
      // Either the mutation hit a redundant byte or verification fails.
      (void)decoded.value().quote.verify(tpm.ak_public());
    }
  }
  SUCCEED();
}

// -------------------------------------------------- crypto properties

class HashChunkingProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(HashChunkingProperty, StreamingEqualsOneShotForAnyChunkSize) {
  Rng rng(99);
  const Bytes data = rng.bytes(4096 + 77);
  const auto expected = crypto::sha256(data);
  crypto::Sha256 ctx;
  for (std::size_t off = 0; off < data.size(); off += GetParam()) {
    const std::size_t len = std::min(GetParam(), data.size() - off);
    ctx.update(data.data() + off, len);
  }
  EXPECT_EQ(ctx.finish(), expected);
}

INSTANTIATE_TEST_SUITE_P(Chunks, HashChunkingProperty,
                         ::testing::Values(1, 3, 7, 32, 63, 64, 65, 127, 128,
                                           1000, 4096));

class SignVerifyProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SignVerifyProperty, EverySignatureVerifiesAndTamperedOnesDoNot) {
  Rng rng(GetParam());
  const auto key = crypto::derive_keypair(rng.bytes(32), "prop");
  for (int i = 0; i < 5; ++i) {
    const Bytes msg = rng.bytes(1 + rng.uniform(256));
    const auto sig = crypto::sign(key, msg);
    EXPECT_TRUE(crypto::verify(key.pub, msg, sig));
    Bytes tampered = msg;
    tampered[rng.uniform(tampered.size())] ^= 0x01;
    EXPECT_FALSE(crypto::verify(key.pub, tampered, sig));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SignVerifyProperty,
                         ::testing::Values(1, 2, 3, 4));

// -------------------------------------------------- P4 inode property

class RenameMeasurementProperty
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RenameMeasurementProperty, StockImaNeverRemeasuresAfterRename) {
  // For any file measured once, any chain of same-filesystem renames
  // followed by re-execution adds no log entry (the P4 guarantee the
  // attacks rely on); any *content change* always re-measures.
  Rng rng(GetParam());
  crypto::CertificateAuthority ca("mfg", to_bytes("seed"));
  SimClock clock;
  oskernel::Machine machine(oskernel::MachineConfig{}, ca, &clock);
  auto& fs = machine.fs();

  std::string path = "/home/f0";
  ASSERT_TRUE(fs.create_file(path, rng.bytes(8), true).ok());
  ASSERT_TRUE(machine.exec(path).ok());
  const std::size_t measured = machine.ima().log().size();

  for (int i = 1; i <= 10; ++i) {
    const std::string dst = "/usr/dir" + std::to_string(rng.uniform(4)) +
                            "/f" + std::to_string(i);
    ASSERT_TRUE(fs.rename(path, dst).ok());
    path = dst;
    ASSERT_TRUE(machine.exec(path).ok());
    EXPECT_EQ(machine.ima().log().size(), measured) << "rename " << i;
  }

  ASSERT_TRUE(fs.write_file(path, rng.bytes(8)).ok());
  ASSERT_TRUE(machine.exec(path).ok());
  EXPECT_EQ(machine.ima().log().size(), measured + 1)
      << "content change must always re-measure";
}

INSTANTIATE_TEST_SUITE_P(Seeds, RenameMeasurementProperty,
                         ::testing::Values(17, 29, 41));

}  // namespace
}  // namespace cia
