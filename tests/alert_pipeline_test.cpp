// Alert-pipeline battery: dedup/cooldown semantics, incident lifecycle,
// snapshot codec, storm collapse, partition invariance of the incident
// stream, and flap-aware revocation fan-out.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "experiments/pool_experiment.hpp"
#include "keylime/alert_pipeline/pipeline.hpp"
#include "keylime/notifier.hpp"
#include "telemetry/metrics.hpp"

namespace cia {
namespace {

using experiments::PoolFleet;
using experiments::PoolFleetOptions;
using experiments::run_alert_storm;
using experiments::StormOptions;
using experiments::StormReport;
using keylime::Alert;
using keylime::AlertType;
using namespace keylime::alert_pipeline;

Alert make_alert(SimTime time, const std::string& agent, AlertType type,
                 const std::string& path = "", const std::string& hash = "",
                 std::uint64_t revision = 0) {
  Alert alert;
  alert.time = time;
  alert.agent_id = agent;
  alert.type = type;
  alert.path = path;
  alert.observed_hash_hex = hash;
  alert.policy_revision = revision;
  return alert;
}

/// Feed one alert through a ShardStage into the pipeline, as the pool's
/// round boundary would.
void feed(AlertPipeline& pipeline, const Alert& alert) {
  ShardStage stage;
  stage.ingest(alert);
  pipeline.fold(stage.take());
}

// ------------------------------------------------------------ keys

TEST(AlertPipelineTest, ClassificationAndKeying) {
  EXPECT_EQ(classify(AlertType::kHashMismatch), Severity::kIntegrityViolation);
  EXPECT_EQ(classify(AlertType::kNotInPolicy), Severity::kPolicySkew);
  EXPECT_EQ(classify(AlertType::kCommsFailure), Severity::kTransport);
  EXPECT_EQ(classify(AlertType::kQuoteInvalid), Severity::kIntegrityViolation);

  // Policy alerts key on (digest, path, revision) — the same digest under
  // two revisions is two root causes; different agents are the same one.
  const Alert a = make_alert(10, "agent-a", AlertType::kHashMismatch,
                             "/usr/bin/zsh", "aa", 3);
  const Alert b = make_alert(20, "agent-b", AlertType::kHashMismatch,
                             "/usr/bin/zsh", "aa", 3);
  const Alert c = make_alert(10, "agent-a", AlertType::kHashMismatch,
                             "/usr/bin/zsh", "aa", 4);
  EXPECT_FALSE(key_of(a) < key_of(b));
  EXPECT_FALSE(key_of(b) < key_of(a));
  EXPECT_TRUE(key_of(a) < key_of(c) || key_of(c) < key_of(a));

  // Transport alerts are fleet-scoped: one key regardless of agent.
  const Alert d = make_alert(10, "agent-a", AlertType::kCommsFailure);
  const Alert e = make_alert(99, "agent-z", AlertType::kCommsFailure);
  EXPECT_FALSE(key_of(d) < key_of(e));
  EXPECT_FALSE(key_of(e) < key_of(d));
}

// ----------------------------------------------------------- dedup

TEST(AlertPipelineTest, CooldownSuppressesAndCarriesTheTally) {
  AlertPipeline::Config config;
  config.cooldown = 100;
  config.quiet_close = 10000;
  config.staleness_after = 0;
  AlertPipeline pipeline(config);

  // Round 1: three agents trip the same digest — one emission, the
  // other two suppressed onto the incident immediately.
  ShardStage stage;
  stage.ingest(make_alert(10, "agent-b", AlertType::kHashMismatch, "/b", "dd", 1));
  stage.ingest(make_alert(10, "agent-a", AlertType::kHashMismatch, "/b", "dd", 1));
  stage.ingest(make_alert(10, "agent-c", AlertType::kHashMismatch, "/b", "dd", 1));
  pipeline.fold(stage.take());
  pipeline.end_round(10);
  ASSERT_EQ(pipeline.emitted().size(), 1u);
  EXPECT_EQ(pipeline.emitted()[0].suppressed, 2u);
  // The representative is the earliest alert under the total order —
  // agent-a at the same timestamp.
  EXPECT_EQ(pipeline.emitted()[0].representative.agent_id, "agent-a");

  // Round 2 (inside the cooldown): swallowed entirely, carried.
  feed(pipeline, make_alert(60, "agent-d", AlertType::kHashMismatch, "/b", "dd", 1));
  pipeline.end_round(60);
  ASSERT_EQ(pipeline.emitted().size(), 1u);

  // Round 3 (cooldown expired): emits, carrying the swallowed round.
  feed(pipeline, make_alert(120, "agent-e", AlertType::kHashMismatch, "/b", "dd", 1));
  pipeline.end_round(120);
  ASSERT_EQ(pipeline.emitted().size(), 2u);
  EXPECT_EQ(pipeline.emitted()[1].suppressed, 1u);

  // One incident the whole way: exact distinct-agent tracking.
  const IncidentSnapshot snapshot = pipeline.snapshot();
  ASSERT_EQ(snapshot.incidents.size(), 1u);
  const Incident& incident = snapshot.incidents[0];
  EXPECT_EQ(incident.alerts, 5u);
  EXPECT_EQ(incident.suppressed, 3u);
  EXPECT_EQ(incident.affected_agents, 5u);
  EXPECT_EQ(incident.first_seen, 10);
  EXPECT_EQ(incident.last_seen, 120);
  EXPECT_TRUE(incident.open);
  EXPECT_EQ(pipeline.stats().raw, 5u);
  EXPECT_EQ(pipeline.stats().emitted, 2u);
  EXPECT_EQ(pipeline.stats().suppressed, 3u);
}

TEST(AlertPipelineTest, DistinctKeysDoNotShareCooldown) {
  AlertPipeline::Config config;
  config.cooldown = 1000;
  AlertPipeline pipeline(config);
  feed(pipeline, make_alert(10, "a", AlertType::kHashMismatch, "/x", "11", 1));
  feed(pipeline, make_alert(10, "a", AlertType::kHashMismatch, "/y", "22", 1));
  feed(pipeline, make_alert(10, "a", AlertType::kCommsFailure));
  pipeline.end_round(10);
  EXPECT_EQ(pipeline.emitted().size(), 3u);
  EXPECT_EQ(pipeline.snapshot().incidents.size(), 3u);
}

// -------------------------------------------------------- lifecycle

TEST(AlertPipelineTest, QuietIncidentClosesAndRecurrenceOpensFresh) {
  telemetry::MetricsRegistry metrics;
  AlertPipeline::Config config;
  config.cooldown = 50;
  config.quiet_close = 200;
  AlertPipeline pipeline(config);
  pipeline.use_telemetry(&metrics);

  feed(pipeline, make_alert(10, "a", AlertType::kNotInPolicy, "/evil", "ee", 2));
  pipeline.end_round(10);
  ASSERT_EQ(pipeline.open_incidents(), 1u);

  // Quiet rounds tick by; at 10+200 the incident closes.
  pipeline.end_round(100);
  EXPECT_EQ(pipeline.open_incidents(), 1u);
  pipeline.end_round(210);
  EXPECT_EQ(pipeline.open_incidents(), 0u);
  ASSERT_EQ(pipeline.snapshot().incidents.size(), 1u);
  EXPECT_FALSE(pipeline.snapshot().incidents[0].open);
  EXPECT_EQ(pipeline.snapshot().incidents[0].closed_at, 210);

  // A recurrence is a NEW incident (fresh id) and emits immediately —
  // closing dropped the cooldown state.
  feed(pipeline, make_alert(300, "b", AlertType::kNotInPolicy, "/evil", "ee", 2));
  pipeline.end_round(300);
  EXPECT_EQ(pipeline.emitted().size(), 2u);
  ASSERT_EQ(pipeline.snapshot().incidents.size(), 2u);
  EXPECT_EQ(pipeline.snapshot().incidents[1].id, 2u);
  EXPECT_TRUE(pipeline.snapshot().incidents[1].open);

  // Close metrics made it out: one closed policy_skew incident with a
  // width-1 histogram sample.
  const std::string prom = [&] {
    std::string text;
    for (const auto& point : metrics.snapshot().points) {
      text += point.name + "{";
      for (const auto& [k, v] : point.labels) text += k + "=" + v + ",";
      text += "}\n";
    }
    return text;
  }();
  EXPECT_NE(prom.find("cia_incident_closed_total{severity=policy_skew,}"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("cia_incident_width_agents"), std::string::npos);
  EXPECT_NE(prom.find("cia_incident_time_to_close_seconds"),
            std::string::npos);
}

TEST(AlertPipelineTest, StalenessObservationsAggregateIntoOneIncident) {
  AlertPipeline::Config config;
  config.cooldown = 50;
  config.staleness_after = 3;
  AlertPipeline pipeline(config);
  pipeline.observe_staleness("agent-1", 3, 100);
  pipeline.observe_staleness("agent-2", 5, 100);
  pipeline.end_round(100);
  const IncidentSnapshot snapshot = pipeline.snapshot();
  ASSERT_EQ(snapshot.incidents.size(), 1u);
  const Incident& incident = snapshot.incidents[0];
  EXPECT_EQ(incident.severity, Severity::kStaleness);
  EXPECT_EQ(incident.affected_agents, 2u);
  ASSERT_EQ(pipeline.emitted().size(), 1u);
  // The representative names the first stale agent and its lag.
  EXPECT_EQ(pipeline.emitted()[0].representative.agent_id, "agent-1");
  EXPECT_NE(pipeline.emitted()[0].representative.detail.find(
                "rounds_since_success=3"),
            std::string::npos);
}

// ------------------------------------------------------------ codec

TEST(AlertPipelineTest, SnapshotJsonRoundTripsToAFixedPoint) {
  AlertPipeline::Config config;
  config.cooldown = 50;
  config.quiet_close = 100;
  AlertPipeline pipeline(config);
  feed(pipeline, make_alert(10, "a", AlertType::kHashMismatch, "/x", "11", 7));
  feed(pipeline, make_alert(10, "b", AlertType::kCommsFailure));
  pipeline.observe_staleness("c", 9, 10);
  pipeline.end_round(10);
  pipeline.end_round(500);  // close everything

  const std::string stream = pipeline.snapshot_json().dump();
  auto doc = json::parse(stream);
  ASSERT_TRUE(doc.ok());
  auto decoded = snapshot_from_json(doc.value());
  ASSERT_TRUE(decoded.ok()) << decoded.error().to_string();
  ASSERT_EQ(decoded.value().incidents.size(), 3u);
  EXPECT_EQ(to_json(decoded.value()).dump(), stream);
}

TEST(AlertPipelineTest, SnapshotDecoderRejectsCorruptDocuments) {
  const char* kBad[] = {
      R"({"incidents":[]})",  // missing version
      R"({"version":2,"incidents":[]})",
      R"({"version":1,"incidents":{}})",
      // suppressed >= alerts
      R"({"version":1,"incidents":[{"id":1,"severity":"transport","reason":"comms_failure","subject":"","policy_revision":0,"first_seen":1,"last_seen":2,"alerts":3,"suppressed":3,"affected_agents":1,"sample_agents":["a"],"open":true,"closed_at":0}]})",
      // open incident with closed_at set
      R"({"version":1,"incidents":[{"id":1,"severity":"transport","reason":"comms_failure","subject":"","policy_revision":0,"first_seen":1,"last_seen":2,"alerts":3,"suppressed":1,"affected_agents":1,"sample_agents":["a"],"open":true,"closed_at":9}]})",
      // unsorted sample agents
      R"({"version":1,"incidents":[{"id":1,"severity":"staleness","reason":"staleness","subject":"","policy_revision":0,"first_seen":1,"last_seen":2,"alerts":3,"suppressed":1,"affected_agents":2,"sample_agents":["b","a"],"open":true,"closed_at":0}]})",
      // ids not strictly increasing
      R"({"version":1,"incidents":[{"id":2,"severity":"transport","reason":"comms_failure","subject":"","policy_revision":0,"first_seen":1,"last_seen":2,"alerts":3,"suppressed":1,"affected_agents":1,"sample_agents":["a"],"open":true,"closed_at":0},{"id":2,"severity":"transport","reason":"comms_failure","subject":"","policy_revision":0,"first_seen":1,"last_seen":2,"alerts":3,"suppressed":1,"affected_agents":1,"sample_agents":["a"],"open":true,"closed_at":0}]})",
      // fractional numeric field
      R"({"version":1,"incidents":[{"id":1.5,"severity":"transport","reason":"comms_failure","subject":"","policy_revision":0,"first_seen":1,"last_seen":2,"alerts":3,"suppressed":1,"affected_agents":1,"sample_agents":["a"],"open":true,"closed_at":0}]})",
  };
  for (const char* text : kBad) {
    auto doc = json::parse(text);
    ASSERT_TRUE(doc.ok()) << text;
    EXPECT_FALSE(snapshot_from_json(doc.value()).ok()) << text;
  }
}

// ------------------------------------------------------------ storm

TEST(AlertPipelineTest, StormCollapsesIntoRootCauseIncidents) {
  StormOptions options;
  options.agents = 160;
  options.shards = 4;
  options.storm_rounds = 6;
  options.bad_paths = 2;
  options.drop_rate = 0.02;
  const StormReport report = run_alert_storm(options);
  ASSERT_TRUE(report.status.ok());
  // 2 corrupted digests + 1 staleness episode + 1 transport episode.
  EXPECT_EQ(report.root_causes, 4u);
  EXPECT_EQ(report.incidents_opened, report.root_causes);
  // Every agent tripped over every corrupted digest.
  EXPECT_EQ(report.max_affected, options.agents);
  EXPECT_EQ(report.opened_by_severity.at("integrity_violation"), 2u);
  EXPECT_EQ(report.opened_by_severity.at("staleness"), 1u);
  EXPECT_EQ(report.opened_by_severity.at("transport"), 1u);
  // Dedup accounting is lossless and actually bites.
  EXPECT_EQ(report.emitted_alerts + report.suppressed, report.raw_alerts);
  EXPECT_LT(report.emitted_alerts, report.raw_alerts / 10);

  // Cross-check the widest incidents against the raw verifier alerts:
  // the per-digest distinct-agent count must match exactly.
  auto doc = json::parse(report.incident_stream);
  ASSERT_TRUE(doc.ok());
  auto snapshot = snapshot_from_json(doc.value());
  ASSERT_TRUE(snapshot.ok());
  std::size_t integrity_incidents = 0;
  for (const Incident& incident : snapshot.value().incidents) {
    if (incident.severity != Severity::kIntegrityViolation) continue;
    ++integrity_incidents;
    EXPECT_EQ(incident.affected_agents, options.agents) << incident.subject;
    // agents x 1 alert for this digest, exactly one emitted.
    EXPECT_EQ(incident.alerts, options.agents) << incident.subject;
    EXPECT_EQ(incident.suppressed, incident.alerts - 1) << incident.subject;
    EXPECT_EQ(incident.sample_agents.size(), 5u);
  }
  EXPECT_EQ(integrity_incidents, 2u);
}

TEST(AlertPipelineTest, IncidentStreamIsPartitionInvariant) {
  StormOptions base;
  base.agents = 80;
  base.shards = 1;
  base.storm_rounds = 5;
  base.bad_paths = 1;
  base.drop_rate = 0.03;
  const StormReport one = run_alert_storm(base);
  ASSERT_TRUE(one.status.ok());
  ASSERT_FALSE(one.incident_stream.empty());

  for (std::size_t shards : {2u, 5u}) {
    StormOptions repartitioned = base;
    repartitioned.shards = shards;
    const StormReport other = run_alert_storm(repartitioned);
    ASSERT_TRUE(other.status.ok());
    EXPECT_EQ(other.incident_stream, one.incident_stream)
        << shards << " shards";
  }

  // A mid-storm resize (2 -> 5 shards before round 2) migrates live
  // agent state while incidents are open; the stream must not notice.
  StormOptions resized = base;
  resized.shards = 2;
  resized.resize_round = 2;
  resized.resize_shards = 5;
  const StormReport migrated = run_alert_storm(resized);
  ASSERT_TRUE(migrated.status.ok());
  EXPECT_EQ(migrated.incident_stream, one.incident_stream);
}

// -------------------------------------------------------- revocations

TEST(AlertPipelineTest, FlappingAgentFiresOneRevocationPerTransition) {
  PoolFleetOptions options;
  options.agents = 12;
  options.shards = 2;
  options.seed = 7;
  options.verifier.continue_on_failure = true;
  PoolFleet fleet(options);
  ASSERT_TRUE(fleet.init_status().ok());
  ASSERT_TRUE(fleet.push_fleet_policy().ok());

  keylime::CollectingNotifier collector;
  fleet.pool().add_notifier(&collector);

  AlertPipeline::Config config;
  config.cooldown = 1;  // every round may emit; suppression still counts
  config.staleness_after = 2;
  AlertPipeline pipeline(config);
  fleet.pool().use_alert_pipeline(&pipeline);

  const std::string& victim = fleet.agent_ids()[0];

  // Trip 1: unknown binary -> FAILED -> exactly one revocation.
  fleet.exec_unknown(0);
  fleet.pool().run_round();
  ASSERT_EQ(fleet.pool().state(victim), keylime::AgentState::kFailed);
  ASSERT_EQ(collector.events().size(), 1u);
  EXPECT_EQ(collector.events()[0].agent_id, victim);

  // Staying failed across rounds fires nothing further (transition
  // semantics), even though staleness observations keep flowing.
  for (std::uint64_t round = 1; round <= 3; ++round) {
    fleet.run_workload_round(round);
    fleet.pool().run_round();
  }
  EXPECT_EQ(collector.events().size(), 1u);

  // Recover, then trip again with a second unknown binary: a second
  // transition, a second revocation.
  ASSERT_TRUE(fleet.pool().resolve_failure(victim).ok());
  fleet.pool().run_round();
  ASSERT_EQ(fleet.pool().state(victim), keylime::AgentState::kAttesting);
  oskernel::Machine& machine = *fleet.machine_for(victim);
  const std::string path = "/usr/local/bin/dropper-flap";
  ASSERT_TRUE(machine.fs().create_file(path, to_bytes("elf:flap"), true).ok());
  (void)machine.exec(path);
  fleet.pool().run_round();
  ASSERT_EQ(fleet.pool().state(victim), keylime::AgentState::kFailed);
  ASSERT_EQ(collector.events().size(), 2u);
  EXPECT_EQ(collector.events()[1].agent_id, victim);

  // The flap's duplicate pressure is visible, not silent: the staleness
  // incident carries a suppressed tally from the failed stretch.
  const IncidentSnapshot snapshot = pipeline.snapshot();
  const Incident* staleness = nullptr;
  for (const Incident& incident : snapshot.incidents) {
    if (incident.severity == Severity::kStaleness) staleness = &incident;
  }
  ASSERT_NE(staleness, nullptr);
  EXPECT_EQ(staleness->affected_agents, 1u);
  EXPECT_GE(staleness->alerts, 2u);
}

}  // namespace
}  // namespace cia
