// Unit tests for the common utilities.
#include <gtest/gtest.h>

#include "common/hex.hpp"
#include "common/result.hpp"
#include "common/rng.hpp"
#include "common/sim_clock.hpp"
#include "common/stats.hpp"
#include "common/strutil.hpp"

namespace cia {
namespace {

// ------------------------------------------------------------------- hex

TEST(HexTest, RoundTrip) {
  const Bytes data{0x00, 0x01, 0xab, 0xff};
  auto decoded = from_hex(to_hex(data));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), data);
}

TEST(HexTest, Empty) {
  EXPECT_EQ(to_hex({}), "");
  auto decoded = from_hex("");
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded.value().empty());
}

TEST(HexTest, RejectsOddLength) {
  EXPECT_FALSE(from_hex("abc").ok());
}

TEST(HexTest, RejectsNonHex) {
  EXPECT_FALSE(from_hex("zz").ok());
}

TEST(HexTest, UppercaseAccepted) {
  auto decoded = from_hex("ABCD");
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(to_hex(decoded.value()), "abcd");
}

// ---------------------------------------------------------------- result

TEST(ResultTest, ValueAndError) {
  Result<int> ok_result(42);
  EXPECT_TRUE(ok_result.ok());
  EXPECT_EQ(ok_result.value(), 42);

  Result<int> err_result(err(Errc::kNotFound, "missing"));
  EXPECT_FALSE(err_result.ok());
  EXPECT_EQ(err_result.error().code, Errc::kNotFound);
  EXPECT_EQ(err_result.value_or(-1), -1);
}

TEST(ResultTest, StatusDefaultsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  Status failed = err(Errc::kInternal, "boom");
  EXPECT_FALSE(failed.ok());
  EXPECT_EQ(failed.error().to_string(), "internal: boom");
}

// ------------------------------------------------------------------- rng

TEST(RngTest, DeterministicForSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) any_diff |= (a.next_u64() != b.next_u64());
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, UniformBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.uniform(10), 10u);
    const auto v = rng.uniform_range(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, NormalMomentsApproximatelyCorrect) {
  Rng rng(11);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(rng.normal(10.0, 2.0));
  const Summary s = summarize(xs);
  EXPECT_NEAR(s.mean, 10.0, 0.1);
  EXPECT_NEAR(s.stddev, 2.0, 0.1);
}

TEST(RngTest, PoissonMean) {
  Rng rng(13);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.poisson(4.0);
  EXPECT_NEAR(sum / n, 4.0, 0.15);
}

TEST(RngTest, ForkIsIndependentAndStable) {
  Rng a(5);
  Rng fork1 = a.fork("label");
  Rng b(5);
  Rng fork2 = b.fork("label");
  EXPECT_EQ(fork1.next_u64(), fork2.next_u64());
}

// ----------------------------------------------------------------- clock

TEST(SimClockTest, AdvanceAndDay) {
  SimClock clock;
  EXPECT_EQ(clock.now(), 0);
  clock.advance(kDay + kHour);
  EXPECT_EQ(clock.day(), 1);
  EXPECT_EQ(clock.time_of_day(), kHour);
}

TEST(SimClockTest, AdvanceToNeverGoesBack) {
  SimClock clock(100);
  clock.advance_to(50);
  EXPECT_EQ(clock.now(), 100);
  clock.advance_to(150);
  EXPECT_EQ(clock.now(), 150);
}

TEST(SimClockTest, Formatting) {
  SimClock clock(kDay * 2 + kHour * 3 + kMinute * 4 + 5);
  EXPECT_EQ(clock.to_string(), "day 2 03:04:05");
  EXPECT_EQ(format_duration(125), "2:05");
  EXPECT_EQ(format_duration(kHour + 62), "1:01:02");
}

// --------------------------------------------------------------- strutil

TEST(StrutilTest, SplitJoin) {
  EXPECT_EQ(split("a/b/c", '/'), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("/a", '/'), (std::vector<std::string>{"", "a"}));
  EXPECT_EQ(join({"x", "y"}, ", "), "x, y");
}

TEST(StrutilTest, PrefixSuffix) {
  EXPECT_TRUE(starts_with("/usr/bin/ls", "/usr"));
  EXPECT_FALSE(starts_with("/usr", "/usr/bin"));
  EXPECT_TRUE(ends_with("module.ko", ".ko"));
  EXPECT_FALSE(ends_with("ko", "module.ko"));
}

TEST(StrutilTest, GlobMatch) {
  EXPECT_TRUE(glob_match("/tmp/*", "/tmp/payload"));
  EXPECT_TRUE(glob_match("/tmp/*", "/tmp/a/b/c"));  // '*' crosses '/'
  EXPECT_FALSE(glob_match("/tmp/*", "/usr/bin/ls"));
  EXPECT_TRUE(glob_match("*.ko", "rootkit.ko"));
  EXPECT_TRUE(glob_match("/snap/core?0/*/bin/ls", "/snap/core20/1891/bin/ls"));
  EXPECT_FALSE(glob_match("/snap/core?0/bin", "/snap/core220/bin"));
  EXPECT_TRUE(glob_match("*", ""));
  EXPECT_TRUE(glob_match("**", "anything/at/all"));
}

TEST(StrutilTest, Format) {
  EXPECT_EQ(strformat("%s=%d", "x", 42), "x=42");
}

// ----------------------------------------------------------------- stats

TEST(StatsTest, SummaryBasics) {
  const Summary s = summarize({1, 2, 3, 4, 5});
  EXPECT_EQ(s.n, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_NEAR(s.stddev, 1.5811, 1e-3);
}

TEST(StatsTest, EmptyInput) {
  const Summary s = summarize({});
  EXPECT_EQ(s.n, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(StatsTest, EvenMedian) {
  EXPECT_DOUBLE_EQ(summarize({1, 2, 3, 4}).median, 2.5);
}

TEST(StatsTest, Percentile) {
  std::vector<double> xs{10, 20, 30, 40, 50};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 30.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 50.0);
}

TEST(StatsTest, AsciiSeriesContainsValues) {
  const std::string chart = ascii_series({1.0, 2.0}, "day", "minutes");
  EXPECT_NE(chart.find("1.00"), std::string::npos);
  EXPECT_NE(chart.find("2.00"), std::string::npos);
  EXPECT_NE(chart.find("minutes"), std::string::npos);
}

}  // namespace
}  // namespace cia
