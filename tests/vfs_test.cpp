// Unit tests for the virtual filesystem: mounts, inode identity across
// rename, namespace truncation, and tree operations.
#include <gtest/gtest.h>

#include "vfs/vfs.hpp"

namespace cia::vfs {
namespace {

TEST(VfsTest, RootExists) {
  Vfs fs;
  EXPECT_TRUE(fs.is_dir("/"));
  EXPECT_EQ(fs.mount_of("/anything").type, FsType::kExt4);
}

TEST(VfsTest, CreateAndReadFile) {
  Vfs fs;
  ASSERT_TRUE(fs.create_file("/usr/bin/ls", to_bytes("elf:ls"), true).ok());
  EXPECT_TRUE(fs.is_file("/usr/bin/ls"));
  EXPECT_TRUE(fs.is_dir("/usr/bin"));
  EXPECT_TRUE(fs.is_dir("/usr"));
  auto content = fs.read_file("/usr/bin/ls");
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(to_string(content.value()), "elf:ls");
}

TEST(VfsTest, CreateRejectsDuplicates) {
  Vfs fs;
  ASSERT_TRUE(fs.create_file("/a", {}, false).ok());
  EXPECT_FALSE(fs.create_file("/a", {}, false).ok());
}

TEST(VfsTest, PathValidation) {
  Vfs fs;
  EXPECT_FALSE(fs.create_file("relative/path", {}, false).ok());
  EXPECT_FALSE(fs.create_file("/trailing/", {}, false).ok());
  EXPECT_FALSE(fs.create_file("/double//slash", {}, false).ok());
}

TEST(VfsTest, WritePreservesInode) {
  Vfs fs;
  ASSERT_TRUE(fs.create_file("/etc/conf", to_bytes("v1"), false).ok());
  const auto before = fs.stat("/etc/conf").value();
  ASSERT_TRUE(fs.write_file("/etc/conf", to_bytes("v2")).ok());
  const auto after = fs.stat("/etc/conf").value();
  EXPECT_EQ(before.id, after.id);
  EXPECT_NE(before.content_hash, after.content_hash);
}

TEST(VfsTest, ChmodExec) {
  Vfs fs;
  ASSERT_TRUE(fs.create_file("/payload", to_bytes("x"), false).ok());
  EXPECT_FALSE(fs.stat("/payload").value().executable);
  ASSERT_TRUE(fs.chmod_exec("/payload", true).ok());
  EXPECT_TRUE(fs.stat("/payload").value().executable);
}

TEST(VfsTest, RenameWithinFilesystemKeepsInode) {
  Vfs fs;
  ASSERT_TRUE(fs.create_file("/home/user/tool", to_bytes("bin"), true).ok());
  const auto before = fs.stat("/home/user/tool").value();
  ASSERT_TRUE(fs.rename("/home/user/tool", "/usr/bin/tool").ok());
  const auto after = fs.stat("/usr/bin/tool").value();
  EXPECT_EQ(before.id, after.id) << "rename on one fs must keep the inode";
  EXPECT_FALSE(fs.exists("/home/user/tool"));
}

TEST(VfsTest, RenameAcrossFilesystemsChangesInode) {
  Vfs fs;
  ASSERT_TRUE(fs.mount("/tmp", FsType::kTmpfs).ok());
  ASSERT_TRUE(fs.create_file("/tmp/tool", to_bytes("bin"), true).ok());
  const auto before = fs.stat("/tmp/tool").value();
  ASSERT_TRUE(fs.rename("/tmp/tool", "/usr/bin/tool").ok());
  const auto after = fs.stat("/usr/bin/tool").value();
  EXPECT_NE(before.id, after.id) << "cross-fs move must get a fresh inode";
  EXPECT_EQ(before.content_hash, after.content_hash);
}

TEST(VfsTest, RenameRejectsExistingDestination) {
  Vfs fs;
  ASSERT_TRUE(fs.create_file("/a", {}, false).ok());
  ASSERT_TRUE(fs.create_file("/b", {}, false).ok());
  EXPECT_FALSE(fs.rename("/a", "/b").ok());
}

TEST(VfsTest, MountLongestPrefixWins) {
  Vfs fs;
  ASSERT_TRUE(fs.mount("/sys", FsType::kSysfs).ok());
  ASSERT_TRUE(fs.mount("/sys/kernel/debug", FsType::kDebugfs).ok());
  EXPECT_EQ(fs.mount_of("/sys/devices").type, FsType::kSysfs);
  EXPECT_EQ(fs.mount_of("/sys/kernel/debug/tracing").type, FsType::kDebugfs);
  EXPECT_EQ(fs.mount_of("/system").type, FsType::kExt4)
      << "prefix match must respect path component boundaries";
}

TEST(VfsTest, MountRejectsDuplicates) {
  Vfs fs;
  ASSERT_TRUE(fs.mount("/tmp", FsType::kTmpfs).ok());
  EXPECT_FALSE(fs.mount("/tmp", FsType::kTmpfs).ok());
}

TEST(VfsTest, UnmountRemovesFiles) {
  Vfs fs;
  ASSERT_TRUE(fs.mount("/tmp", FsType::kTmpfs).ok());
  ASSERT_TRUE(fs.create_file("/tmp/x", {}, false).ok());
  ASSERT_TRUE(fs.unmount("/tmp").ok());
  EXPECT_FALSE(fs.exists("/tmp/x"));
}

TEST(VfsTest, DistinctFilesystemsHaveDistinctUuids) {
  Vfs fs;
  ASSERT_TRUE(fs.mount("/tmp", FsType::kTmpfs).ok());
  ASSERT_TRUE(fs.mount("/run", FsType::kTmpfs).ok());
  ASSERT_TRUE(fs.create_file("/tmp/a", {}, false).ok());
  ASSERT_TRUE(fs.create_file("/run/a", {}, false).ok());
  EXPECT_NE(fs.stat("/tmp/a").value().id.fs_uuid,
            fs.stat("/run/a").value().id.fs_uuid);
}

TEST(VfsTest, NamespaceTruncatedMountRewritesImaPath) {
  Vfs fs;
  ASSERT_TRUE(
      fs.mount("/snap/core20/1891", FsType::kSquashfs, /*truncated=*/true).ok());
  ASSERT_TRUE(fs.create_file("/snap/core20/1891/usr/bin/python3",
                             to_bytes("elf"), true).ok());
  EXPECT_EQ(fs.ima_visible_path("/snap/core20/1891/usr/bin/python3"),
            "/usr/bin/python3");
  EXPECT_EQ(fs.ima_visible_path("/usr/bin/python3"), "/usr/bin/python3");
}

TEST(VfsTest, ListFilesFiltersByDirectoryBoundary) {
  Vfs fs;
  ASSERT_TRUE(fs.create_file("/usr/bin/ls", {}, true).ok());
  ASSERT_TRUE(fs.create_file("/usr/bin/cat", {}, true).ok());
  ASSERT_TRUE(fs.create_file("/usr/binextra/x", {}, true).ok());
  const auto files = fs.list_files("/usr/bin");
  EXPECT_EQ(files.size(), 2u);
}

TEST(VfsTest, RemoveTree) {
  Vfs fs;
  ASSERT_TRUE(fs.create_file("/opt/app/bin/a", {}, true).ok());
  ASSERT_TRUE(fs.create_file("/opt/app/lib/b", {}, false).ok());
  ASSERT_TRUE(fs.remove_tree("/opt/app").ok());
  EXPECT_FALSE(fs.exists("/opt/app/bin/a"));
  EXPECT_FALSE(fs.exists("/opt/app"));
  EXPECT_TRUE(fs.is_dir("/opt"));
}

TEST(VfsTest, HardLinkSharesInodeAndContent) {
  Vfs fs;
  ASSERT_TRUE(fs.create_file("/usr/bin/tool", to_bytes("elf:v1"), true).ok());
  ASSERT_TRUE(fs.link("/usr/bin/tool", "/usr/local/bin/tool2").ok());
  const auto a = fs.stat("/usr/bin/tool").value();
  const auto b = fs.stat("/usr/local/bin/tool2").value();
  EXPECT_EQ(a.id, b.id) << "hard links share the inode";
  EXPECT_EQ(fs.link_count("/usr/bin/tool").value(), 2u);

  // Writes through one name are visible through the other.
  ASSERT_TRUE(fs.write_file("/usr/local/bin/tool2", to_bytes("elf:v2")).ok());
  EXPECT_EQ(to_string(fs.read_file("/usr/bin/tool").value()), "elf:v2");
}

TEST(VfsTest, HardLinkAcrossFilesystemsFails) {
  Vfs fs;
  ASSERT_TRUE(fs.mount("/tmp2", FsType::kTmpfs).ok());
  ASSERT_TRUE(fs.create_file("/tmp2/f", to_bytes("x"), true).ok());
  EXPECT_FALSE(fs.link("/tmp2/f", "/usr/bin/f").ok()) << "EXDEV";
}

TEST(VfsTest, UnlinkOneNameKeepsTheOther) {
  Vfs fs;
  ASSERT_TRUE(fs.create_file("/a", to_bytes("x"), true).ok());
  ASSERT_TRUE(fs.link("/a", "/b").ok());
  ASSERT_TRUE(fs.unlink("/a").ok());
  EXPECT_TRUE(fs.is_file("/b"));
  EXPECT_EQ(fs.link_count("/b").value(), 1u);
}

TEST(VfsTest, HardLinkSharesXattr) {
  Vfs fs;
  ASSERT_TRUE(fs.create_file("/a", to_bytes("x"), true).ok());
  ASSERT_TRUE(fs.link("/a", "/b").ok());
  ASSERT_TRUE(fs.set_ima_xattr("/a", Bytes{1, 2, 3}).ok());
  EXPECT_EQ(fs.ima_xattr("/b").value(), (Bytes{1, 2, 3}));
}

TEST(VfsTest, CrossFsRenameDetachesFromLinks) {
  Vfs fs;
  ASSERT_TRUE(fs.mount("/data", FsType::kExt4).ok());
  ASSERT_TRUE(fs.create_file("/a", to_bytes("x"), true).ok());
  ASSERT_TRUE(fs.link("/a", "/b").ok());
  ASSERT_TRUE(fs.rename("/a", "/data/a").ok());
  ASSERT_TRUE(fs.write_file("/data/a", to_bytes("changed")).ok());
  EXPECT_EQ(to_string(fs.read_file("/b").value()), "x")
      << "the copy must not alias the link left behind";
}

TEST(VfsTest, StatContentHashMatchesSha256) {
  Vfs fs;
  ASSERT_TRUE(fs.create_file("/f", to_bytes("hello"), false).ok());
  EXPECT_EQ(fs.stat("/f").value().content_hash, crypto::sha256(std::string("hello")));
}

TEST(VfsTest, DeclaredSizeIndependentOfContent) {
  Vfs fs;
  ASSERT_TRUE(fs.create_file("/big", to_bytes("tiny"), true,
                             /*size=*/5 * 1024 * 1024).ok());
  EXPECT_EQ(fs.stat("/big").value().size, 5u * 1024 * 1024);
}

TEST(VfsTest, FileCount) {
  Vfs fs;
  EXPECT_EQ(fs.file_count(), 0u);
  ASSERT_TRUE(fs.create_file("/a", {}, false).ok());
  ASSERT_TRUE(fs.create_file("/b/c", {}, false).ok());
  EXPECT_EQ(fs.file_count(), 2u);
}

TEST(VfsTest, FsMagicValuesMatchLinux) {
  EXPECT_EQ(fs_magic(FsType::kExt4), 0xEF53u);
  EXPECT_EQ(fs_magic(FsType::kTmpfs), 0x01021994u);
  EXPECT_EQ(fs_magic(FsType::kProcfs), 0x9fa0u);
  EXPECT_EQ(fs_magic(FsType::kSquashfs), 0x73717368u);
}

}  // namespace
}  // namespace cia::vfs
