// Differential coverage for the appraisal hot path.
//
// PR 5 rebuilt the verifier's appraisal pipeline for throughput: fused
// single-pass verify+fold over zero-copy decoded entries, PolicyIndex
// probes, and a policy-revision-keyed verdict cache. None of that may
// move a verdict or an alert by a single byte. These tests hold the fast
// path against the pre-existing slow path two ways:
//
//   * verdict parity, property-style: RuntimePolicy::check (the linear
//     reference), PolicyIndex::check, and the cache-layered probe must
//     agree on testkit-generated policies and adversarial entries —
//     including the SNAP/container truncated-path shapes gen_path emits —
//     with shrink-on-failure minimizing any offending path;
//   * alert parity, end-to-end: two verifiers attest the SAME agent over
//     the same workload (P1-style /tmp implants, modified binaries,
//     unknown files, reboot re-measurement), one on the indexed+cached
//     fast path and one on the plain linear path; their rounds and full
//     alert streams must render byte-identically, under both P2 failure
//     semantics.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/hex.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "crypto/sha256.hpp"
#include "ima/ima.hpp"
#include "keylime/agent.hpp"
#include "keylime/appraisal_cache.hpp"
#include "keylime/policy_index.hpp"
#include "keylime/registrar.hpp"
#include "keylime/runtime_policy.hpp"
#include "keylime/verifier.hpp"
#include "netsim/network.hpp"
#include "oskernel/machine.hpp"
#include "testkit/generators.hpp"
#include "testkit/shrink.hpp"

namespace cia::testkit {
namespace {

using keylime::AppraisalCache;
using keylime::PolicyIndex;
using keylime::PolicyMatch;
using keylime::RuntimePolicy;

// The cache-layered fast-path probe, exactly as Verifier::appraise runs
// it on indexed appraisals.
PolicyMatch cached_check(AppraisalCache& cache, const PolicyIndex& index,
                         const std::string& path,
                         const crypto::Digest& file_hash) {
  const crypto::Digest key = crypto::template_hash_of(file_hash, path);
  if (const auto cached = cache.lookup(key, index.uid())) return *cached;
  const PolicyMatch match = index.check(path, file_hash);
  cache.insert(key, index.uid(), match);
  return match;
}

// One (path, hash) probe across all three implementations; on
// divergence, shrink the path to a minimal reproducer before failing.
void expect_parity(const RuntimePolicy& policy, const PolicyIndex& index,
                   AppraisalCache& cache, const std::string& path,
                   const crypto::Digest& hash, std::uint64_t seed) {
  const PolicyMatch slow = policy.check(path, hash);
  const PolicyMatch indexed = index.check(path, hash);
  const PolicyMatch cached = cached_check(cache, index, path, hash);
  // A second probe must now be served from the cache, with the verdict
  // unchanged.
  const PolicyMatch cached_again = cached_check(cache, index, path, hash);
  if (slow == indexed && slow == cached && slow == cached_again) return;

  const auto diverges = [&](const std::string& p) {
    if (p.empty()) return false;
    const PolicyMatch s = policy.check(p, hash);
    return index.check(p, hash) != s ||
           cached_check(cache, index, p, hash) != s;
  };
  const std::string minimized = shrink_text(path, diverges);
  ADD_FAILURE() << "verdict divergence (seed " << seed << ") on path \""
                << path << "\" (minimized: \"" << minimized << "\"): slow="
                << keylime::policy_match_name(slow)
                << " indexed=" << keylime::policy_match_name(indexed)
                << " cached=" << keylime::policy_match_name(cached);
}

TEST(HotpathVerdictParity, GeneratedPoliciesAndAdversarialPaths) {
  for (std::uint64_t seed : {1u, 7u, 42u, 1337u}) {
    Rng rng(seed);
    const RuntimePolicy policy = gen_policy(rng, 48);
    const auto index = PolicyIndex::build(policy);
    AppraisalCache cache;

    // Paths the policy knows: probe with an acceptable hash, a wrong
    // hash, and a random digest.
    policy.for_each_path([&](const std::string& path,
                             const std::vector<std::string>& hashes) {
      crypto::Digest good{};
      if (!hashes.empty() &&
          hex_decode(hashes[0], good.data(), good.size())) {
        expect_parity(policy, *index, cache, path, good, seed);
      }
      expect_parity(policy, *index, cache, path,
                    crypto::sha256("wrong:" + path), seed);
    });

    // Adversarial generated paths (SNAP/container truncation, embedded
    // spaces, deep nesting, raw high bytes) the policy has never seen —
    // these exercise the exclude-glob fallback scan.
    for (int i = 0; i < 400; ++i) {
      const std::string path = gen_path(rng);
      expect_parity(policy, *index, cache, path,
                    crypto::sha256("h:" + path), seed);
    }
  }
}

TEST(HotpathVerdictParity, DistilledLogPoliciesWithImplants) {
  // The P1-P5 shape: a policy distilled from a golden generated log,
  // stock /tmp exclusion, then implants at generated adversarial paths.
  for (std::uint64_t seed : {3u, 11u, 99u}) {
    Rng rng(seed);
    const auto golden = gen_log(rng, 64);
    RuntimePolicy policy;
    for (const auto& e : golden) policy.allow(e.path, e.file_hash);
    policy.exclude("/tmp/*");
    policy.exclude("*/__pycache__/*");
    const auto index = PolicyIndex::build(policy);
    AppraisalCache cache;

    // Every golden entry must appraise kAllowed identically...
    for (const auto& e : golden) {
      expect_parity(policy, *index, cache, e.path, e.file_hash, seed);
    }
    // ...and re-appraising the whole log (a reboot replay) must serve
    // from the cache without moving a verdict.
    const std::uint64_t hits_before = cache.stats().hits;
    for (const auto& e : golden) {
      expect_parity(policy, *index, cache, e.path, e.file_hash, seed);
    }
    EXPECT_GT(cache.stats().hits, hits_before);

    // Implants: measured entries the policy never saw, tampered hashes
    // for paths it did see.
    for (int i = 0; i < 200; ++i) {
      const std::string path = gen_path(rng);
      expect_parity(policy, *index, cache, path,
                    crypto::sha256("implant:" + path), seed);
    }
    for (const auto& e : golden) {
      expect_parity(policy, *index, cache, e.path,
                    crypto::sha256("tampered:" + e.path), seed);
    }
  }
}

TEST(HotpathVerdictParity, PolicySwapInvalidatesCachedVerdicts) {
  // Copy-on-write swap contract: a rebuilt index has a fresh uid, so a
  // verdict cached under the old revision can never be served under the
  // new one — even for the same template hash.
  RuntimePolicy v1;
  v1.allow("/usr/bin/tool", crypto::sha256("v1"));
  RuntimePolicy v2 = v1;
  v2.allow("/usr/bin/tool", crypto::sha256("v2"));

  const auto index1 = PolicyIndex::build(v1, 1);
  const auto index2 = PolicyIndex::build(v2, 2);
  ASSERT_NE(index1->uid(), index2->uid());

  AppraisalCache cache;
  const crypto::Digest probe = crypto::sha256("v2");
  // Under v1 the hash is a mismatch; the verdict is cached.
  EXPECT_EQ(cached_check(cache, *index1, "/usr/bin/tool", probe),
            PolicyMatch::kHashMismatch);
  // Under v2 the same (path, hash) is allowed — the v1 slot must miss.
  EXPECT_EQ(cached_check(cache, *index2, "/usr/bin/tool", probe),
            PolicyMatch::kAllowed);
  // And the verdicts stay revision-correct on repeat lookups.
  EXPECT_EQ(cached_check(cache, *index1, "/usr/bin/tool", probe),
            PolicyMatch::kHashMismatch);
  EXPECT_EQ(cached_check(cache, *index2, "/usr/bin/tool", probe),
            PolicyMatch::kAllowed);
}

// ----------------------------------------------------------- end-to-end

std::string render_alerts(const std::vector<keylime::Alert>& alerts) {
  std::string out;
  for (const auto& a : alerts) {
    out += std::to_string(a.time) + "|" + a.agent_id + "|" +
           keylime::alert_type_name(a.type) + "|" + a.path + "|" +
           a.observed_hash_hex + "|" + a.detail + "|" +
           std::to_string(a.log_index) + "\n";
  }
  return out;
}

// Two verifiers — fast (indexed policy + verdict cache) and slow (plain
// linear RuntimePolicy) — attesting one real agent over one workload.
struct DiffRig {
  explicit DiffRig(bool continue_on_failure)
      : ca("mfg", to_bytes("diff-seed")),
        network(&clock, 1),
        registrar(&network, &clock, 2),
        fast(&network, &clock, 3,
             keylime::VerifierConfig{continue_on_failure}),
        slow(&network, &clock, 4,
             keylime::VerifierConfig{continue_on_failure}) {
    registrar.trust_manufacturer(ca.public_key());
    oskernel::MachineConfig cfg;
    cfg.hostname = "diff-node";
    cfg.seed = 7;
    machine = std::make_unique<oskernel::Machine>(cfg, ca, &clock);
    agent = std::make_unique<keylime::Agent>(machine.get(), &network);
    EXPECT_TRUE(agent->register_with(keylime::Registrar::address()).ok());
    EXPECT_TRUE(fast.add_agent(cfg.hostname, agent->address()).ok());
    EXPECT_TRUE(slow.add_agent(cfg.hostname, agent->address()).ok());
    fast.use_appraisal_cache(&cache);
  }

  void install_policy(const RuntimePolicy& policy) {
    ASSERT_TRUE(slow.set_policy("diff-node", policy).ok());
    ASSERT_TRUE(
        fast.set_indexed_policy("diff-node", policy, PolicyIndex::build(policy))
            .ok());
  }

  // Attest on both stacks (no clock movement in between, so alert
  // timestamps line up) and require identical round results.
  void attest_and_compare() {
    auto fast_round = fast.attest_once("diff-node");
    auto slow_round = slow.attest_once("diff-node");
    ASSERT_EQ(fast_round.ok(), slow_round.ok());
    if (!fast_round.ok()) return;
    const auto& f = fast_round.value();
    const auto& s = slow_round.value();
    EXPECT_EQ(f.new_entries, s.new_entries);
    EXPECT_EQ(f.evaluated, s.evaluated);
    EXPECT_EQ(f.state, s.state);
    EXPECT_EQ(f.reboot_detected, s.reboot_detected);
    EXPECT_EQ(render_alerts(f.alerts), render_alerts(s.alerts));
    EXPECT_EQ(render_alerts(fast.alerts()), render_alerts(slow.alerts()));
    EXPECT_EQ(fast.pending_entries("diff-node"),
              slow.pending_entries("diff-node"));
  }

  SimClock clock;
  crypto::CertificateAuthority ca;
  netsim::SimNetwork network;
  keylime::Registrar registrar;
  keylime::Verifier fast;
  keylime::Verifier slow;
  keylime::AppraisalCache cache;
  std::unique_ptr<oskernel::Machine> machine;
  std::unique_ptr<keylime::Agent> agent;
};

// Returns the fast verifier's rendered alert stream so callers can also
// pin it byte-for-byte across SHA-256 backends.
void run_workload_parity(bool continue_on_failure,
                         std::string* rendered_out = nullptr) {
  DiffRig rig(continue_on_failure);
  auto& machine = *rig.machine;

  // Golden workload: binaries the policy will bless.
  std::vector<std::string> golden = {"/usr/bin/svc-a", "/usr/bin/svc-b",
                                     "/usr/lib/helper.so",
                                     "/opt/app/bin/daemon"};
  for (const auto& p : golden) {
    ASSERT_TRUE(machine.fs().create_file(p, to_bytes("elf:" + p), true).ok());
    ASSERT_TRUE(machine.exec(p).ok());
  }

  // Distill the policy from the measured log (boot aggregate entries are
  // skipped by appraisal) and keep the stock /tmp exclusion.
  RuntimePolicy policy;
  for (const auto& e : machine.ima().log()) {
    if (e.path == "boot_aggregate") continue;
    policy.allow(e.path, e.file_hash);
  }
  policy.exclude("/tmp/*");
  rig.install_policy(policy);

  // Phase 1: clean log — no alerts on either stack.
  rig.attest_and_compare();
  EXPECT_TRUE(rig.fast.alerts().empty());

  // Phase 2: a /tmp implant (P1: rides the exclude), an unknown binary
  // (not-in-policy), and a modified golden binary (hash mismatch).
  ASSERT_TRUE(
      machine.fs().create_file("/tmp/implant", to_bytes("payload"), true).ok());
  ASSERT_TRUE(machine.exec("/tmp/implant").ok());
  ASSERT_TRUE(
      machine.fs().create_file("/usr/bin/rogue", to_bytes("rogue"), true).ok());
  ASSERT_TRUE(machine.exec("/usr/bin/rogue").ok());
  ASSERT_TRUE(
      machine.fs().write_file("/usr/bin/svc-a", to_bytes("trojaned")).ok());
  ASSERT_TRUE(machine.exec("/usr/bin/svc-a").ok());
  rig.attest_and_compare();
  EXPECT_FALSE(rig.slow.alerts().empty());

  // Phase 3: recover (both stacks resolve identically) and reboot — the
  // whole list re-measures, the fast path re-appraises through its cache.
  if (!continue_on_failure) {
    ASSERT_TRUE(rig.fast.resolve_failure("diff-node").ok());
    ASSERT_TRUE(rig.slow.resolve_failure("diff-node").ok());
  }
  machine.reboot();
  for (const auto& p : golden) ASSERT_TRUE(machine.exec(p).ok());
  rig.attest_and_compare();  // reboot detection round
  rig.attest_and_compare();  // re-appraisal (stock: halts at svc-a again)
  if (!continue_on_failure) {
    // Resolve once more so the backlog behind the trojaned binary —
    // entries appraised (and cached) before the reboot — gets drained.
    ASSERT_TRUE(rig.fast.resolve_failure("diff-node").ok());
    ASSERT_TRUE(rig.slow.resolve_failure("diff-node").ok());
  }
  rig.attest_and_compare();  // steady state / backlog drain
  EXPECT_GT(rig.cache.stats().hits, 0u)
      << "reboot re-appraisal should hit the verdict cache";
  if (rendered_out) *rendered_out = render_alerts(rig.fast.alerts());
}

TEST(HotpathEndToEnd, AlertStreamsIdenticalUnderStockSemantics) {
  run_workload_parity(/*continue_on_failure=*/false);
}

TEST(HotpathEndToEnd, AlertStreamsIdenticalUnderContinueOnFailure) {
  run_workload_parity(/*continue_on_failure=*/true);
}

// ------------------------------------------------- multi-lane SHA-256

// Pin a SHA-256 backend for a scope, restoring auto-dispatch after.
class BackendGuard {
 public:
  explicit BackendGuard(crypto::Sha256Backend b) {
    ok_ = crypto::force_backend(b);
  }
  ~BackendGuard() { crypto::force_backend(crypto::Sha256Backend::kAuto); }
  bool ok() const { return ok_; }

 private:
  bool ok_ = false;
};

struct NamedBackend {
  crypto::Sha256Backend backend;
  const char* name;
};

std::vector<NamedBackend> supported_backends() {
  std::vector<NamedBackend> out = {{crypto::Sha256Backend::kScalar, "scalar"}};
  const NamedBackend hw[] = {{crypto::Sha256Backend::kShaNi, "shani"},
                             {crypto::Sha256Backend::kShaNi2, "shani2"},
                             {crypto::Sha256Backend::kAvx2, "avx2"}};
  for (const NamedBackend& b : hw) {
    if (crypto::sha256_backend_supported(b.backend)) out.push_back(b);
  }
  return out;
}

TEST(HotpathEndToEnd, AlertStreamsIdenticalOnEveryBackend) {
  // The full workload parity run, once per supported backend (always
  // including forced scalar), and the rendered alert stream of each run
  // pinned byte-for-byte against the first: the lane kernels may change
  // how template hashes are computed, never what any round concludes.
  std::string reference;
  const char* reference_backend = nullptr;
  for (const NamedBackend& b : supported_backends()) {
    SCOPED_TRACE(b.name);
    BackendGuard guard(b.backend);
    ASSERT_TRUE(guard.ok());
    std::string rendered;
    run_workload_parity(/*continue_on_failure=*/false, &rendered);
    if (::testing::Test::HasFatalFailure()) return;
    if (reference_backend == nullptr) {
      reference = rendered;
      reference_backend = b.name;
      EXPECT_FALSE(reference.empty());
    } else {
      EXPECT_EQ(rendered, reference)
          << "alert stream diverges between backends " << reference_backend
          << " and " << b.name;
    }
  }
}

TEST(HotpathEndToEnd, LaneBoundaryLogSizes) {
  // Fragment sizes straddling every grouping boundary of the batched
  // verify+fold: the 2-wide and 8-wide lane widths (±1), the ragged
  // partial buckets, and the 128-entry pipeline block (±1). Each round
  // ships exactly one batch as the new log fragment; fast and slow
  // verifiers must agree round by round, and two rogue rounds place an
  // unknown binary exactly at a lane boundary (index 8 of 17) and at the
  // pipeline-block boundary (index 128 of 129) to pin first-bad-entry
  // ordering through the batched compare.
  DiffRig rig(/*continue_on_failure=*/false);
  auto& machine = *rig.machine;

  const std::vector<std::size_t> sizes = {1, 2, 3, 7, 8, 9, 16, 17, 127, 128};
  struct RogueRound {
    std::size_t size;
    std::size_t rogue_at;
  };
  const std::vector<RogueRound> rogue_rounds = {{17, 8}, {129, 128}};

  // Plan every file up front so the policy can bless the golden ones
  // before any round runs (the measured file hash is the hash of the
  // file's content). Rogue files are planned too — just never blessed.
  RuntimePolicy policy;
  int file_no = 0;
  std::vector<std::vector<std::string>> batches;
  for (const std::size_t k : sizes) {
    std::vector<std::string> batch;
    for (std::size_t i = 0; i < k; ++i) {
      const std::string path = "/opt/lane/bin-" + std::to_string(file_no++);
      policy.allow(path, crypto::sha256("elf:" + path));
      batch.push_back(path);
    }
    batches.push_back(std::move(batch));
  }
  std::vector<std::vector<std::string>> rogue_batches;
  for (const RogueRound& rr : rogue_rounds) {
    std::vector<std::string> batch;
    for (std::size_t i = 0; i < rr.size; ++i) {
      const bool rogue = i == rr.rogue_at;
      const std::string path =
          std::string(rogue ? "/opt/lane/rogue-" : "/opt/lane/bin-") +
          std::to_string(file_no++);
      if (!rogue) policy.allow(path, crypto::sha256("elf:" + path));
      batch.push_back(path);
    }
    rogue_batches.push_back(std::move(batch));
  }
  // Bless whatever the boot itself measured (init units and friends) so
  // the only judged entries are the ones this test plants deliberately.
  for (const auto& e : machine.ima().log()) {
    if (e.path == "boot_aggregate") continue;
    policy.allow(e.path, e.file_hash);
  }
  policy.exclude("/tmp/*");
  rig.install_policy(policy);

  // Round 0 consumes the boot-time measurements cleanly.
  rig.attest_and_compare();
  EXPECT_TRUE(rig.fast.alerts().empty());

  for (const auto& batch : batches) {
    for (const std::string& p : batch) {
      ASSERT_TRUE(
          machine.fs().create_file(p, to_bytes("elf:" + p), true).ok());
      ASSERT_TRUE(machine.exec(p).ok());
    }
    rig.attest_and_compare();
  }

  for (std::size_t r = 0; r < rogue_batches.size(); ++r) {
    const auto& batch = rogue_batches[r];
    for (const std::string& p : batch) {
      ASSERT_TRUE(
          machine.fs().create_file(p, to_bytes("elf:" + p), true).ok());
      ASSERT_TRUE(machine.exec(p).ok());
    }
    const std::size_t alerts_before = rig.fast.alerts().size();
    rig.attest_and_compare();
    // Exactly one new alert, and it names the planted rogue — proof the
    // batched compare still judges entries first-bad-first.
    ASSERT_EQ(rig.fast.alerts().size(), alerts_before + 1);
    const keylime::Alert& a = rig.fast.alerts().back();
    EXPECT_EQ(a.type, keylime::AlertType::kNotInPolicy);
    EXPECT_EQ(a.path, batch[rogue_rounds[r].rogue_at]);
    ASSERT_TRUE(rig.fast.resolve_failure("diff-node").ok());
    ASSERT_TRUE(rig.slow.resolve_failure("diff-node").ok());
    rig.attest_and_compare();  // backlog drain after the halt
    EXPECT_EQ(rig.fast.pending_entries("diff-node"), 0u);
  }
}

}  // namespace
}  // namespace cia::testkit
