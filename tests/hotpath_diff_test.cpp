// Differential coverage for the appraisal hot path.
//
// PR 5 rebuilt the verifier's appraisal pipeline for throughput: fused
// single-pass verify+fold over zero-copy decoded entries, PolicyIndex
// probes, and a policy-revision-keyed verdict cache. None of that may
// move a verdict or an alert by a single byte. These tests hold the fast
// path against the pre-existing slow path two ways:
//
//   * verdict parity, property-style: RuntimePolicy::check (the linear
//     reference), PolicyIndex::check, and the cache-layered probe must
//     agree on testkit-generated policies and adversarial entries —
//     including the SNAP/container truncated-path shapes gen_path emits —
//     with shrink-on-failure minimizing any offending path;
//   * alert parity, end-to-end: two verifiers attest the SAME agent over
//     the same workload (P1-style /tmp implants, modified binaries,
//     unknown files, reboot re-measurement), one on the indexed+cached
//     fast path and one on the plain linear path; their rounds and full
//     alert streams must render byte-identically, under both P2 failure
//     semantics.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/hex.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "crypto/sha256.hpp"
#include "ima/ima.hpp"
#include "keylime/agent.hpp"
#include "keylime/appraisal_cache.hpp"
#include "keylime/policy_index.hpp"
#include "keylime/registrar.hpp"
#include "keylime/runtime_policy.hpp"
#include "keylime/verifier.hpp"
#include "netsim/network.hpp"
#include "oskernel/machine.hpp"
#include "testkit/generators.hpp"
#include "testkit/shrink.hpp"

namespace cia::testkit {
namespace {

using keylime::AppraisalCache;
using keylime::PolicyIndex;
using keylime::PolicyMatch;
using keylime::RuntimePolicy;

// The cache-layered fast-path probe, exactly as Verifier::appraise runs
// it on indexed appraisals.
PolicyMatch cached_check(AppraisalCache& cache, const PolicyIndex& index,
                         const std::string& path,
                         const crypto::Digest& file_hash) {
  const crypto::Digest key = crypto::template_hash_of(file_hash, path);
  if (const auto cached = cache.lookup(key, index.uid())) return *cached;
  const PolicyMatch match = index.check(path, file_hash);
  cache.insert(key, index.uid(), match);
  return match;
}

// One (path, hash) probe across all three implementations; on
// divergence, shrink the path to a minimal reproducer before failing.
void expect_parity(const RuntimePolicy& policy, const PolicyIndex& index,
                   AppraisalCache& cache, const std::string& path,
                   const crypto::Digest& hash, std::uint64_t seed) {
  const PolicyMatch slow = policy.check(path, hash);
  const PolicyMatch indexed = index.check(path, hash);
  const PolicyMatch cached = cached_check(cache, index, path, hash);
  // A second probe must now be served from the cache, with the verdict
  // unchanged.
  const PolicyMatch cached_again = cached_check(cache, index, path, hash);
  if (slow == indexed && slow == cached && slow == cached_again) return;

  const auto diverges = [&](const std::string& p) {
    if (p.empty()) return false;
    const PolicyMatch s = policy.check(p, hash);
    return index.check(p, hash) != s ||
           cached_check(cache, index, p, hash) != s;
  };
  const std::string minimized = shrink_text(path, diverges);
  ADD_FAILURE() << "verdict divergence (seed " << seed << ") on path \""
                << path << "\" (minimized: \"" << minimized << "\"): slow="
                << keylime::policy_match_name(slow)
                << " indexed=" << keylime::policy_match_name(indexed)
                << " cached=" << keylime::policy_match_name(cached);
}

TEST(HotpathVerdictParity, GeneratedPoliciesAndAdversarialPaths) {
  for (std::uint64_t seed : {1u, 7u, 42u, 1337u}) {
    Rng rng(seed);
    const RuntimePolicy policy = gen_policy(rng, 48);
    const auto index = PolicyIndex::build(policy);
    AppraisalCache cache;

    // Paths the policy knows: probe with an acceptable hash, a wrong
    // hash, and a random digest.
    policy.for_each_path([&](const std::string& path,
                             const std::vector<std::string>& hashes) {
      crypto::Digest good{};
      if (!hashes.empty() &&
          hex_decode(hashes[0], good.data(), good.size())) {
        expect_parity(policy, *index, cache, path, good, seed);
      }
      expect_parity(policy, *index, cache, path,
                    crypto::sha256("wrong:" + path), seed);
    });

    // Adversarial generated paths (SNAP/container truncation, embedded
    // spaces, deep nesting, raw high bytes) the policy has never seen —
    // these exercise the exclude-glob fallback scan.
    for (int i = 0; i < 400; ++i) {
      const std::string path = gen_path(rng);
      expect_parity(policy, *index, cache, path,
                    crypto::sha256("h:" + path), seed);
    }
  }
}

TEST(HotpathVerdictParity, DistilledLogPoliciesWithImplants) {
  // The P1-P5 shape: a policy distilled from a golden generated log,
  // stock /tmp exclusion, then implants at generated adversarial paths.
  for (std::uint64_t seed : {3u, 11u, 99u}) {
    Rng rng(seed);
    const auto golden = gen_log(rng, 64);
    RuntimePolicy policy;
    for (const auto& e : golden) policy.allow(e.path, e.file_hash);
    policy.exclude("/tmp/*");
    policy.exclude("*/__pycache__/*");
    const auto index = PolicyIndex::build(policy);
    AppraisalCache cache;

    // Every golden entry must appraise kAllowed identically...
    for (const auto& e : golden) {
      expect_parity(policy, *index, cache, e.path, e.file_hash, seed);
    }
    // ...and re-appraising the whole log (a reboot replay) must serve
    // from the cache without moving a verdict.
    const std::uint64_t hits_before = cache.stats().hits;
    for (const auto& e : golden) {
      expect_parity(policy, *index, cache, e.path, e.file_hash, seed);
    }
    EXPECT_GT(cache.stats().hits, hits_before);

    // Implants: measured entries the policy never saw, tampered hashes
    // for paths it did see.
    for (int i = 0; i < 200; ++i) {
      const std::string path = gen_path(rng);
      expect_parity(policy, *index, cache, path,
                    crypto::sha256("implant:" + path), seed);
    }
    for (const auto& e : golden) {
      expect_parity(policy, *index, cache, e.path,
                    crypto::sha256("tampered:" + e.path), seed);
    }
  }
}

TEST(HotpathVerdictParity, PolicySwapInvalidatesCachedVerdicts) {
  // Copy-on-write swap contract: a rebuilt index has a fresh uid, so a
  // verdict cached under the old revision can never be served under the
  // new one — even for the same template hash.
  RuntimePolicy v1;
  v1.allow("/usr/bin/tool", crypto::sha256("v1"));
  RuntimePolicy v2 = v1;
  v2.allow("/usr/bin/tool", crypto::sha256("v2"));

  const auto index1 = PolicyIndex::build(v1, 1);
  const auto index2 = PolicyIndex::build(v2, 2);
  ASSERT_NE(index1->uid(), index2->uid());

  AppraisalCache cache;
  const crypto::Digest probe = crypto::sha256("v2");
  // Under v1 the hash is a mismatch; the verdict is cached.
  EXPECT_EQ(cached_check(cache, *index1, "/usr/bin/tool", probe),
            PolicyMatch::kHashMismatch);
  // Under v2 the same (path, hash) is allowed — the v1 slot must miss.
  EXPECT_EQ(cached_check(cache, *index2, "/usr/bin/tool", probe),
            PolicyMatch::kAllowed);
  // And the verdicts stay revision-correct on repeat lookups.
  EXPECT_EQ(cached_check(cache, *index1, "/usr/bin/tool", probe),
            PolicyMatch::kHashMismatch);
  EXPECT_EQ(cached_check(cache, *index2, "/usr/bin/tool", probe),
            PolicyMatch::kAllowed);
}

// ----------------------------------------------------------- end-to-end

std::string render_alerts(const std::vector<keylime::Alert>& alerts) {
  std::string out;
  for (const auto& a : alerts) {
    out += std::to_string(a.time) + "|" + a.agent_id + "|" +
           keylime::alert_type_name(a.type) + "|" + a.path + "|" +
           a.observed_hash_hex + "|" + a.detail + "|" +
           std::to_string(a.log_index) + "\n";
  }
  return out;
}

// Two verifiers — fast (indexed policy + verdict cache) and slow (plain
// linear RuntimePolicy) — attesting one real agent over one workload.
struct DiffRig {
  explicit DiffRig(bool continue_on_failure)
      : ca("mfg", to_bytes("diff-seed")),
        network(&clock, 1),
        registrar(&network, &clock, 2),
        fast(&network, &clock, 3,
             keylime::VerifierConfig{continue_on_failure}),
        slow(&network, &clock, 4,
             keylime::VerifierConfig{continue_on_failure}) {
    registrar.trust_manufacturer(ca.public_key());
    oskernel::MachineConfig cfg;
    cfg.hostname = "diff-node";
    cfg.seed = 7;
    machine = std::make_unique<oskernel::Machine>(cfg, ca, &clock);
    agent = std::make_unique<keylime::Agent>(machine.get(), &network);
    EXPECT_TRUE(agent->register_with(keylime::Registrar::address()).ok());
    EXPECT_TRUE(fast.add_agent(cfg.hostname, agent->address()).ok());
    EXPECT_TRUE(slow.add_agent(cfg.hostname, agent->address()).ok());
    fast.use_appraisal_cache(&cache);
  }

  void install_policy(const RuntimePolicy& policy) {
    ASSERT_TRUE(slow.set_policy("diff-node", policy).ok());
    ASSERT_TRUE(
        fast.set_indexed_policy("diff-node", policy, PolicyIndex::build(policy))
            .ok());
  }

  // Attest on both stacks (no clock movement in between, so alert
  // timestamps line up) and require identical round results.
  void attest_and_compare() {
    auto fast_round = fast.attest_once("diff-node");
    auto slow_round = slow.attest_once("diff-node");
    ASSERT_EQ(fast_round.ok(), slow_round.ok());
    if (!fast_round.ok()) return;
    const auto& f = fast_round.value();
    const auto& s = slow_round.value();
    EXPECT_EQ(f.new_entries, s.new_entries);
    EXPECT_EQ(f.evaluated, s.evaluated);
    EXPECT_EQ(f.state, s.state);
    EXPECT_EQ(f.reboot_detected, s.reboot_detected);
    EXPECT_EQ(render_alerts(f.alerts), render_alerts(s.alerts));
    EXPECT_EQ(render_alerts(fast.alerts()), render_alerts(slow.alerts()));
    EXPECT_EQ(fast.pending_entries("diff-node"),
              slow.pending_entries("diff-node"));
  }

  SimClock clock;
  crypto::CertificateAuthority ca;
  netsim::SimNetwork network;
  keylime::Registrar registrar;
  keylime::Verifier fast;
  keylime::Verifier slow;
  keylime::AppraisalCache cache;
  std::unique_ptr<oskernel::Machine> machine;
  std::unique_ptr<keylime::Agent> agent;
};

void run_workload_parity(bool continue_on_failure) {
  DiffRig rig(continue_on_failure);
  auto& machine = *rig.machine;

  // Golden workload: binaries the policy will bless.
  std::vector<std::string> golden = {"/usr/bin/svc-a", "/usr/bin/svc-b",
                                     "/usr/lib/helper.so",
                                     "/opt/app/bin/daemon"};
  for (const auto& p : golden) {
    ASSERT_TRUE(machine.fs().create_file(p, to_bytes("elf:" + p), true).ok());
    ASSERT_TRUE(machine.exec(p).ok());
  }

  // Distill the policy from the measured log (boot aggregate entries are
  // skipped by appraisal) and keep the stock /tmp exclusion.
  RuntimePolicy policy;
  for (const auto& e : machine.ima().log()) {
    if (e.path == "boot_aggregate") continue;
    policy.allow(e.path, e.file_hash);
  }
  policy.exclude("/tmp/*");
  rig.install_policy(policy);

  // Phase 1: clean log — no alerts on either stack.
  rig.attest_and_compare();
  EXPECT_TRUE(rig.fast.alerts().empty());

  // Phase 2: a /tmp implant (P1: rides the exclude), an unknown binary
  // (not-in-policy), and a modified golden binary (hash mismatch).
  ASSERT_TRUE(
      machine.fs().create_file("/tmp/implant", to_bytes("payload"), true).ok());
  ASSERT_TRUE(machine.exec("/tmp/implant").ok());
  ASSERT_TRUE(
      machine.fs().create_file("/usr/bin/rogue", to_bytes("rogue"), true).ok());
  ASSERT_TRUE(machine.exec("/usr/bin/rogue").ok());
  ASSERT_TRUE(
      machine.fs().write_file("/usr/bin/svc-a", to_bytes("trojaned")).ok());
  ASSERT_TRUE(machine.exec("/usr/bin/svc-a").ok());
  rig.attest_and_compare();
  EXPECT_FALSE(rig.slow.alerts().empty());

  // Phase 3: recover (both stacks resolve identically) and reboot — the
  // whole list re-measures, the fast path re-appraises through its cache.
  if (!continue_on_failure) {
    ASSERT_TRUE(rig.fast.resolve_failure("diff-node").ok());
    ASSERT_TRUE(rig.slow.resolve_failure("diff-node").ok());
  }
  machine.reboot();
  for (const auto& p : golden) ASSERT_TRUE(machine.exec(p).ok());
  rig.attest_and_compare();  // reboot detection round
  rig.attest_and_compare();  // re-appraisal (stock: halts at svc-a again)
  if (!continue_on_failure) {
    // Resolve once more so the backlog behind the trojaned binary —
    // entries appraised (and cached) before the reboot — gets drained.
    ASSERT_TRUE(rig.fast.resolve_failure("diff-node").ok());
    ASSERT_TRUE(rig.slow.resolve_failure("diff-node").ok());
  }
  rig.attest_and_compare();  // steady state / backlog drain
  EXPECT_GT(rig.cache.stats().hits, 0u)
      << "reboot re-appraisal should hit the verdict cache";
}

TEST(HotpathEndToEnd, AlertStreamsIdenticalUnderStockSemantics) {
  run_workload_parity(/*continue_on_failure=*/false);
}

TEST(HotpathEndToEnd, AlertStreamsIdenticalUnderContinueOnFailure) {
  run_workload_parity(/*continue_on_failure=*/true);
}

}  // namespace
}  // namespace cia::testkit
