// Tests for the telemetry subsystem: registry thread-safety, histogram
// percentile accuracy against the exact common/stats implementation,
// exporter round-trips, span nesting under injected transport faults,
// and the end-to-end acceptance check — a chaos run whose exported
// counters match the transport's own books exactly.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <map>
#include <thread>
#include <vector>

#include "common/log.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "experiments/chaos_experiment.hpp"
#include "netsim/network.hpp"
#include "netsim/transport.hpp"
#include "telemetry/export.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace cia::telemetry {
namespace {

// ------------------------------------------------------------- registry

TEST(MetricsRegistryTest, CountersGaugesHistogramsBasics) {
  MetricsRegistry registry;
  registry.counter("rounds").inc();
  registry.counter("rounds").inc(4);
  EXPECT_EQ(registry.counter_value("rounds"), 5u);

  registry.gauge("depth").set(3.0);
  registry.gauge("depth").add(2.5);
  EXPECT_DOUBLE_EQ(registry.gauge_value("depth"), 5.5);

  Histogram& h = registry.histogram("lat", {}, {1.0, 10.0});
  h.observe(0.5);
  h.observe(5.0);
  h.observe(50.0);
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 3u);
  EXPECT_DOUBLE_EQ(snap.sum, 55.5);
  EXPECT_DOUBLE_EQ(snap.min, 0.5);
  EXPECT_DOUBLE_EQ(snap.max, 50.0);
  ASSERT_EQ(snap.counts.size(), 3u);
  EXPECT_EQ(snap.counts[0], 1u);
  EXPECT_EQ(snap.counts[1], 1u);
  EXPECT_EQ(snap.counts[2], 1u);
}

TEST(MetricsRegistryTest, LabelsAreCanonicalizedBySortOrder) {
  MetricsRegistry registry;
  registry.counter("c", {{"b", "2"}, {"a", "1"}}).inc();
  registry.counter("c", {{"a", "1"}, {"b", "2"}}).inc();
  // Both label orders name the same series.
  EXPECT_EQ(registry.counter_value("c", {{"a", "1"}, {"b", "2"}}), 2u);
  EXPECT_EQ(registry.snapshot().points.size(), 1u);
}

TEST(MetricsRegistryTest, ConcurrentIncrementsAreExact) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kIncs = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      // Half the threads hammer one shared series, the others intern new
      // labeled series while observing a shared histogram — exercising
      // the intern lock and the lock-free cells together.
      for (int i = 0; i < kIncs; ++i) {
        registry.counter("shared_total").inc();
        registry.counter("per_thread_total", {{"t", std::to_string(t)}}).inc();
        registry.gauge("last_thread").set(static_cast<double>(t));
        registry.histogram("obs", {}, count_buckets())
            .observe(static_cast<double>(i % 10));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(registry.counter_value("shared_total"),
            static_cast<std::uint64_t>(kThreads) * kIncs);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(registry.counter_value("per_thread_total",
                                     {{"t", std::to_string(t)}}),
              static_cast<std::uint64_t>(kIncs));
  }
  const MetricsSnapshot snap = registry.snapshot();
  const MetricPoint* obs = snap.find("obs");
  ASSERT_NE(obs, nullptr);
  EXPECT_EQ(obs->histogram.count,
            static_cast<std::uint64_t>(kThreads) * kIncs);
}

// ------------------------------------------------- histogram percentiles

TEST(HistogramTest, PercentilesTrackExactWithinBucketWidth) {
  // Random latencies against the exact common/stats percentile: the
  // bucketed estimate must land within the width of the owning bucket.
  Rng rng(0x415757ull);
  const std::vector<double>& bounds = latency_seconds_buckets();
  Histogram h(bounds);
  std::vector<double> xs;
  for (int i = 0; i < 5000; ++i) {
    // Mix of scales so every bucket region gets traffic.
    const double v = std::pow(10.0, -3.0 + 6.0 * rng.uniform01());
    h.observe(v);
    xs.push_back(v);
  }
  for (const double p : {50.0, 95.0, 99.0}) {
    const double exact = percentile(xs, p);
    const double estimate = h.percentile(p);
    // Owning bucket of the exact value -> allowed error is that width.
    double lower = 0.0, width = 0.0;
    for (std::size_t b = 0; b <= bounds.size(); ++b) {
      const double upper = b < bounds.size()
                               ? bounds[b]
                               : std::numeric_limits<double>::infinity();
      if (exact <= upper) {
        width = std::isinf(upper) ? exact : upper - lower;
        break;
      }
      lower = upper;
    }
    EXPECT_NEAR(estimate, exact, width + 1e-9)
        << "p" << p << " exact=" << exact << " estimate=" << estimate;
  }
}

TEST(HistogramTest, PercentileEdgesClampToObservedRange) {
  Histogram h({10.0, 100.0});
  h.observe(42.0);
  EXPECT_DOUBLE_EQ(h.percentile(0), 42.0);
  EXPECT_DOUBLE_EQ(h.percentile(50), 42.0);
  EXPECT_DOUBLE_EQ(h.percentile(100), 42.0);
  h.observe(60.0);
  EXPECT_DOUBLE_EQ(h.percentile(0), 42.0);
  EXPECT_DOUBLE_EQ(h.percentile(100), 60.0);
}

// ------------------------------------------------------------- exporters

TEST(ExportTest, PrometheusGolden) {
  MetricsRegistry registry;
  registry.counter("cia_rounds_total", {{"agent", "node-0"}}).inc(3);
  registry.gauge("cia_depth").set(2.5);
  registry.histogram("cia_lat", {}, {1.0, 5.0}).observe(0.5);
  registry.histogram("cia_lat", {}, {1.0, 5.0}).observe(3.0);
  const std::string expected =
      "# TYPE cia_depth gauge\n"
      "cia_depth 2.5\n"
      "# TYPE cia_lat histogram\n"
      "cia_lat_bucket{le=\"1\"} 1\n"
      "cia_lat_bucket{le=\"5\"} 2\n"
      "cia_lat_bucket{le=\"+Inf\"} 2\n"
      "cia_lat_sum 3.5\n"
      "cia_lat_count 2\n"
      "# TYPE cia_rounds_total counter\n"
      "cia_rounds_total{agent=\"node-0\"} 3\n";
  EXPECT_EQ(to_prometheus(registry.snapshot()), expected);
}

TEST(ExportTest, PrometheusEscapesLabelValues) {
  MetricsRegistry registry;
  registry.counter("c", {{"path", "a\"b\\c\nd"}}).inc();
  const std::string text = to_prometheus(registry.snapshot());
  EXPECT_NE(text.find("path=\"a\\\"b\\\\c\\nd\""), std::string::npos);
}

TEST(ExportTest, JsonRoundTripsThroughSnapshotFromJson) {
  MetricsRegistry registry;
  registry.counter("cia_rounds_total", {{"agent", "node-0"}}).inc(7);
  registry.gauge("cia_staleness", {{"mirror", "m0"}}).set(1234.5);
  Histogram& h = registry.histogram("cia_lat", {{"link", "a:1"}},
                                    latency_seconds_buckets());
  for (int i = 1; i <= 100; ++i) h.observe(i * 0.37);

  const MetricsSnapshot before = registry.snapshot();
  const json::Value doc = to_json(before);
  auto parsed = snapshot_from_json(doc);
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  // Re-export equality is the round-trip invariant (p50/p95/p99 are
  // derived on export, so they must reproduce too).
  EXPECT_EQ(to_json(parsed.value()).dump(), doc.dump());
  EXPECT_EQ(to_prometheus(parsed.value()), to_prometheus(before));
}

TEST(ExportTest, DiffReportsAddedChangedRemoved) {
  MetricsRegistry a;
  a.counter("gone").inc();
  a.counter("changed").inc(2);
  MetricsRegistry b;
  b.counter("changed").inc(5);
  b.counter("added").inc();
  const std::string diff = diff_snapshots(a.snapshot(), b.snapshot());
  EXPECT_NE(diff.find("+ added 1"), std::string::npos);
  EXPECT_NE(diff.find("~ changed 2 -> 5 (+3)"), std::string::npos);
  EXPECT_NE(diff.find("- gone"), std::string::npos);
  EXPECT_TRUE(diff_snapshots(b.snapshot(), b.snapshot()).empty());
}

// ----------------------------------------------------------- log bridge

TEST(LogBridgeTest, WarnAndErrorCountRegardlessOfPrintThreshold) {
  MetricsRegistry registry;
  attach_log_counter(&registry);
  const LogLevel saved = log_level();
  set_log_level(LogLevel::kOff);  // nothing printed — still counted
  CIA_LOG_WARN("verifier", "something odd");
  CIA_LOG_ERROR("mirror", "sync failed");
  CIA_LOG_INFO("verifier", "routine");  // info is never counted
  set_log_level(saved);
  attach_log_counter(nullptr);
  EXPECT_EQ(registry.counter_value(
                "cia_log_events_total",
                {{"component", "verifier"}, {"level", "warn"}}),
            1u);
  EXPECT_EQ(registry.counter_value(
                "cia_log_events_total",
                {{"component", "mirror"}, {"level", "error"}}),
            1u);
  EXPECT_EQ(registry.snapshot().counter_total("cia_log_events_total"), 2.0);
}

TEST(LogBridgeTest, StructuredFieldsAreAppendedKeyEqualsValue) {
  // Printed form: fields render as key=value, quoted when they contain
  // spaces. Verified through the observer message (no stderr capture).
  std::string seen;
  set_log_observer(
      [&seen](LogLevel, const std::string&, const std::string& message) {
        seen = message;
      });
  log_line(LogLevel::kWarn, "verifier", "alert",
           {{"agent", "node-0"}, {"detail", "bad hash"}});
  set_log_observer(nullptr);
  EXPECT_NE(seen.find("agent=node-0"), std::string::npos);
  EXPECT_NE(seen.find("detail=\"bad hash\""), std::string::npos);
}

// ----------------------------------------------------------------- spans

TEST(TracerTest, NestingFollowsOpenSpanStack) {
  SimClock clock;
  Tracer tracer(&clock);
  const SpanId root = tracer.begin("round");
  clock.advance(5);
  const SpanId child = tracer.begin("rpc");
  tracer.annotate("attempt", "2");  // innermost open span = child
  clock.advance(3);
  tracer.end(child);
  clock.advance(2);
  tracer.end(root);

  ASSERT_EQ(tracer.finished().size(), 2u);
  const Span& rpc = tracer.finished()[0];
  const Span& round = tracer.finished()[1];
  EXPECT_EQ(rpc.parent, root);
  EXPECT_EQ(round.parent, 0u);
  EXPECT_EQ(rpc.start, 5);
  EXPECT_EQ(rpc.end, 8);
  EXPECT_EQ(round.start, 0);
  EXPECT_EQ(round.end, 10);
  ASSERT_EQ(rpc.annotations.size(), 1u);
  EXPECT_EQ(rpc.annotations[0].first, "attempt");
  EXPECT_EQ(rpc.annotations[0].second, "2");
}

TEST(TracerTest, EndingAParentClosesOrphanedChildren) {
  SimClock clock;
  Tracer tracer(&clock);
  const SpanId root = tracer.begin("round");
  (void)tracer.begin("leaked");
  tracer.end(root);  // crash path: the child must not stay open
  EXPECT_EQ(tracer.open_count(), 0u);
  EXPECT_EQ(tracer.finished().size(), 2u);
}

class FlakyEndpoint : public netsim::Endpoint {
 public:
  Result<Bytes> handle(const std::string&, const Bytes& payload) override {
    return payload;
  }
};

TEST(TracerTest, TransportRetriesNestAndAnnotate) {
  SimClock clock;
  netsim::SimNetwork network(&clock, 7);
  FlakyEndpoint endpoint;
  network.attach("svc:1", &endpoint);
  netsim::FaultProfile lossy;
  lossy.drop_rate = 0.5;
  network.set_faults(lossy);

  MetricsRegistry registry;
  Tracer tracer(&clock);
  netsim::RetryingTransport transport(&network, &clock, 11);
  transport.use_telemetry(&registry, &tracer);
  network.use_telemetry(&registry);

  std::uint64_t annotated_retries = 0;
  for (int i = 0; i < 200; ++i) {
    const SpanId caller = tracer.begin("attestation_round");
    (void)transport.call("svc:1", "quote", {1, 2, 3});
    tracer.end(caller);
  }
  std::size_t transport_spans = 0;
  for (const Span& span : tracer.finished()) {
    if (span.name != "transport_call") continue;
    ++transport_spans;
    EXPECT_NE(span.parent, 0u);  // always nested under the caller's span
    for (const auto& [key, value] : span.annotations) {
      if (key == "retries") annotated_retries += std::stoull(value);
    }
  }
  EXPECT_EQ(transport_spans, 200u);
  // The span annotations, the exported counter, and the transport's own
  // books must all agree on how many retries happened.
  const auto& stats = transport.stats();
  EXPECT_GT(stats.retries, 0u);
  EXPECT_EQ(annotated_retries, stats.retries);
  EXPECT_EQ(registry.snapshot().counter_total("cia_transport_retries_total"),
            static_cast<double>(stats.retries));
  // And the network's drop counter matches its own stats.
  EXPECT_EQ(registry.snapshot().counter_total("cia_net_drops_total"),
            static_cast<double>(network.stats().dropped));
}

// --------------------------------------------- end-to-end chaos telemetry

TEST(ChaosTelemetryTest, WanLossExportMatchesTransportBooksExactly) {
  SimClock placeholder;
  MetricsRegistry registry;
  Tracer tracer(&placeholder);
  experiments::ChaosOptions options;
  options.scenario = "wan-loss";
  options.nodes = 4;
  options.days = 3;
  options.archive.base_package_count = 120;
  options.metrics = &registry;
  options.tracer = &tracer;
  const experiments::ChaosReport report = run_chaos_experiment(options);
  ASSERT_TRUE(report.valid);

  const MetricsSnapshot snap = registry.snapshot();

  // Acceptance: per-link retry counters sum to the transport's internal
  // count exactly — the exported numbers are the real numbers.
  EXPECT_EQ(snap.counter_total("cia_transport_retries_total"),
            static_cast<double>(report.retries));
  EXPECT_EQ(snap.counter_total("cia_transport_giveups_total"),
            static_cast<double>(report.giveups));
  EXPECT_EQ(snap.counter_total("cia_net_drops_total"),
            static_cast<double>(report.drops));
  EXPECT_EQ(snap.counter_total("cia_net_timeouts_total"),
            static_cast<double>(report.timeouts));
  EXPECT_EQ(snap.counter_total("cia_net_duplicates_total"),
            static_cast<double>(report.duplicates));

  // Round latency histogram exists and reports a usable p95.
  double rounds = 0.0;
  bool saw_histogram = false;
  for (const MetricPoint& p : snap.points) {
    if (p.name == "cia_verifier_rounds_total") rounds += p.value;
    if (p.name == "cia_verifier_round_seconds") {
      saw_histogram = true;
      EXPECT_GT(p.histogram.count, 0u);
      const double p95 = p.histogram.percentile(95);
      EXPECT_GE(p95, 0.0);
      EXPECT_TRUE(std::isfinite(p95));
    }
  }
  EXPECT_TRUE(saw_histogram);
  EXPECT_EQ(rounds, static_cast<double>(report.polls));

  // The injected violation surfaced in the alert counters.
  EXPECT_GE(snap.counter_total("cia_verifier_alerts_total"), 1.0);

  // The Chrome trace is valid JSON and every non-root span nests inside
  // its parent's window.
  auto trace_doc = json::parse(tracer.chrome_trace().dump());
  ASSERT_TRUE(trace_doc.ok());
  const json::Value* events = trace_doc.value().find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  EXPECT_FALSE(events->as_array().empty());

  std::map<std::uint64_t, const Span*> by_id;
  for (const Span& span : tracer.finished()) by_id[span.id] = &span;
  std::size_t nested = 0;
  for (const Span& span : tracer.finished()) {
    if (span.parent == 0) continue;
    ++nested;
    auto parent = by_id.find(span.parent);
    ASSERT_NE(parent, by_id.end());
    EXPECT_GE(span.start, parent->second->start);
    EXPECT_LE(span.end, parent->second->end);
  }
  EXPECT_GT(nested, 0u);
}

}  // namespace
}  // namespace cia::telemetry
