// The full-vs-delta equivalence battery for the content-addressed policy
// store (src/keylime/policy_store/).
//
// The battery's core claim: for ANY base policy and ANY edit script,
// shipping the edit as a digest-bound PolicyDelta and patching the
// installed index incrementally is observably identical to shipping the
// full target policy and rebuilding from scratch — same canonical JSON,
// same digest, same index probe verdicts, same appraisal alerts, same
// telemetry books. 60 seeded random (policy, edit-script) pairs drive
// diff/apply/build_incremental against the full-rebuild oracle; a
// failing seed is greedily shrunk to a minimal edit script before it is
// reported, so a red run names the one edit that broke equivalence
// instead of a 13-op blob.
//
// Alongside the battery: the strict-decode rejection table for the delta
// wire format, the apply() provenance gates (wrong base, tampered
// target, structural conflicts — all rejected with the base untouched),
// the PolicyStore content-addressing contract, canary-slice determinism,
// and the pool-level dedupe pins — a bulk push to N shards costs exactly
// one index build, a delta push zero full builds, and a same-digest
// repush zero builds of any kind (the promote path).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/rng.hpp"
#include "common/strutil.hpp"
#include "crypto/sha256.hpp"
#include "experiments/pool_experiment.hpp"
#include "keylime/policy_index.hpp"
#include "keylime/policy_store/rollout.hpp"
#include "keylime/policy_store/store.hpp"
#include "keylime/runtime_policy.hpp"
#include "telemetry/metrics.hpp"
#include "testkit/generators.hpp"

namespace cia {
namespace {

namespace ps = keylime::policy_store;
using experiments::PoolFleet;
using experiments::PoolFleetOptions;
using keylime::PolicyIndex;
using keylime::PolicyMatch;
using keylime::RuntimePolicy;

std::string hex_of(const std::string& seed_text) {
  return crypto::digest_hex(crypto::sha256(seed_text));
}

// ----------------------------------------------------------- edit scripts

// One mutation of a policy. The generator draws scripts of these; the
// shrinker deletes them one at a time while the failure persists.
struct Edit {
  enum class Kind { kAdd, kRemove, kReplace, kExclude };
  Kind kind = Kind::kAdd;
  std::string path;                 // add/remove/replace
  std::vector<std::string> hashes;  // add/replace
  std::string glob;                 // exclude
};

const char* edit_kind_name(Edit::Kind k) {
  switch (k) {
    case Edit::Kind::kAdd: return "add";
    case Edit::Kind::kRemove: return "remove";
    case Edit::Kind::kReplace: return "replace";
    case Edit::Kind::kExclude: return "exclude";
  }
  return "?";
}

std::string describe(const std::vector<Edit>& edits) {
  std::ostringstream out;
  for (const Edit& e : edits) {
    out << "  " << edit_kind_name(e.kind) << " "
        << (e.kind == Edit::Kind::kExclude ? e.glob : e.path);
    if (!e.hashes.empty()) out << " (" << e.hashes.size() << " hashes)";
    out << "\n";
  }
  return out.str();
}

RuntimePolicy apply_edits(const RuntimePolicy& base,
                          const std::vector<Edit>& edits) {
  RuntimePolicy target = base;
  for (const Edit& e : edits) {
    switch (e.kind) {
      case Edit::Kind::kAdd:
      case Edit::Kind::kReplace:
        target.set_hashes(e.path, e.hashes);
        break;
      case Edit::Kind::kRemove:
        target.remove_path(e.path);
        break;
      case Edit::Kind::kExclude:
        target.exclude(e.glob);
        break;
    }
  }
  return target;
}

std::vector<std::string> fresh_hashes(Rng& rng) {
  std::vector<std::string> hashes;
  const std::size_t n = 1 + rng.uniform(3);
  for (std::size_t i = 0; i < n; ++i) hashes.push_back(hex_of(rng.ident(12)));
  return hashes;
}

// A random edit script against `base`: adds, removals and hash swaps in
// the §III-C daily-update shape, with an occasional exclude-list edit to
// force build_incremental through its full-rebuild fallback. The leading
// add targets a reserved path no other edit touches, so a script can
// never cancel to the identity (diff() of identical policies is not a
// valid delta, and rightly so).
std::vector<Edit> gen_edits(Rng& rng, const RuntimePolicy& base,
                            std::uint64_t tag) {
  std::vector<std::string> paths;
  base.for_each_path([&](const std::string& path,
                         const std::vector<std::string>&) {
    paths.push_back(path);
  });

  std::vector<Edit> edits;
  edits.push_back({Edit::Kind::kAdd,
                   strformat("/gen/keep-%llu",
                             static_cast<unsigned long long>(tag)),
                   fresh_hashes(rng), ""});
  const std::size_t n = 1 + rng.uniform(12);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t pick = rng.uniform(10);
    if (pick < 4) {
      edits.push_back({Edit::Kind::kAdd, "/gen/extra-" + rng.ident(6),
                       fresh_hashes(rng), ""});
    } else if (pick < 7 && !paths.empty()) {
      edits.push_back({Edit::Kind::kReplace,
                       paths[rng.uniform(paths.size())], fresh_hashes(rng),
                       ""});
    } else if (pick < 9 && !paths.empty()) {
      edits.push_back({Edit::Kind::kRemove, paths[rng.uniform(paths.size())],
                       {},
                       ""});
    } else {
      edits.push_back({Edit::Kind::kExclude, "", {},
                       "/var/gen-" + rng.ident(4) + "/*"});
    }
  }
  return edits;
}

// ------------------------------------------------- the equivalence oracle

// Empty string = the edit script round-trips exactly; otherwise a
// description of the first divergence. A script that cancels out to the
// identity policy vacuously passes (there is no delta to ship then).
std::string round_trip_failure(const RuntimePolicy& base,
                               const std::vector<Edit>& edits) {
  const RuntimePolicy target = apply_edits(base, edits);
  const std::string base_digest = ps::policy_digest(base);
  const std::string target_digest = ps::policy_digest(target);
  if (base_digest == target_digest) return "";

  // diff -> apply reproduces the target bit-for-bit.
  const ps::PolicyDelta delta = ps::diff(base, target);
  if (delta.base_digest != base_digest || delta.target_digest != target_digest)
    return "diff() mislabeled its digest binding";
  auto applied = ps::apply(base, delta);
  if (!applied.ok()) return "apply() rejected its own diff: " +
                            applied.error().message;
  if (applied.value().to_json().dump() != target.to_json().dump())
    return "apply(diff()) is not the identity on canonical JSON";
  if (ps::policy_digest(applied.value()) != target_digest)
    return "applied policy does not hash to the target digest";

  // Wire fixed point: everything diff() mints survives strict decode.
  auto reparsed = ps::PolicyDelta::parse(delta.serialize());
  if (!reparsed.ok())
    return "strict decoder rejected diff() output: " +
           reparsed.error().message;
  if (!(reparsed.value() == delta))
    return "parse(serialize()) is not the identity";

  // Index equivalence: the incremental patch of the base index must be
  // observably identical to a from-scratch build of the target.
  const auto base_index = PolicyIndex::build(base, 1);
  const auto full_index = PolicyIndex::build(target, 2);
  const auto incr_index =
      PolicyIndex::build_incremental(base_index, target, delta, 2);
  if (full_index->entry_count() != incr_index->entry_count())
    return "entry_count diverged between full and incremental build";
  if (full_index->path_count() != incr_index->path_count())
    return "path_count diverged between full and incremental build";
  if (incr_index->entry_count() != target.entry_count())
    return "incremental index lost entries vs the target policy";

  std::vector<std::string> probes;
  base.for_each_path([&](const std::string& path,
                         const std::vector<std::string>&) {
    probes.push_back(path);
  });
  target.for_each_path([&](const std::string& path,
                           const std::vector<std::string>&) {
    probes.push_back(path);
  });
  Rng probe_rng(ps::policy_digest(target).size() + target.entry_count());
  for (int i = 0; i < 16; ++i) probes.push_back(testkit::gen_path(probe_rng));

  const std::string bogus(64, '0');
  for (const std::string& path : probes) {
    std::vector<std::string> hashes{bogus};
    if (const auto* h = target.hashes_for(path); h && !h->empty())
      hashes.push_back(h->front());
    if (const auto* h = base.hashes_for(path); h && !h->empty())
      hashes.push_back(h->front());
    for (const std::string& hash : hashes) {
      bool known_full = false, known_incr = false;
      const PolicyMatch oracle = target.check(path, hash);
      const PolicyMatch full = full_index->check(path, hash, &known_full);
      const PolicyMatch incr = incr_index->check(path, hash, &known_incr);
      if (full != oracle)
        return "full index disagrees with RuntimePolicy::check on " + path;
      if (incr != full || known_incr != known_full)
        return "incremental index diverged from full build on " + path;
    }
  }
  return "";
}

// Greedy delta-debugging: drop one edit at a time while the failure
// persists, so the reported script is locally minimal.
std::vector<Edit> shrink_edits(const RuntimePolicy& base,
                               std::vector<Edit> edits) {
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::size_t i = 0; i < edits.size(); ++i) {
      std::vector<Edit> candidate = edits;
      candidate.erase(candidate.begin() + static_cast<std::ptrdiff_t>(i));
      if (candidate.empty()) continue;
      if (!round_trip_failure(base, candidate).empty()) {
        edits = std::move(candidate);
        progress = true;
        break;
      }
    }
  }
  return edits;
}

TEST(PolicyDeltaEquivalence, SixtySeedBattery) {
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    Rng rng(seed * 1000 + 7);
    const RuntimePolicy base = testkit::gen_policy(rng, 48);
    const std::vector<Edit> edits = gen_edits(rng, base, seed);
    const std::string failure = round_trip_failure(base, edits);
    if (!failure.empty()) {
      const std::vector<Edit> minimal = shrink_edits(base, edits);
      FAIL() << "seed " << seed << ": " << round_trip_failure(base, minimal)
             << "\nminimal edit script (" << minimal.size() << " of "
             << edits.size() << " edits):\n"
             << describe(minimal);
    }
  }
}

// A stream of daily deltas builds an overlay chain: each incremental
// index stores only its patch and resolves everything else through the
// shared base. The chain must stay observably identical to a
// from-scratch build at EVERY step, cap its depth at kMaxLayerDepth
// (flattening instead of growing without bound), and never pay a full
// build.
TEST(PolicyDeltaEquivalence, DeltaChainStaysEquivalentAndFlattens) {
  Rng rng(910);
  RuntimePolicy current = testkit::gen_policy(rng, 40);
  auto index = PolicyIndex::build(current, 1);
  ASSERT_EQ(index->layer_depth(), 0u);
  const std::uint64_t full_builds_before = PolicyIndex::full_build_count();

  bool flattened = false;
  std::uint64_t oracle_builds = 0;
  const std::size_t steps = 2 * PolicyIndex::kMaxLayerDepth + 3;
  for (std::size_t step = 1; step <= steps; ++step) {
    // Exclude edits force the full-rebuild fallback (which resets the
    // chain anyway); drop them so this stream exercises pure layering.
    std::vector<Edit> edits = gen_edits(rng, current, 1000 + step);
    edits.erase(std::remove_if(edits.begin(), edits.end(),
                               [](const Edit& e) {
                                 return e.kind == Edit::Kind::kExclude;
                               }),
                edits.end());
    const RuntimePolicy target = apply_edits(current, edits);
    if (ps::policy_digest(target) == ps::policy_digest(current)) continue;
    const ps::PolicyDelta delta = ps::diff(current, target);

    const std::size_t prev_depth = index->layer_depth();
    index = PolicyIndex::build_incremental(index, target, delta,
                                           1 + static_cast<std::uint64_t>(step));
    ASSERT_NE(index, nullptr);
    EXPECT_LE(index->layer_depth(), PolicyIndex::kMaxLayerDepth);
    if (prev_depth == PolicyIndex::kMaxLayerDepth) {
      EXPECT_EQ(index->layer_depth(), 0u) << "step " << step
                                          << ": chain did not flatten";
      flattened = true;
    } else {
      EXPECT_EQ(index->layer_depth(), prev_depth + 1) << "step " << step;
    }

    // Equivalent to a from-scratch build over every path the delta
    // touched (including removals, which must tombstone through to
    // not-in-policy) and every path the target still carries.
    const auto fresh = PolicyIndex::build(target, 99);
    ++oracle_builds;
    EXPECT_EQ(index->entry_count(), fresh->entry_count()) << "step " << step;
    EXPECT_EQ(index->path_count(), fresh->path_count()) << "step " << step;
    std::vector<std::string> probes;
    for (const ps::DeltaEntry& e : delta.entries) probes.push_back(e.path);
    target.for_each_path([&](const std::string& path,
                             const std::vector<std::string>&) {
      probes.push_back(path);
    });
    for (const std::string& path : probes) {
      const std::vector<std::string>* hashes = target.hashes_for(path);
      std::vector<std::string> candidates = {hex_of("bogus:" + path)};
      if (hashes != nullptr && !hashes->empty()) {
        candidates.push_back(hashes->front());
      }
      for (const std::string& h : candidates) {
        bool layered_known = false, fresh_known = false;
        const PolicyMatch layered = index->check(path, h, &layered_known);
        const PolicyMatch flat = fresh->check(path, h, &fresh_known);
        ASSERT_EQ(layered, flat) << "step " << step << " path " << path;
        ASSERT_EQ(layered_known, fresh_known)
            << "step " << step << " path " << path;
        ASSERT_EQ(layered, target.check(path, h))
            << "step " << step << " path " << path;
      }
    }
    current = target;
  }
  EXPECT_TRUE(flattened) << "chain never reached the flatten threshold";
  // The fresh oracle builds above are the only full builds; neither the
  // delta stream nor the flatten ever pays one.
  EXPECT_EQ(PolicyIndex::full_build_count(), full_builds_before + oracle_builds);
}

// The digest really is content addressing over canonical JSON.
TEST(PolicyDigestTest, ContentAddressed) {
  RuntimePolicy a;
  a.allow("/bin/x", hex_of("x"));
  a.exclude("/tmp/*");
  RuntimePolicy b;
  b.allow("/bin/x", hex_of("x"));
  b.exclude("/tmp/*");
  EXPECT_EQ(ps::policy_digest(a), ps::policy_digest(b));
  EXPECT_EQ(ps::policy_digest(a).size(), 64u);

  b.allow("/bin/y", hex_of("y"));
  EXPECT_NE(ps::policy_digest(a), ps::policy_digest(b));
}

// ------------------------------------------------ strict-decode rejections

ps::PolicyDelta sample_delta() {
  RuntimePolicy base;
  base.allow("/bin/a", hex_of("a"));
  base.allow("/bin/b", hex_of("b"));
  base.exclude("/tmp/*");
  RuntimePolicy target = base;
  target.set_hashes("/bin/b", {hex_of("b2")});
  target.set_hashes("/bin/c", {hex_of("c")});
  return ps::diff(base, target);
}

void expect_rejected(const json::Value& doc, const std::string& why) {
  auto decoded = ps::PolicyDelta::parse(doc.dump());
  EXPECT_FALSE(decoded.ok()) << "decoder accepted " << why << ": "
                             << doc.dump();
}

TEST(PolicyDeltaDecodeTest, AcceptsItsOwnWireForm) {
  const ps::PolicyDelta delta = sample_delta();
  auto decoded = ps::PolicyDelta::parse(delta.serialize());
  ASSERT_TRUE(decoded.ok()) << decoded.error().message;
  EXPECT_TRUE(decoded.value() == delta);
  EXPECT_EQ(decoded.value().serialize(), delta.serialize())
      << "decode must be a serialization fixed point";
}

TEST(PolicyDeltaDecodeTest, RejectionTable) {
  const ps::PolicyDelta delta = sample_delta();

  {
    json::Value doc = delta.to_json();
    doc.set("extra", 1);
    expect_rejected(doc, "an unknown top-level field");
  }
  {
    json::Value doc = delta.to_json();
    doc.set("version", 2);
    expect_rejected(doc, "a wrong version");
  }
  {
    json::Value doc = delta.to_json();
    doc.as_object().erase("version");
    expect_rejected(doc, "a missing version");
  }
  {
    json::Value doc = delta.to_json();
    doc.set("base", "ABCDEF");  // short and uppercase
    expect_rejected(doc, "a malformed base digest");
  }
  {
    json::Value doc = delta.to_json();
    doc.set("target", delta.base_digest);
    expect_rejected(doc, "identical base and target digests");
  }
  {
    json::Value doc = delta.to_json();
    doc.set("entries", 3);
    expect_rejected(doc, "a non-array entries field");
  }
  {
    json::Value doc = delta.to_json();
    doc.set("entries", json::Value{json::Array{}});
    doc.as_object().erase("excludes");
    expect_rejected(doc, "a delta that patches nothing");
  }
  {
    ps::PolicyDelta swapped = delta;
    ASSERT_GE(swapped.entries.size(), 2u);
    std::swap(swapped.entries.front(), swapped.entries.back());
    expect_rejected(swapped.to_json(), "out-of-order entries");
  }
  {
    ps::PolicyDelta dup = delta;
    dup.entries.push_back(dup.entries.back());
    expect_rejected(dup.to_json(), "a duplicated entry path");
  }
  {
    ps::PolicyDelta bad = delta;
    bad.entries.front().hashes = {"zz"};
    expect_rejected(bad.to_json(), "a non-hex entry hash");
  }
  {
    ps::PolicyDelta bad = delta;
    bad.entries.front().hashes = {hex_of("h"), hex_of("h")};
    expect_rejected(bad.to_json(), "a duplicated entry hash");
  }
  {
    ps::PolicyDelta bad = delta;
    bad.entries.front().hashes.clear();
    expect_rejected(bad.to_json(), "an add entry with no hashes");
  }
  {
    // A remove entry must not carry a hashes key at all.
    json::Value doc = delta.to_json();
    json::Value entry;
    entry.set("op", "remove");
    entry.set("path", "/zzz/last");
    entry.set("hashes", json::Value{json::Array{}});
    doc.as_object()["entries"].push_back(std::move(entry));
    expect_rejected(doc, "a remove entry carrying hashes");
  }
  {
    json::Value doc = delta.to_json();
    json::Value entry;
    entry.set("op", "upsert");
    entry.set("path", "/zzz/last");
    doc.as_object()["entries"].push_back(std::move(entry));
    expect_rejected(doc, "an unknown op");
  }
  {
    json::Value doc = delta.to_json();
    json::Value& entry = doc.as_object()["entries"].as_array().front();
    entry.set("note", "tamper");
    expect_rejected(doc, "an unknown per-entry field");
  }
  {
    json::Value doc = delta.to_json();
    json::Value globs{json::Array{}};
    globs.push_back("");
    doc.set("excludes", std::move(globs));
    expect_rejected(doc, "an empty exclude glob");
  }
}

// --------------------------------------------------- apply() provenance

TEST(PolicyApplyTest, WrongBaseRejectedWithNoPartialState) {
  const ps::PolicyDelta delta = sample_delta();
  RuntimePolicy other;
  other.allow("/bin/a", hex_of("a"));  // different content, different digest
  const std::string before = other.to_json().dump();

  auto applied = ps::apply(other, delta);
  ASSERT_FALSE(applied.ok());
  EXPECT_EQ(applied.error().code, Errc::kProtocolViolation);
  EXPECT_EQ(other.to_json().dump(), before)
      << "a rejected delta must leave the base policy untouched";
}

TEST(PolicyApplyTest, TamperedTargetDigestRejected) {
  RuntimePolicy base;
  base.allow("/bin/a", hex_of("a"));
  RuntimePolicy target = base;
  target.allow("/bin/b", hex_of("b"));
  ps::PolicyDelta delta = ps::diff(base, target);
  delta.target_digest[0] = delta.target_digest[0] == '0' ? '1' : '0';
  auto applied = ps::apply(base, delta);
  ASSERT_FALSE(applied.ok());
  EXPECT_EQ(applied.error().code, Errc::kProtocolViolation);
}

TEST(PolicyApplyTest, TamperedEntryHashRejected) {
  RuntimePolicy base;
  base.allow("/bin/a", hex_of("a"));
  RuntimePolicy target = base;
  target.allow("/bin/b", hex_of("b"));
  ps::PolicyDelta delta = ps::diff(base, target);
  ASSERT_EQ(delta.entries.size(), 1u);
  delta.entries.front().hashes = {hex_of("evil")};  // wrong content
  auto applied = ps::apply(base, delta);
  ASSERT_FALSE(applied.ok())
      << "a patched policy that does not hash to the target must die";
}

TEST(PolicyApplyTest, StructuralConflictsRejectedBeforeDigestCheck) {
  RuntimePolicy base;
  base.allow("/bin/a", hex_of("a"));
  const std::string base_digest = ps::policy_digest(base);

  ps::PolicyDelta add_existing;
  add_existing.base_digest = base_digest;
  add_existing.target_digest = std::string(64, 'f');
  add_existing.entries.push_back(
      {ps::DeltaEntry::Op::kAdd, "/bin/a", {hex_of("x")}});
  EXPECT_FALSE(ps::apply(base, add_existing).ok());

  ps::PolicyDelta replace_missing;
  replace_missing.base_digest = base_digest;
  replace_missing.target_digest = std::string(64, 'f');
  replace_missing.entries.push_back(
      {ps::DeltaEntry::Op::kReplace, "/bin/zz", {hex_of("x")}});
  EXPECT_FALSE(ps::apply(base, replace_missing).ok());

  ps::PolicyDelta remove_missing;
  remove_missing.base_digest = base_digest;
  remove_missing.target_digest = std::string(64, 'f');
  remove_missing.entries.push_back({ps::DeltaEntry::Op::kRemove, "/bin/zz", {}});
  EXPECT_FALSE(ps::apply(base, remove_missing).ok());
}

// ------------------------------------------------------------ PolicyStore

TEST(PolicyStoreTest, ContentAddressingContract) {
  ps::PolicyStore store;
  EXPECT_TRUE(store.head().empty());

  RuntimePolicy v1;
  v1.allow("/bin/a", hex_of("a"));
  RuntimePolicy v2 = v1;
  v2.allow("/bin/b", hex_of("b"));

  const std::string d1 = store.put(v1);
  EXPECT_EQ(store.head(), d1);
  EXPECT_EQ(store.put(v1), d1) << "put must be idempotent on content";
  EXPECT_EQ(store.revision_count(), 1u);

  const std::string d2 = store.put(v2);
  EXPECT_NE(d1, d2);
  EXPECT_EQ(store.head(), d2);
  EXPECT_EQ(store.revision_count(), 2u);

  ASSERT_NE(store.get(d1), nullptr);
  EXPECT_EQ(ps::policy_digest(*store.get(d1)), d1);
  EXPECT_EQ(store.get(std::string(64, '9')), nullptr);

  const ps::PolicyDelta delta = ps::diff(v1, v2);
  store.put_delta(delta);
  EXPECT_EQ(store.delta_count(), 1u);
  ASSERT_NE(store.delta_between(d1, d2), nullptr);
  EXPECT_TRUE(*store.delta_between(d1, d2) == delta);
  EXPECT_EQ(store.delta_between(d2, d1), nullptr);
}

// ------------------------------------------------------------ canary slice

TEST(CanarySliceTest, DeterministicProperSlice) {
  std::vector<std::string> ids;
  for (std::size_t i = 0; i < 100; ++i)
    ids.push_back(strformat("agent-%04zu", i));

  const auto slice = ps::canary_slice(ids, 0.25, 7);
  EXPECT_EQ(slice, ps::canary_slice(ids, 0.25, 7)) << "must be deterministic";
  EXPECT_TRUE(std::is_sorted(slice.begin(), slice.end()));
  EXPECT_GT(slice.size(), 0u);
  EXPECT_LT(slice.size(), ids.size());
  for (const std::string& id : slice)
    EXPECT_TRUE(std::binary_search(ids.begin(), ids.end(), id));

  // A quarter of the hash space should catch very roughly a quarter of
  // the fleet (the hash is avalanche-mixed, not a modulo).
  EXPECT_GT(slice.size(), 10u);
  EXPECT_LT(slice.size(), 45u);

  EXPECT_NE(ps::canary_slice(ids, 0.25, 8), slice)
      << "the seed must reshuffle the slice";
  EXPECT_EQ(ps::canary_slice(ids, 1.0, 7).size(), ids.size());
  EXPECT_EQ(ps::canary_slice(ids, 1e-9, 7).size(), 1u)
      << "a non-zero fraction must never select an empty canary";
}

// ------------------------------------------------- pool-level dedupe pins

// The N-shard duplicate-build fix: however many shards a revision fans
// out to, it costs exactly one index build — full for a cold push,
// incremental for a rebasing delta, zero for a same-digest repush.
TEST(PoolPushDedupTest, OneBuildPerRevisionAcrossShards) {
  telemetry::MetricsRegistry metrics;
  PoolFleetOptions options;
  options.agents = 24;
  options.shards = 6;
  options.seed = 99;
  options.metrics = &metrics;
  PoolFleet fleet(options);
  ASSERT_TRUE(fleet.init_status().ok()) << fleet.init_status().error().message;

  const std::uint64_t full0 = PolicyIndex::full_build_count();
  const std::uint64_t incr0 = PolicyIndex::incremental_build_count();

  // Cold content-addressed push: one full build for all 6 shards.
  const RuntimePolicy v1 = fleet.fleet_policy();
  const std::string d1 = ps::policy_digest(v1);
  ASSERT_TRUE(fleet.pool()
                  .push_revision(fleet.agent_ids(), v1, d1, nullptr)
                  .ok());
  EXPECT_EQ(PolicyIndex::full_build_count() - full0, 1u);
  EXPECT_EQ(PolicyIndex::incremental_build_count() - incr0, 0u);

  // Rebasing delta push: one incremental patch, zero full builds.
  RuntimePolicy v2 = v1;
  v2.set_hashes("/gen/daily-update", {hex_of("daily")});
  const std::string d2 = ps::policy_digest(v2);
  const ps::PolicyDelta delta = ps::diff(v1, v2);
  ASSERT_TRUE(fleet.pool()
                  .push_revision(fleet.agent_ids(), v2, d2, &delta)
                  .ok());
  EXPECT_EQ(PolicyIndex::full_build_count() - full0, 1u)
      << "a rebasing delta must never pay a full rebuild";
  EXPECT_EQ(PolicyIndex::incremental_build_count() - incr0, 1u);

  // Same-digest repush (the promote path): zero builds, no revision bump.
  const std::uint64_t revision = fleet.pool().policy_revision();
  ASSERT_TRUE(fleet.pool()
                  .push_revision(fleet.agent_ids(), v2, d2, nullptr)
                  .ok());
  EXPECT_EQ(PolicyIndex::full_build_count() - full0, 1u);
  EXPECT_EQ(PolicyIndex::incremental_build_count() - incr0, 1u);
  EXPECT_EQ(fleet.pool().policy_revision(), revision)
      << "reusing the cached index must not mint a new revision";

  // The telemetry books agree with the process-wide counters.
  EXPECT_EQ(metrics.counter_value("cia_policy_index_builds_total",
                                  {{"mode", "full"}}),
            1u);
  EXPECT_EQ(metrics.counter_value("cia_policy_index_builds_total",
                                  {{"mode", "incremental"}}),
            1u);
  EXPECT_EQ(metrics.counter_value("cia_policy_index_builds_total",
                                  {{"mode", "reused"}}),
            1u);

  // A digest-less bulk push invalidates the cache: the next delta push
  // cannot prove its base and must fall back to a full build.
  ASSERT_TRUE(fleet.pool().set_policy_bulk(fleet.agent_ids(), v2).ok());
  EXPECT_EQ(PolicyIndex::full_build_count() - full0, 2u)
      << "set_policy_bulk costs one full build for the whole fleet";
  RuntimePolicy v3 = v2;
  v3.set_hashes("/gen/daily-update-2", {hex_of("daily2")});
  const ps::PolicyDelta delta23 = ps::diff(v2, v3);
  ASSERT_TRUE(fleet.pool()
                  .push_revision(fleet.agent_ids(), v3, ps::policy_digest(v3),
                                 &delta23)
                  .ok());
  EXPECT_EQ(PolicyIndex::incremental_build_count() - incr0, 1u)
      << "a delta must not rebase onto an unproven base";
  EXPECT_EQ(PolicyIndex::full_build_count() - full0, 3u);

  // The staged revisions actually land on the fleet.
  fleet.run_workload_round(0);
  fleet.pool().run_round();
  EXPECT_EQ(fleet.pool().policy_revision_of(fleet.agent_ids().front()),
            fleet.pool().policy_revision());
}

// ------------------------------------------- fleet-level full vs delta

struct FleetOutcome {
  std::string alerts;
  std::string chains;
  std::string books;
};

std::string dump_alerts(std::vector<keylime::Alert> alerts) {
  std::sort(alerts.begin(), alerts.end(),
            [](const keylime::Alert& a, const keylime::Alert& b) {
              return std::tie(a.time, a.agent_id, a.log_index, a.path) <
                     std::tie(b.time, b.agent_id, b.log_index, b.path);
            });
  std::ostringstream out;
  for (const keylime::Alert& a : alerts) {
    out << a.time << " " << a.agent_id << " "
        << keylime::alert_type_name(a.type) << " " << a.path << " "
        << a.observed_hash_hex << " " << a.log_index << " rev="
        << a.policy_revision << "\n";
  }
  return out.str();
}

// Counters and gauges only: histograms record wall-clock micros, which
// legitimately differ between two otherwise identical runs. The two
// mode-distinguishing families are excluded too — they are the
// independent variable of the experiment, everything else is not
// allowed to move.
std::string dump_books(const telemetry::MetricsRegistry& metrics) {
  std::ostringstream out;
  for (const telemetry::MetricPoint& p : metrics.snapshot().points) {
    if (p.kind == telemetry::MetricKind::kHistogram) continue;
    if (p.name == "cia_policy_index_builds_total" ||
        p.name == "cia_policy_delta_entries_total") {
      continue;
    }
    out << p.name << "{";
    for (const auto& [k, v] : p.labels) out << k << "=" << v << ",";
    out << "}=" << p.value << "\n";
  }
  return out.str();
}

FleetOutcome run_fleet_push(bool use_delta, std::uint64_t seed) {
  telemetry::MetricsRegistry metrics;
  PoolFleetOptions options;
  options.agents = 18;
  options.shards = 3;
  options.seed = seed;
  options.verifier.continue_on_failure = true;
  options.metrics = &metrics;
  PoolFleet fleet(options);
  EXPECT_TRUE(fleet.init_status().ok());

  const RuntimePolicy v1 = fleet.fleet_policy();
  EXPECT_TRUE(fleet.pool()
                  .push_revision(fleet.agent_ids(), v1, ps::policy_digest(v1),
                                 nullptr)
                  .ok());
  for (std::uint64_t round = 0; round < 2; ++round) {
    fleet.run_workload_round(round);
    fleet.pool().run_round();
  }

  // The "daily update": corrupt the digest of the binary first-executed
  // in round 2 (slot 8 = 2 rounds x 4 execs) and add one fresh path, so
  // every agent trips the corrupted digest under the new revision.
  RuntimePolicy v2;
  v1.for_each_path([&](const std::string& path,
                       const std::vector<std::string>& hashes) {
    if (path == "/usr/bin/tool-008") {
      v2.allow(path, crypto::sha256("equiv:corrupt:" + path));
    } else {
      for (const std::string& h : hashes) v2.allow(path, h);
    }
  });
  for (const std::string& glob : v1.excludes()) v2.exclude(glob);
  v2.allow("/gen/daily-extra", hex_of("extra"));

  const std::string d2 = ps::policy_digest(v2);
  if (use_delta) {
    const ps::PolicyDelta delta = ps::diff(v1, v2);
    EXPECT_TRUE(
        fleet.pool().push_revision(fleet.agent_ids(), v2, d2, &delta).ok());
    EXPECT_EQ(metrics.counter_value("cia_policy_index_builds_total",
                                    {{"mode", "incremental"}}),
              1u);
  } else {
    EXPECT_TRUE(
        fleet.pool().push_revision(fleet.agent_ids(), v2, d2, nullptr).ok());
    EXPECT_EQ(metrics.counter_value("cia_policy_index_builds_total",
                                    {{"mode", "incremental"}}),
              0u);
  }

  for (std::uint64_t round = 2; round < 5; ++round) {
    fleet.run_workload_round(round);
    fleet.pool().run_round();
  }

  FleetOutcome outcome;
  outcome.alerts = dump_alerts(fleet.pool().alerts());
  std::ostringstream chains;
  for (const auto& [agent, digest] :
       experiments::per_agent_chain_digests(fleet.pool())) {
    chains << agent << "=" << digest << "\n";
  }
  outcome.chains = chains.str();
  outcome.books = dump_books(metrics);
  return outcome;
}

// The tentpole's observable-equivalence claim at fleet level: a delta
// push and a full push of the same target revision produce the same
// alerts (same timestamps, same revision tags), the same per-agent audit
// chains, and the same telemetry books.
TEST(FleetFullVsDeltaTest, ObservablyIdenticalAcrossSeeds) {
  for (std::uint64_t seed : {11u, 12u, 13u}) {
    const FleetOutcome full = run_fleet_push(false, seed);
    const FleetOutcome delta = run_fleet_push(true, seed);
    EXPECT_FALSE(full.alerts.empty())
        << "seed " << seed << ": the corrupted digest must alert";
    EXPECT_EQ(full.alerts, delta.alerts) << "seed " << seed;
    EXPECT_EQ(full.chains, delta.chains) << "seed " << seed;
    EXPECT_EQ(full.books, delta.books) << "seed " << seed;
  }
}

}  // namespace
}  // namespace cia
