// Property tests for the 256-bit modular arithmetic underlying all
// signatures and quotes: ring axioms, inverse laws, and byte encodings
// under random values for both secp256k1 moduli.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "crypto/secp256k1.hpp"
#include "crypto/u256.hpp"

namespace cia::crypto {
namespace {

U256 random_u256(Rng& rng) {
  U256 v;
  for (auto& limb : v.limb) limb = rng.next_u64();
  return v;
}

class U256Property : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(U256Property, FieldAxiomsHoldForRandomValues) {
  Rng rng(GetParam());
  for (const SpecialModulus* m : {&field_modulus(), &order_modulus()}) {
    for (int trial = 0; trial < 50; ++trial) {
      const U256 a = reduce(random_u256(rng), *m);
      const U256 b = reduce(random_u256(rng), *m);
      const U256 c = reduce(random_u256(rng), *m);

      // Commutativity.
      EXPECT_EQ(add_mod(a, b, *m), add_mod(b, a, *m));
      EXPECT_EQ(mul_mod(a, b, *m), mul_mod(b, a, *m));
      // Associativity.
      EXPECT_EQ(add_mod(add_mod(a, b, *m), c, *m),
                add_mod(a, add_mod(b, c, *m), *m));
      EXPECT_EQ(mul_mod(mul_mod(a, b, *m), c, *m),
                mul_mod(a, mul_mod(b, c, *m), *m));
      // Distributivity.
      EXPECT_EQ(mul_mod(a, add_mod(b, c, *m), *m),
                add_mod(mul_mod(a, b, *m), mul_mod(a, c, *m), *m));
      // Additive inverse.
      EXPECT_TRUE(add_mod(a, sub_mod(U256::zero(), a, *m), *m).is_zero());
      // Subtraction round trip.
      EXPECT_EQ(add_mod(sub_mod(a, b, *m), b, *m), a);
    }
  }
}

TEST_P(U256Property, MultiplicativeInverse) {
  Rng rng(GetParam());
  for (const SpecialModulus* m : {&field_modulus(), &order_modulus()}) {
    for (int trial = 0; trial < 10; ++trial) {
      U256 a = reduce(random_u256(rng), *m);
      if (a.is_zero()) a = U256::one();
      EXPECT_EQ(mul_mod(a, inv_mod(a, *m), *m), U256::one());
    }
  }
}

TEST_P(U256Property, PowModLaws) {
  Rng rng(GetParam());
  const auto& m = field_modulus();
  for (int trial = 0; trial < 5; ++trial) {
    U256 a = reduce(random_u256(rng), m);
    if (a.is_zero()) a = U256::from_u64(3);
    const U256 e1 = U256::from_u64(rng.uniform(1000));
    const U256 e2 = U256::from_u64(rng.uniform(1000));
    U256 e_sum;
    add_with_carry(e1, e2, e_sum);  // small values: no carry
    // a^(e1+e2) == a^e1 * a^e2
    EXPECT_EQ(pow_mod(a, e_sum, m),
              mul_mod(pow_mod(a, e1, m), pow_mod(a, e2, m), m));
  }
}

TEST_P(U256Property, EncodingRoundTrips) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    const U256 v = random_u256(rng);
    EXPECT_EQ(U256::from_be_bytes(v.to_be_bytes()), v);
    EXPECT_EQ(U256::from_hex(v.to_hex()), v);
  }
}

TEST_P(U256Property, ReduceWideMatchesSchoolbook) {
  // reduce_wide(a*b) must agree with iterated addition for small b.
  Rng rng(GetParam());
  const auto& m = field_modulus();
  for (int trial = 0; trial < 10; ++trial) {
    const U256 a = reduce(random_u256(rng), m);
    const std::uint64_t small = rng.uniform(50) + 1;
    U256 sum = U256::zero();
    for (std::uint64_t i = 0; i < small; ++i) sum = add_mod(sum, a, m);
    EXPECT_EQ(mul_mod(a, U256::from_u64(small), m), sum);
  }
}

TEST_P(U256Property, ScalarMulMatchesRepeatedAddition) {
  Rng rng(GetParam());
  const Point g = generator();
  Point accumulated = Point::make_infinity();
  for (std::uint64_t k = 1; k <= 12; ++k) {
    accumulated = add(accumulated, g);
    EXPECT_EQ(scalar_mul_base(U256::from_u64(k)), accumulated) << "k=" << k;
    EXPECT_EQ(scalar_mul(U256::from_u64(k), g), accumulated) << "k=" << k;
  }
}

TEST_P(U256Property, FixedBaseAgreesWithGenericScalarMul) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 5; ++trial) {
    const U256 k = reduce(random_u256(rng), order_modulus());
    EXPECT_EQ(scalar_mul_base(k), scalar_mul(k, generator()));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, U256Property, ::testing::Values(3, 17, 1001));

TEST(U256EdgeTest, ReduceHandlesValuesAboveModulus) {
  const auto& m = field_modulus();
  U256 max;
  max.limb = {~0ull, ~0ull, ~0ull, ~0ull};
  const U256 reduced = reduce(max, m);
  EXPECT_TRUE(reduced < m.p);
  // 2^256 - 1 mod (2^256 - c) == c - 1.
  U256 expected;
  sub_with_borrow(m.c, U256::one(), expected);
  EXPECT_EQ(reduced, expected);
}

TEST(U256EdgeTest, MulModOfMaximalResidues) {
  const auto& m = field_modulus();
  U256 pm1;
  sub_with_borrow(m.p, U256::one(), pm1);
  // (-1) * (-1) == 1.
  EXPECT_EQ(mul_mod(pm1, pm1, m), U256::one());
  // (-1) * (-1) * (-1) == -1.
  EXPECT_EQ(mul_mod(mul_mod(pm1, pm1, m), pm1, m), pm1);
}

TEST(U256EdgeTest, ZeroBehaviour) {
  const auto& m = field_modulus();
  EXPECT_TRUE(mul_mod(U256::zero(), U256::from_u64(7), m).is_zero());
  EXPECT_TRUE(add_mod(U256::zero(), U256::zero(), m).is_zero());
  EXPECT_EQ(pow_mod(U256::zero(), U256::zero(), m), U256::one())
      << "0^0 == 1 by the square-and-multiply convention";
}

}  // namespace
}  // namespace cia::crypto
