// Unit tests for the attack-sample framework: registry shape, Table II
// metadata, and that each variant executes its footprint mechanically.
#include <gtest/gtest.h>

#include <set>

#include "attacks/attack.hpp"
#include "attacks/extended.hpp"
#include "common/strutil.hpp"

namespace cia::attacks {
namespace {

struct AttackMachine {
  AttackMachine() : ca("mfg", to_bytes("seed")), machine(config(), ca, &clock) {
    // The system binaries the samples rely on.
    EXPECT_TRUE(machine.fs()
                    .create_file("/usr/bin/bash", to_bytes("elf:bash"), true)
                    .ok());
    EXPECT_TRUE(machine.fs()
                    .create_file("/usr/bin/python3", to_bytes("elf:python3"), true)
                    .ok());
  }
  static oskernel::MachineConfig config() {
    oskernel::MachineConfig cfg;
    cfg.hostname = "victim";
    return cfg;
  }
  SimClock clock;
  crypto::CertificateAuthority ca;
  oskernel::Machine machine;
};

TEST(AttackRegistryTest, HasAllEightSamplesInPaperOrder) {
  const auto attacks = all_attacks();
  ASSERT_EQ(attacks.size(), 8u);
  const std::vector<std::string> expected = {
      "AvosLocker", "Diamorphine", "Reptile",     "Vlany",
      "Mirai",      "BASHLITE",    "Mortem-qBot", "Aoyama"};
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(attacks[i]->name(), expected[i]);
  }
}

TEST(AttackRegistryTest, CategoriesMatchTableII) {
  const auto attacks = all_attacks();
  EXPECT_EQ(attacks[0]->category(), "Ransomware");
  for (int i = 1; i <= 3; ++i) EXPECT_EQ(attacks[i]->category(), "Rootkit");
  for (int i = 4; i <= 7; ++i) EXPECT_EQ(attacks[i]->category(), "Botnet C&C");
}

TEST(AttackRegistryTest, ProblemColumnsMatchTableII) {
  const auto attacks = all_attacks();
  for (const auto& attack : attacks) {
    const auto exploits = attack->exploits();
    const std::set<Problem> set(exploits.begin(), exploits.end());
    EXPECT_TRUE(set.count(Problem::kP1)) << attack->name();
    EXPECT_TRUE(set.count(Problem::kP2)) << attack->name();
    EXPECT_TRUE(set.count(Problem::kP3)) << attack->name();
    EXPECT_TRUE(set.count(Problem::kP4)) << attack->name();
    // AvosLocker ships only a binary: no P5 bullet in Table II.
    EXPECT_EQ(set.count(Problem::kP5), attack->name() == "AvosLocker" ? 0u : 1u)
        << attack->name();
  }
}

TEST(AttackRegistryTest, OnlyAoyamaIsUnmitigable) {
  for (const auto& attack : all_attacks()) {
    EXPECT_EQ(attack->mitigable(), attack->name() != "Aoyama")
        << attack->name();
  }
}

TEST(AttackRegistryTest, EveryAttackHasPayloadMarkers) {
  for (const auto& attack : all_attacks()) {
    EXPECT_FALSE(attack->payload_markers().empty()) << attack->name();
  }
}

TEST(AttackExecutionTest, BasicVariantsRunCleanly) {
  for (const auto& attack : all_attacks()) {
    AttackMachine rig;
    AttackContext ctx;
    ctx.machine = &rig.machine;
    const Status s = attack->run_basic(ctx);
    EXPECT_TRUE(s.ok()) << attack->name() << ": " << s.error().to_string();
  }
}

TEST(AttackExecutionTest, AdaptiveVariantsRunCleanly) {
  for (const auto& attack : all_attacks()) {
    AttackMachine rig;
    AttackContext ctx;
    ctx.machine = &rig.machine;
    int attest_calls = 0;
    ctx.attestation_round = [&attest_calls] { ++attest_calls; };
    const Status s = attack->run_adaptive(ctx);
    EXPECT_TRUE(s.ok()) << attack->name() << ": " << s.error().to_string();
  }
}

TEST(AttackExecutionTest, PostRebootActivityRunsCleanly) {
  for (const auto& attack : all_attacks()) {
    AttackMachine rig;
    AttackContext ctx;
    ctx.machine = &rig.machine;
    ASSERT_TRUE(attack->run_adaptive(ctx).ok()) << attack->name();
    rig.machine.reboot();
    // bash/python3 survive the reboot (root fs), /tmp payloads do not.
    const Status s = attack->post_reboot_activity(ctx);
    EXPECT_TRUE(s.ok()) << attack->name() << ": " << s.error().to_string();
  }
}

TEST(AttackExecutionTest, AdaptiveVariantsTouchOnlyExpectedSurfaces) {
  // The adaptive variants must confine their *measurable* activity to
  // exclusion holes: everything they exec directly lives under /tmp,
  // /dev/shm, /proc, or is an in-policy system binary.
  for (const auto& attack : all_attacks()) {
    AttackMachine rig;
    AttackContext ctx;
    ctx.machine = &rig.machine;
    ASSERT_TRUE(attack->run_adaptive(ctx).ok());
    for (const auto& entry : rig.machine.ima().log()) {
      if (entry.path == "boot_aggregate") continue;
      const bool is_system = entry.path == "/usr/bin/bash" ||
                             entry.path == "/usr/bin/python3";
      const bool is_hole = starts_with(entry.path, "/tmp/");
      // P2 decoys are deliberately measurable benign-looking files.
      const bool is_decoy = entry.path.find("helper") != std::string::npos;
      EXPECT_TRUE(is_system || is_hole || is_decoy)
          << attack->name() << " measured " << entry.path
          << " — an adaptive attack leaking measurements outside the "
             "exclusion holes would be caught";
    }
  }
}

TEST(AttackHelpersTest, DropExecutableOverwrites) {
  AttackMachine rig;
  ASSERT_TRUE(drop_executable(rig.machine, "/x", "v1").ok());
  ASSERT_TRUE(drop_executable(rig.machine, "/x", "v2").ok());
  EXPECT_EQ(to_string(rig.machine.fs().read_file("/x").value()), "v2");
  EXPECT_TRUE(rig.machine.fs().stat("/x").value().executable);
}

TEST(AttackHelpersTest, DropFileIsNotExecutable) {
  AttackMachine rig;
  ASSERT_TRUE(drop_file(rig.machine, "/cfg", "data").ok());
  EXPECT_FALSE(rig.machine.fs().stat("/cfg").value().executable);
}

TEST(ExtendedAttacksTest, RegistryHasThreeSamples) {
  const auto attacks = extended_attacks();
  ASSERT_EQ(attacks.size(), 3u);
  EXPECT_EQ(attacks[0]->name(), "XMRig-miner");
  EXPECT_EQ(attacks[1]->name(), "SSH-key-backdoor");
  EXPECT_EQ(attacks[2]->name(), "GRUB-bootkit");
}

TEST(ExtendedAttacksTest, AllVariantsRunCleanly) {
  for (const auto& attack : extended_attacks()) {
    AttackMachine rig;
    AttackContext ctx;
    ctx.machine = &rig.machine;
    EXPECT_TRUE(attack->run_basic(ctx).ok()) << attack->name();
    EXPECT_TRUE(attack->run_adaptive(ctx).ok()) << attack->name();
    rig.machine.reboot();
    EXPECT_TRUE(attack->post_reboot_activity(ctx).ok()) << attack->name();
  }
}

TEST(ExtendedAttacksTest, SshBackdoorTouchesNoExecutable) {
  AttackMachine rig;
  SshAuthorizedKeyBackdoor backdoor;
  AttackContext ctx;
  ctx.machine = &rig.machine;
  const std::size_t log_before = rig.machine.ima().log().size();
  ASSERT_TRUE(backdoor.run_basic(ctx).ok());
  EXPECT_EQ(rig.machine.ima().log().size(), log_before)
      << "a data-only attack must produce zero measurements — out of scope "
         "for integrity attestation by design (§V)";
}

TEST(ExtendedAttacksTest, BootkitOnlyChangesPcr4AtNextBoot) {
  AttackMachine rig;
  GrubBootkit bootkit;
  AttackContext ctx;
  ctx.machine = &rig.machine;
  const auto pcr4_before = rig.machine.tpm().pcr_value(4);
  ASSERT_TRUE(bootkit.run_basic(ctx).ok());
  EXPECT_EQ(rig.machine.tpm().pcr_value(4), pcr4_before)
      << "dormant implant: PCRs unchanged until reboot";
  rig.machine.reboot();
  EXPECT_NE(rig.machine.tpm().pcr_value(4), pcr4_before);
}

TEST(AttackHelpersTest, ProblemNames) {
  EXPECT_STREQ(problem_name(Problem::kP1), "P1");
  EXPECT_STREQ(problem_name(Problem::kP5), "P5");
}

}  // namespace
}  // namespace cia::attacks
