// Fuzz-surface smoke tests: every registered target runs a bounded,
// fixed-seed fuzz campaign (corpus + regressions replayed first) and must
// come back clean. These are the same campaigns CI runs under ASan/UBSan
// via tools/run_sanitized_tests.sh fuzz — here they gate every plain
// ctest run with a smaller budget.
//
// The second half pins the individual parser-hardening fixes the fuzzers
// surfaced, so each stays fixed even if its corpus file is lost.
#include <gtest/gtest.h>

#include "common/hex.hpp"
#include "common/json.hpp"
#include "ima/ima.hpp"
#include "keylime/messages.hpp"
#include "netsim/wire.hpp"
#include "telemetry/export.hpp"
#include "testkit/corpus.hpp"
#include "testkit/fuzzer.hpp"
#include "testkit/generators.hpp"
#include "testkit/targets.hpp"

namespace cia::testkit {
namespace {

// ----------------------------------------------- bounded fuzz campaigns

class FuzzSurface : public ::testing::TestWithParam<const char*> {};

TEST_P(FuzzSurface, BoundedCampaignIsClean) {
  const FuzzTarget* target = find_target(GetParam());
  ASSERT_NE(target, nullptr);

  FuzzOptions options;
  options.seed = 2026;
  options.iterations = 400;
  Fuzzer fuzzer(*target, options);
  const std::string root = default_corpus_root();
  for (auto& entry : load_corpus(root + "/" + target->name)) {
    fuzzer.add_seed(std::move(entry.data));
  }
  for (auto& entry : load_regressions(root, target->name)) {
    fuzzer.add_seed(std::move(entry.data));
  }
  const FuzzReport report = fuzzer.run();
  EXPECT_TRUE(report.clean())
      << report.first_violation_detail << "\nreproducer (hex): "
      << (report.first_violation ? to_hex(*report.first_violation)
                                 : std::string{});
  EXPECT_GT(report.accepted, 0u) << "campaign never got inside the grammar";
}

INSTANTIATE_TEST_SUITE_P(AllTargets, FuzzSurface,
                         ::testing::Values("ima_log_entry", "json",
                                           "runtime_policy", "wire",
                                           "checkpoint", "migration",
                                           "telemetry_snapshot",
                                           "incident_snapshot", "scenario",
                                           "policy_delta"));

TEST(FuzzSurfaceTest, RegistryCoversExactlyTheTenSurfaces) {
  ASSERT_EQ(all_targets().size(), 10u);
  for (const FuzzTarget& target : all_targets()) {
    EXPECT_TRUE(target.run != nullptr) << target.name;
    EXPECT_TRUE(target.generate != nullptr) << target.name;
  }
  EXPECT_EQ(find_target("nonsense"), nullptr);
}

TEST(FuzzSurfaceTest, EveryCommittedRegressionReplaysClean) {
  const std::string root = default_corpus_root();
  std::size_t replayed = 0;
  for (const FuzzTarget& target : all_targets()) {
    for (const auto& entry : load_regressions(root, target.name)) {
      const FuzzOutcome outcome = target.run(entry.data);
      EXPECT_NE(outcome.verdict, FuzzVerdict::kViolation)
          << entry.name << ": " << outcome.detail;
      ++replayed;
    }
  }
  EXPECT_GE(replayed, 8u) << "regression corpus went missing";
}

// ------------------------------------------ pinned fuzzer-found fixes

TEST(ParserRegressionTest, WireLengthFieldCannotWrapPastTheBuffer) {
  // u64 length 0xffff... used to wrap pos_ + len and read out of bounds.
  const Bytes huge(8, 0xff);
  netsim::WireReader reader(huge);
  EXPECT_FALSE(reader.string().ok());
  netsim::WireReader reader2(huge);
  EXPECT_FALSE(reader2.bytes().ok());
}

TEST(ParserRegressionTest, QuoteResponseEntryCountBombIsRejected) {
  // A 4-byte count field used to reserve() gigabytes before the first
  // entry read could fail.
  Rng rng(12345);
  Bytes encoded = gen_quote_response(rng, 0).encode();
  // With zero entries the u32 count sits 16 bytes before the end
  // (count | total_log_length u64 | boot_count u32).
  const std::size_t off = encoded.size() - 16;
  for (int i = 0; i < 4; ++i) encoded[off + static_cast<std::size_t>(i)] = 0xff;
  const auto decoded = keylime::QuoteResponse::decode(encoded);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error().code, Errc::kCorrupted);
}

TEST(ParserRegressionTest, JsonRejectsNonFiniteNumbers) {
  // "1e999" parsed to inf; dump() then printed a token nothing re-parses.
  for (const char* text : {"1e999", "-1e999", "1e308888"}) {
    EXPECT_FALSE(json::parse(text).ok()) << text;
  }
  // Large-but-finite must still parse and round trip.
  auto ok = json::parse("1e300");
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(json::parse(ok.value().dump()).ok());
}

TEST(ParserRegressionTest, JsonAsIntClampsOutOfRangeDoubles) {
  // llround on a too-large double is unspecified; as_int clamps instead.
  EXPECT_EQ(json::parse("1e300").value().as_int(), INT64_MAX);
  EXPECT_EQ(json::parse("-1e300").value().as_int(), INT64_MIN);
  EXPECT_EQ(json::parse("41.7").value().as_int(), 42);
}

TEST(ParserRegressionTest, ImaLineRejectsPcrOverflowAndGarbage) {
  const std::string z(64, '0');
  // atoi was undefined on overflow and accepted trailing garbage.
  for (const std::string pcr :
       {"999999999999999999999", "12abc", "", "24", "-1"}) {
    const std::string line =
        pcr + " " + z + " ima-ng sha256:" + z + " /usr/bin/x";
    EXPECT_FALSE(ima::LogEntry::parse(line).ok()) << line;
  }
  EXPECT_TRUE(ima::LogEntry::parse("10 " + z + " ima-ng sha256:" + z +
                                   " /usr/bin/x")
                  .ok());
}

TEST(ParserRegressionTest, ImaLineRejectsControlBytesInPath) {
  const std::string z(64, '0');
  const std::string prefix = "10 " + z + " ima-ng sha256:" + z + " ";
  // An embedded NUL silently truncated to_string()'s rendering, turning
  // an accepted entry into a line that re-parsed differently.
  EXPECT_FALSE(ima::LogEntry::parse(prefix + std::string("/x\0y", 4)).ok());
  EXPECT_FALSE(ima::LogEntry::parse(prefix + "/x\ny").ok());
  EXPECT_FALSE(ima::LogEntry::parse(prefix + "/x\ry").ok());
  // Spaces and non-UTF8 bytes stay legal — real paths contain both.
  EXPECT_TRUE(ima::LogEntry::parse(prefix + "/with space/\x80\xff").ok());
}

TEST(ParserRegressionTest, SnapshotRejectsImpossibleHistograms) {
  const auto parse_snapshot = [](const std::string& text) {
    auto doc = json::parse(text);
    EXPECT_TRUE(doc.ok()) << text;
    return telemetry::snapshot_from_json(doc.value());
  };
  // Negative bucket count would wrap to a huge uint64.
  EXPECT_FALSE(parse_snapshot(R"({"metrics":[{"bounds":[1],"count":3,)"
                              R"("counts":[-1,4],"kind":"histogram",)"
                              R"("max":2,"min":1,"name":"x","sum":5}]})")
                   .ok());
  // Unsorted bounds break percentile()'s bucket interpolation.
  EXPECT_FALSE(parse_snapshot(R"({"metrics":[{"bounds":[0,0],"count":2,)"
                              R"("counts":[1,1,0],"kind":"histogram",)"
                              R"("max":1,"min":0,"name":"x","sum":1}]})")
                   .ok());
  // min/max contradicting the occupied buckets flip edge clamping.
  EXPECT_FALSE(parse_snapshot(R"({"metrics":[{"bounds":[10],"count":2,)"
                              R"("counts":[0,2],"kind":"histogram",)"
                              R"("max":4,"min":1,"name":"x","sum":2}]})")
                   .ok());
  // Bucket counts must sum to count.
  EXPECT_FALSE(parse_snapshot(R"({"metrics":[{"bounds":[1],"count":9,)"
                              R"("counts":[1,1],"kind":"histogram",)"
                              R"("max":2,"min":0,"name":"x","sum":2}]})")
                   .ok());
}

TEST(ParserRegressionTest, PercentilesStayMonotonicAcrossBucketGaps) {
  // Continuous ranks landing between one bucket's last sample and the
  // next bucket's first used to overshoot the bucket edge (p50 > p99).
  const std::string text =
      R"({"metrics":[{"bounds":[0,10],"count":26,"counts":[11,2,13],)"
      R"("kind":"histogram","max":13,"min":0,"name":"x","sum":0}]})";
  auto doc = json::parse(text);
  ASSERT_TRUE(doc.ok());
  auto snap = telemetry::snapshot_from_json(doc.value());
  ASSERT_TRUE(snap.ok());
  const auto& h = snap.value().points.at(0).histogram;
  double prev = h.percentile(0);
  for (double p = 1; p <= 100; p += 1) {
    const double v = h.percentile(p);
    EXPECT_GE(v, prev) << "p" << p;
    prev = v;
  }
}

}  // namespace
}  // namespace cia::testkit
