// Unit tests for the package substrate: archive generation, the release
// stream's calibration targets, the mirror, and apt install semantics.
#include <gtest/gtest.h>

#include <set>

#include "common/stats.hpp"
#include "pkg/apt.hpp"
#include "pkg/archive.hpp"
#include "pkg/cost_model.hpp"
#include "pkg/mirror.hpp"

namespace cia::pkg {
namespace {

ArchiveConfig small_config() {
  ArchiveConfig cfg;
  cfg.base_package_count = 200;
  return cfg;
}

// --------------------------------------------------------------- package

TEST(PackageTest, PriorityGrouping) {
  EXPECT_TRUE(is_high_priority(Priority::kEssential));
  EXPECT_TRUE(is_high_priority(Priority::kRequired));
  EXPECT_TRUE(is_high_priority(Priority::kImportant));
  EXPECT_TRUE(is_high_priority(Priority::kStandard));
  EXPECT_FALSE(is_high_priority(Priority::kOptional));
  EXPECT_FALSE(is_high_priority(Priority::kExtra));
}

TEST(PackageTest, ContentChangesWithRevision) {
  PackageFile f;
  f.path = "/usr/bin/x";
  f.content_rev = 1;
  const auto h1 = f.content_hash("pkg");
  f.content_rev = 2;
  const auto h2 = f.content_hash("pkg");
  EXPECT_NE(h1, h2);
}

TEST(PackageTest, ContentDistinctAcrossPackagesAndPaths) {
  PackageFile f;
  f.path = "/usr/bin/x";
  f.content_rev = 1;
  EXPECT_NE(f.content_hash("a"), f.content_hash("b"));
  PackageFile g = f;
  g.path = "/usr/bin/y";
  EXPECT_NE(f.content_hash("a"), g.content_hash("a"));
}

TEST(PackageTest, ExecutableAccounting) {
  Package pkg;
  pkg.name = "p";
  pkg.files = {{"/usr/bin/a", true, 100, 1},
               {"/usr/lib/p/b.so", true, 200, 1},
               {"/usr/share/doc", false, 50, 1}};
  EXPECT_EQ(pkg.executable_count(), 2u);
  EXPECT_EQ(pkg.executable_bytes(), 300u);
  EXPECT_GT(pkg.download_size(), 0u);
}

// --------------------------------------------------------------- archive

TEST(ArchiveTest, BasePopulationGenerated) {
  Archive archive(small_config(), 1);
  // 200 base packages + kernel image + kernel modules.
  EXPECT_EQ(archive.index().size(), 202u);
  EXPECT_NE(archive.find("bash"), nullptr);
  EXPECT_NE(archive.find("linux-modules-" + archive.current_kernel_version()),
            nullptr);
  EXPECT_GT(archive.total_executable_files(), 1000u);
}

TEST(ArchiveTest, DeterministicForSeed) {
  Archive a(small_config(), 9);
  Archive b(small_config(), 9);
  EXPECT_EQ(a.index().size(), b.index().size());
  auto ea = a.release_day(0);
  auto eb = b.release_day(0);
  EXPECT_EQ(ea.updated, eb.updated);
  EXPECT_EQ(ea.release_time, eb.release_time);
}

TEST(ArchiveTest, ReleaseBumpsRevisions) {
  Archive archive(small_config(), 2);
  ReleaseEvent ev;
  for (int day = 0; ev.updated.empty() && day < 50; ++day) {
    ev = archive.release_day(day);
  }
  ASSERT_FALSE(ev.updated.empty());
  const Package* pkg = archive.find(ev.updated[0]);
  ASSERT_NE(pkg, nullptr);
  EXPECT_GE(pkg->revision, 2u);
}

TEST(ArchiveTest, ReleaseTimeInsideDaytimeWindow) {
  Archive archive(small_config(), 3);
  for (int day = 0; day < 20; ++day) {
    const auto ev = archive.release_day(day);
    EXPECT_GE(ev.release_time, day * kDay + 8 * kHour);
    EXPECT_LT(ev.release_time, day * kDay + 20 * kHour);
  }
}

TEST(ArchiveTest, KernelReleaseAddsPackages) {
  ArchiveConfig cfg = small_config();
  cfg.kernel_release_prob = 1.0;  // force a kernel release every day
  Archive archive(cfg, 4);
  const std::string before = archive.current_kernel_version();
  const auto ev = archive.release_day(0);
  EXPECT_TRUE(ev.kernel_release);
  EXPECT_NE(archive.current_kernel_version(), before);
  EXPECT_NE(archive.find("linux-modules-" + archive.current_kernel_version()),
            nullptr);
}

TEST(ArchiveTest, DailyStreamStatisticsNearPaperTargets) {
  // Fig. 4 targets: mean 16.5 updated packages/day (sd 26.8), 0.9 of them
  // high-priority. Averaged over a year of releases the synthetic stream
  // must land in the neighbourhood.
  Archive archive(ArchiveConfig{}, 12);
  std::vector<double> counts, high_counts;
  for (int day = 0; day < 365; ++day) {
    const auto ev = archive.release_day(day);
    const double n = static_cast<double>(ev.updated.size() + ev.added.size());
    counts.push_back(n);
    double high = 0;
    for (const auto& name : ev.updated) {
      if (is_high_priority(archive.find(name)->priority)) ++high;
    }
    high_counts.push_back(high);
  }
  const Summary s = summarize(counts);
  EXPECT_GT(s.mean, 10.0);
  EXPECT_LT(s.mean, 25.0);
  EXPECT_GT(s.stddev, 10.0) << "the stream must be heavy-tailed";
  const Summary hs = summarize(high_counts);
  EXPECT_GT(hs.mean, 0.2);
  EXPECT_LT(hs.mean, 2.5);
}

TEST(ArchiveTest, WeeklyDistinctLessThanSevenTimesDaily) {
  // Table I: Zipf-weighted repeat updates make a week's worth of distinct
  // updated packages clearly less than 7x the daily mean.
  Archive archive(ArchiveConfig{}, 13);
  double total_events = 0;
  std::set<std::string> distinct_week;
  std::vector<double> weekly_distinct;
  for (int day = 0; day < 28 * 4; ++day) {
    const auto ev = archive.release_day(day);
    total_events += static_cast<double>(ev.updated.size());
    for (const auto& n : ev.updated) distinct_week.insert(n);
    if ((day + 1) % 7 == 0) {
      weekly_distinct.push_back(static_cast<double>(distinct_week.size()));
      distinct_week.clear();
    }
  }
  const double daily_mean = total_events / (28 * 4);
  const double weekly_mean = summarize(weekly_distinct).mean;
  EXPECT_LT(weekly_mean, 6.0 * daily_mean)
      << "weekly batches must coalesce repeat updates";
}

// ---------------------------------------------------------------- mirror

TEST(MirrorTest, SyncSnapshotsIndex) {
  Archive archive(small_config(), 5);
  Mirror mirror(&archive);
  EXPECT_FALSE(mirror.has_synced());
  mirror.sync(5 * kHour);
  EXPECT_TRUE(mirror.has_synced());
  EXPECT_EQ(mirror.index().size(), archive.index().size());
}

TEST(MirrorTest, StaleUntilNextSync) {
  Archive archive(small_config(), 6);
  Mirror mirror(&archive);
  mirror.sync(5 * kHour);

  ReleaseEvent ev;
  for (int day = 0; ev.updated.empty() && day < 50; ++day) {
    ev = archive.release_day(day);
  }
  ASSERT_FALSE(ev.updated.empty());
  const std::string& name = ev.updated[0];
  EXPECT_LT(mirror.find(name)->revision, archive.find(name)->revision)
      << "a release after the sync must not be visible on the mirror";
  mirror.sync(29 * kHour);
  EXPECT_EQ(mirror.find(name)->revision, archive.find(name)->revision);
}

// ------------------------------------------------------------------- apt

struct AptFixture : ::testing::Test {
  AptFixture()
      : ca("mfg", to_bytes("seed")),
        machine(oskernel::MachineConfig{}, ca, &clock),
        archive(small_config(), 7),
        apt(&machine, CostModel{}) {}

  SimClock clock;
  crypto::CertificateAuthority ca;
  oskernel::Machine machine;
  Archive archive;
  AptClient apt;
};

TEST_F(AptFixture, ProvisionInstallsFiles) {
  ASSERT_TRUE(apt.provision(archive.index(), {"bash", "python3"}).ok());
  EXPECT_TRUE(machine.fs().is_file("/usr/bin/bash"));
  EXPECT_TRUE(machine.fs().is_file("/usr/bin/python3"));
  EXPECT_TRUE(apt.is_installed("bash"));
  EXPECT_EQ(apt.installed().size(), 2u);
}

TEST_F(AptFixture, ProvisionUnknownPackageFails) {
  EXPECT_FALSE(apt.provision(archive.index(), {"no-such-pkg"}).ok());
}

TEST_F(AptFixture, InstalledFileHashesMatchManifest) {
  ASSERT_TRUE(apt.provision(archive.index(), {"bash"}).ok());
  const Package* bash = archive.find("bash");
  for (const auto& f : bash->files) {
    const auto st = machine.fs().stat(f.path);
    ASSERT_TRUE(st.ok()) << f.path;
    EXPECT_EQ(st.value().content_hash, f.content_hash("bash"));
    EXPECT_EQ(st.value().executable, f.executable);
  }
}

TEST_F(AptFixture, UpgradeReplacesWithFreshInode) {
  ASSERT_TRUE(apt.provision(archive.index(), {"bash"}).ok());
  const auto before = machine.fs().stat("/usr/bin/bash").value();

  // Release days until bash updates (it is a hot Zipf rank).
  bool updated = false;
  for (int day = 0; day < 200 && !updated; ++day) {
    const auto ev = archive.release_day(day);
    for (const auto& n : ev.updated) updated |= (n == "bash");
  }
  ASSERT_TRUE(updated);

  const auto result = apt.upgrade(archive.index());
  ASSERT_FALSE(result.upgraded.empty());
  const auto after = machine.fs().stat("/usr/bin/bash").value();
  EXPECT_NE(before.id, after.id) << "dpkg rename-over must produce a new inode";
  EXPECT_NE(before.content_hash, after.content_hash);
}

TEST_F(AptFixture, UpgradeNoopWhenCurrent) {
  ASSERT_TRUE(apt.provision(archive.index(), {"bash"}).ok());
  const auto result = apt.upgrade(archive.index());
  EXPECT_TRUE(result.upgraded.empty());
  EXPECT_EQ(result.bytes_downloaded, 0u);
}

TEST_F(AptFixture, UpgradeChargesVirtualTime) {
  ASSERT_TRUE(apt.provision(archive.index(), {"bash"}).ok());
  bool updated = false;
  for (int day = 0; day < 200 && !updated; ++day) {
    const auto ev = archive.release_day(day);
    for (const auto& n : ev.updated) updated |= (n == "bash");
  }
  ASSERT_TRUE(updated);
  const SimTime before = clock.now();
  const auto result = apt.upgrade(archive.index());
  ASSERT_FALSE(result.upgraded.empty());
  EXPECT_GT(clock.now(), before);
}

TEST_F(AptFixture, UnattendedUpgradesFireOncePerDayAfterHour) {
  ASSERT_TRUE(apt.provision(archive.index(), {"bash", "python3"}).ok());
  UnattendedUpgrades daemon(&apt, &archive, 6 * kHour);
  (void)archive.release_day(0);

  EXPECT_FALSE(daemon.tick(5 * kHour).has_value()) << "before the hour";
  EXPECT_TRUE(daemon.tick(7 * kHour).has_value());
  EXPECT_FALSE(daemon.tick(8 * kHour).has_value()) << "once per day";
  EXPECT_TRUE(daemon.tick(kDay + 7 * kHour).has_value());
}

TEST_F(AptFixture, UnattendedUpgradesRespectDisable) {
  UnattendedUpgrades daemon(&apt, &archive, 6 * kHour);
  daemon.set_enabled(false);
  EXPECT_FALSE(daemon.tick(7 * kHour).has_value());
}

// ------------------------------------------------------------ cost model

TEST(CostModelTest, BiggerPackagesCostMore) {
  CostModel cost;
  Package small;
  small.name = "s";
  small.files = {{"/usr/bin/s", true, 10 * 1024, 1}};
  Package large;
  large.name = "l";
  large.files = {{"/usr/bin/l", true, 200 * 1024 * 1024, 1}};
  EXPECT_GT(cost.package_processing_sec(large),
            cost.package_processing_sec(small) * 10);
}

TEST(CostModelTest, PolicyUpdateIncludesMirrorRefresh) {
  CostModel cost;
  EXPECT_GE(cost.policy_update_sec(std::vector<const Package*>{}),
            cost.mirror_refresh_sec);
}

}  // namespace
}  // namespace cia::pkg
