// Cross-backend differential battery for the multi-lane SHA-256
// implementations. Every backend the host supports is held against the
// scalar reference over:
//
//  - every tail length 0..129 (covers 0-3 padded blocks and both sides
//    of every block/padding boundary), as one-segment and two-segment
//    HashInputs,
//  - long-message classes that leave the lane scratch buffers and take
//    the streamed-body / single-stream routes,
//  - lane-count edge cases: n = 0, 1, lane_width±1 for both kernel
//    widths, and a large prime,
//  - the FIPS 180-4 known-answer vectors, pinned per backend (not just
//    backend-vs-backend agreement),
//  - pcr_fold, whose fused two-block kernels bypass sha256_batch
//    entirely.
//
// The battery runs for each supported backend and silently covers less
// on hosts without SHA-NI/AVX2 — the CI forced-scalar job pins the pure
// fallback configuration separately.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "crypto/sha256.hpp"

namespace cia::crypto {
namespace {

// Pin a backend for the duration of a scope, restoring auto-dispatch on
// the way out so test order never leaks a forced backend.
class BackendGuard {
 public:
  explicit BackendGuard(Sha256Backend b) { ok_ = force_backend(b); }
  ~BackendGuard() { force_backend(Sha256Backend::kAuto); }
  bool ok() const { return ok_; }

 private:
  bool ok_ = false;
};

std::vector<Sha256Backend> supported_backends() {
  std::vector<Sha256Backend> out = {Sha256Backend::kScalar};
  for (Sha256Backend b : {Sha256Backend::kShaNi, Sha256Backend::kShaNi2,
                          Sha256Backend::kAvx2}) {
    if (sha256_backend_supported(b)) out.push_back(b);
  }
  return out;
}

const char* backend_label(Sha256Backend b) {
  switch (b) {
    case Sha256Backend::kScalar: return "scalar";
    case Sha256Backend::kShaNi: return "shani";
    case Sha256Backend::kShaNi2: return "shani2";
    case Sha256Backend::kAvx2: return "avx2";
    case Sha256Backend::kAuto: return "auto";
  }
  return "?";
}

// Deterministic filler so failures reproduce byte-for-byte.
std::vector<std::uint8_t> pattern_bytes(std::size_t len, std::uint32_t seed) {
  std::vector<std::uint8_t> out(len);
  std::uint32_t x = seed * 2654435761u + 1;
  for (std::size_t i = 0; i < len; ++i) {
    x ^= x << 13;
    x ^= x >> 17;
    x ^= x << 5;
    out[i] = static_cast<std::uint8_t>(x);
  }
  return out;
}

HashInput split_input(const std::vector<std::uint8_t>& msg, std::size_t cut) {
  HashInput in;
  in.a = msg.data();
  in.a_len = cut;
  in.b = msg.data() + cut;
  in.b_len = msg.size() - cut;
  return in;
}

// Scalar-reference digests for a set of inputs.
std::vector<Digest> scalar_reference(const std::vector<HashInput>& in) {
  BackendGuard guard(Sha256Backend::kScalar);
  EXPECT_TRUE(guard.ok());
  std::vector<Digest> out(in.size());
  sha256_batch(in.data(), in.size(), out.data());
  return out;
}

void expect_backend_matches(Sha256Backend b, const std::vector<HashInput>& in,
                            const std::vector<Digest>& want,
                            const char* what) {
  BackendGuard guard(b);
  ASSERT_TRUE(guard.ok()) << backend_label(b);
  std::vector<Digest> got(in.size());
  sha256_batch(in.data(), in.size(), got.data());
  for (std::size_t i = 0; i < in.size(); ++i) {
    ASSERT_EQ(digest_hex(got[i]), digest_hex(want[i]))
        << what << " backend=" << backend_label(b) << " input#" << i
        << " a_len=" << in[i].a_len << " b_len=" << in[i].b_len;
  }
}

TEST(Sha256BackendTest, EveryTailLengthBothSegmentShapes) {
  // One message per (length, split) pair, all hashed as one batch so the
  // harness also sees mixed block counts in a single call.
  std::vector<std::vector<std::uint8_t>> storage;
  storage.reserve(130);
  std::vector<HashInput> inputs;
  for (std::size_t len = 0; len <= 129; ++len) {
    storage.push_back(pattern_bytes(len, static_cast<std::uint32_t>(len)));
  }
  for (std::size_t len = 0; len <= 129; ++len) {
    const auto& msg = storage[len];
    // One-segment, two-segment at an uneven cut, and two-segment at the
    // template-hash shape (32-byte first segment) when long enough.
    inputs.push_back(split_input(msg, msg.size()));
    inputs.push_back(split_input(msg, msg.size() / 3));
    if (msg.size() >= 32) inputs.push_back(split_input(msg, 32));
  }
  const std::vector<Digest> want = scalar_reference(inputs);
  for (Sha256Backend b : supported_backends()) {
    expect_backend_matches(b, inputs, want, "tail-lengths");
  }
}

TEST(Sha256BackendTest, LongMessagesLeaveTheLaneScratch) {
  // 503 is the largest payload that still fits a lane buffer; everything
  // beyond takes the streamed-body (shani2, single-segment) or
  // single-stream route. Odd counts of long messages exercise the
  // unpaired-leftover path.
  const std::vector<std::size_t> lengths = {503, 504, 511, 512, 1000,
                                            4096, 65537};
  std::vector<std::vector<std::uint8_t>> storage;
  std::vector<HashInput> inputs;
  for (std::size_t len : lengths) {
    storage.push_back(pattern_bytes(len, static_cast<std::uint32_t>(len)));
  }
  for (std::size_t i = 0; i < lengths.size(); ++i) {
    const auto& msg = storage[i];
    inputs.push_back(split_input(msg, msg.size()));  // single-segment
    inputs.push_back(split_input(msg, 0));           // b-only single span
    inputs.push_back(split_input(msg, 100));         // two-segment long
  }
  const std::vector<Digest> want = scalar_reference(inputs);
  for (Sha256Backend b : supported_backends()) {
    expect_backend_matches(b, inputs, want, "long-messages");
  }
}

TEST(Sha256BackendTest, LaneCountEdgeCases) {
  // n around both kernel widths (2-wide SHA-NI, 8-wide AVX2) plus a
  // large prime so every batch ends with a ragged partial bucket.
  const auto base = pattern_bytes(4096, 7);
  for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{2},
                              std::size_t{3}, std::size_t{7}, std::size_t{8},
                              std::size_t{9}, std::size_t{16}, std::size_t{17},
                              std::size_t{127}}) {
    std::vector<HashInput> inputs;
    for (std::size_t i = 0; i < n; ++i) {
      // Lengths cycle through block classes so buckets fill unevenly.
      const std::size_t len = (i * 37) % 200;
      HashInput in;
      in.a = base.data() + i;
      in.a_len = std::min<std::size_t>(len, 32);
      in.b = base.data() + 64 + i;
      in.b_len = len - in.a_len;
      inputs.push_back(in);
    }
    const std::vector<Digest> want = scalar_reference(inputs);
    for (Sha256Backend b : supported_backends()) {
      expect_backend_matches(b, inputs, want, "lane-count");
    }
  }
}

TEST(Sha256BackendTest, FipsKnownAnswersPinnedPerBackend) {
  const std::string abc = "abc";
  const std::string two_block =
      "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq";
  const std::string empty;
  struct Kat {
    const std::string* msg;
    const char* hex;
  };
  const Kat kats[] = {
      {&empty,
       "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"},
      {&abc,
       "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"},
      {&two_block,
       "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"},
  };
  for (Sha256Backend b : supported_backends()) {
    BackendGuard guard(b);
    ASSERT_TRUE(guard.ok());
    for (const Kat& kat : kats) {
      // Through the streaming context…
      EXPECT_EQ(digest_hex(sha256(*kat.msg)), kat.hex) << backend_label(b);
      // …and through the batch API.
      HashInput in;
      in.a = reinterpret_cast<const std::uint8_t*>(kat.msg->data());
      in.a_len = kat.msg->size();
      Digest out;
      sha256_batch(&in, 1, &out);
      EXPECT_EQ(digest_hex(out), kat.hex) << backend_label(b);
    }
  }
}

TEST(Sha256BackendTest, PcrFoldFusedKernelsMatchStreaming) {
  // pcr_fold has dedicated fused kernels (constant-pad schedule) that
  // never touch sha256_batch; pin them against the plain streaming
  // two-segment hash on every backend.
  for (Sha256Backend b : supported_backends()) {
    BackendGuard guard(b);
    ASSERT_TRUE(guard.ok());
    for (std::uint32_t seed = 0; seed < 16; ++seed) {
      const auto acc_bytes = pattern_bytes(32, seed * 2 + 1);
      const auto t_bytes = pattern_bytes(32, seed * 2 + 2);
      Digest acc, t;
      std::copy(acc_bytes.begin(), acc_bytes.end(), acc.begin());
      std::copy(t_bytes.begin(), t_bytes.end(), t.begin());
      const Digest want =
          sha256_pair(acc.data(), acc.size(), t.data(), t.size());
      EXPECT_EQ(digest_hex(pcr_fold(acc, t)), digest_hex(want))
          << backend_label(b) << " seed=" << seed;
    }
  }
}

TEST(Sha256BackendTest, BackendControls) {
  // kAuto always pins successfully (it clears the pin).
  EXPECT_TRUE(force_backend(Sha256Backend::kAuto));
  EXPECT_TRUE(sha256_backend_supported(Sha256Backend::kScalar));
  {
    BackendGuard guard(Sha256Backend::kScalar);
    ASSERT_TRUE(guard.ok());
    EXPECT_EQ(sha256_active_backend(), Sha256Backend::kScalar);
    EXPECT_STREQ(sha256_backend_name(), "scalar");
    EXPECT_FALSE(sha256_hw_accelerated());
  }
  // Unsupported backends refuse the pin and leave dispatch unchanged.
  for (Sha256Backend b : {Sha256Backend::kShaNi, Sha256Backend::kShaNi2,
                          Sha256Backend::kAvx2}) {
    if (!sha256_backend_supported(b)) {
      const Sha256Backend before = sha256_active_backend();
      EXPECT_FALSE(force_backend(b));
      EXPECT_EQ(sha256_active_backend(), before);
    }
  }
  // The active backend name is one of the known labels.
  const std::string name = sha256_backend_name();
  EXPECT_TRUE(name == "scalar" || name == "shani" || name == "shani2" ||
              name == "avx2")
      << name;
}

}  // namespace
}  // namespace cia::crypto
