// Container runtime tests: the generalization of the SNAP false positive
// (§III-B) — containerized execution is either invisible to IMA (stock
// policy skips overlayfs, P3) or measured under truncated paths that a
// host-path policy cannot match.
#include <gtest/gtest.h>

#include "oskernel/container.hpp"

namespace cia::oskernel {
namespace {

ContainerImage nginx_image() {
  ContainerImage image;
  image.name = "nginx:1.25";
  image.files = {{"/usr/sbin/nginx", "elf:container-nginx", true},
                 {"/etc/nginx/nginx.conf", "conf", false}};
  return image;
}

struct ContainerRig : ::testing::Test {
  ContainerRig()
      : ca("mfg", to_bytes("seed")),
        machine(MachineConfig{}, ca, &clock),
        runtime(&machine) {}

  SimClock clock;
  crypto::CertificateAuthority ca;
  Machine machine;
  ContainerRuntime runtime;
};

TEST_F(ContainerRig, CreatePopulatesOverlayMount) {
  auto root = runtime.create("web", nginx_image());
  ASSERT_TRUE(root.ok());
  EXPECT_TRUE(machine.fs().is_file(root.value() + "/usr/sbin/nginx"));
  EXPECT_EQ(machine.fs().mount_of(root.value() + "/usr/sbin/nginx").type,
            vfs::FsType::kOverlayfs);
  EXPECT_EQ(runtime.running().size(), 1u);
}

TEST_F(ContainerRig, DuplicateIdRejected) {
  ASSERT_TRUE(runtime.create("web", nginx_image()).ok());
  EXPECT_FALSE(runtime.create("web", nginx_image()).ok());
}

TEST_F(ContainerRig, DestroyRemovesFiles) {
  ASSERT_TRUE(runtime.create("web", nginx_image()).ok());
  ASSERT_TRUE(runtime.destroy("web").ok());
  EXPECT_FALSE(machine.fs().exists("/var/lib/containers/web/usr/sbin/nginx"));
  EXPECT_TRUE(runtime.running().empty());
}

TEST_F(ContainerRig, ExecResolvesContainerPath) {
  ASSERT_TRUE(runtime.create("web", nginx_image()).ok());
  EXPECT_TRUE(runtime.exec("web", "/usr/sbin/nginx").ok());
  EXPECT_FALSE(runtime.exec("web", "/no/such/binary").ok());
  EXPECT_FALSE(runtime.exec("ghost", "/usr/sbin/nginx").ok());
  EXPECT_FALSE(runtime.exec("web", "relative/path").ok());
}

TEST_F(ContainerRig, StockImaPolicyIsBlindToContainers_P3) {
  // overlayfs is on the stock skip list: container executions produce no
  // measurement at all.
  ASSERT_TRUE(runtime.create("web", nginx_image()).ok());
  const std::size_t before = machine.ima().log().size();
  ASSERT_TRUE(runtime.exec("web", "/usr/sbin/nginx").ok());
  EXPECT_EQ(machine.ima().log().size(), before)
      << "stock policy skips overlayfs wholesale";
}

TEST_F(ContainerRig, EnrichedImaSeesTruncatedContainerPaths) {
  MachineConfig cfg;
  cfg.ima_policy = ima::ImaPolicy::enriched();
  Machine enriched_machine(cfg, ca, &clock);
  ContainerRuntime enriched_runtime(&enriched_machine);
  ASSERT_TRUE(enriched_runtime.create("web", nginx_image()).ok());
  const std::size_t before = enriched_machine.ima().log().size();
  ASSERT_TRUE(enriched_runtime.exec("web", "/usr/sbin/nginx").ok());
  ASSERT_EQ(enriched_machine.ima().log().size(), before + 1);
  EXPECT_EQ(enriched_machine.ima().log().back().path, "/usr/sbin/nginx")
      << "the measurement carries the container-relative path — the exact "
         "SNAP phenomenology of §III-B, so a host-path policy cannot match";
}

TEST_F(ContainerRig, ContainerBinaryCollidingWithHostPathIsAmbiguous) {
  // The container ships /usr/bin/bash too; its measurement is
  // indistinguishable by path from the host's bash — only the hash
  // differs. This is why the paper recommends disabling containerized
  // execution on attested nodes or scrubbing prefixes consistently.
  MachineConfig cfg;
  cfg.ima_policy = ima::ImaPolicy::enriched();
  Machine m(cfg, ca, &clock);
  ASSERT_TRUE(m.fs().create_file("/usr/bin/bash", to_bytes("elf:host-bash"),
                                 true).ok());
  ContainerRuntime rt(&m);
  ContainerImage image;
  image.name = "alpine";
  image.files = {{"/usr/bin/bash", "elf:container-bash", true}};
  ASSERT_TRUE(rt.create("box", image).ok());

  ASSERT_TRUE(m.exec("/usr/bin/bash").ok());
  ASSERT_TRUE(rt.exec("box", "/usr/bin/bash").ok());
  const auto& log = m.ima().log();
  ASSERT_GE(log.size(), 3u);
  EXPECT_EQ(log[log.size() - 2].path, log[log.size() - 1].path)
      << "same recorded path";
  EXPECT_NE(log[log.size() - 2].file_hash, log[log.size() - 1].file_hash)
      << "different content — a hash-mismatch FP against a host policy";
}

}  // namespace
}  // namespace cia::oskernel
