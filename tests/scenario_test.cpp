// The scenario differential suite: proof that the DSL retired the
// hand-coded harnesses without changing a single byte of their output.
//
// Three layers:
//  - Differential pins: a scenario-file run must reproduce the legacy
//    entry points (run_alert_storm, run_churn_campaign,
//    run_chaos_experiment) byte for byte — same incident stream, same
//    per-agent audit-chain digests, same canonical report — both via
//    the published lowerings and via hand-built option structs that
//    bypass them.
//  - Schema rejections: every malformed fixture fails with the exact
//    path-qualified message (never silent defaulting), pinned as a
//    table so a reworded rejection is a reviewed diff.
//  - Generator property: every testkit::gen_scenario document validates
//    and hits the to_json/parse fixed point; failures are shrunk to a
//    minimal reproducer before being reported.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <string>

#include "experiments/chaos_experiment.hpp"
#include "experiments/pool_experiment.hpp"
#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"
#include "testkit/generators.hpp"
#include "testkit/shrink.hpp"

namespace cia::scenario {
namespace {

// A storm small enough for a test but big enough to manufacture every
// root-cause class (bad digests + staleness + transport).
constexpr char kSmallStorm[] = R"({
  "version": 1,
  "name": "diff-storm",
  "kind": "storm",
  "seed": 42,
  "fleet": {"agents": 40, "shards": 3, "binaries_per_machine": 12},
  "faults": {"drop_rate": 0.1},
  "storm": {"warmup_rounds": 1, "storm_rounds": 4, "round_period": 60,
            "bad_paths": 2}
})";

constexpr char kSmallChurn[] = R"({
  "version": 1,
  "name": "diff-churn",
  "kind": "churn",
  "seed": 42,
  "fleet": {"agents": 16, "shards": 3},
  "resize_at": [{"round": 2, "shards": 5}],
  "churn": {"rounds": 6, "round_period": 120}
})";

// A staged-rollout storm: the bad revision goes to a canary slice
// instead of a fleet-wide bulk push, bakes under a zero alert budget,
// and must roll back without ever touching a non-canary agent.
constexpr char kSmallRolloutStorm[] = R"({
  "version": 1,
  "name": "diff-rollout-storm",
  "kind": "storm",
  "seed": 99,
  "fleet": {"agents": 30, "shards": 3, "binaries_per_machine": 12},
  "storm": {"warmup_rounds": 1, "storm_rounds": 4, "round_period": 60,
            "bad_paths": 2},
  "policy_rollout": {"canary_fraction": 0.3, "bake_rounds": 3,
                     "alert_budget": 0, "seed": 7}
})";

// A benign delta revision staged on a fleet run: bakes clean and must
// promote fleet-wide through the zero-build reuse path.
constexpr char kSmallRolloutFleet[] = R"({
  "version": 1,
  "name": "diff-rollout-fleet",
  "kind": "fleet",
  "seed": 77,
  "fleet": {"agents": 20, "shards": 3, "binaries_per_machine": 12},
  "fleet_run": {"rounds": 5},
  "policy_rollout": {"canary_fraction": 0.25, "bake_rounds": 2,
                     "alert_budget": 0, "seed": 11}
})";

Scenario must_parse(const std::string& text) {
  auto parsed = Scenario::parse(text);
  EXPECT_TRUE(parsed.ok()) << (parsed.ok() ? "" : parsed.error().message);
  return parsed.ok() ? parsed.value() : Scenario{};
}

ScenarioOutcome must_run(const Scenario& sc, bool self_check = false) {
  RunOptions options;
  options.self_check = self_check;
  auto run = run_scenario(sc, options);
  EXPECT_TRUE(run.ok()) << (run.ok() ? "" : run.error().message);
  return run.ok() ? run.value() : ScenarioOutcome{};
}

// ------------------------------------------------- differential pins

TEST(ScenarioDifferentialTest, StormFileReplaysLegacyHarnessByteForByte) {
  const Scenario sc = must_parse(kSmallStorm);
  const ScenarioOutcome outcome = must_run(sc);

  // Through the published lowering.
  const experiments::StormReport legacy =
      experiments::run_alert_storm(lower_storm(sc));
  ASSERT_TRUE(legacy.status.ok()) << legacy.status.error().message;
  EXPECT_EQ(outcome.incident_stream, legacy.incident_stream);
  EXPECT_EQ(outcome.report.dump(), storm_report_json(legacy).dump());

  // And through options built by hand, proving the lowering itself maps
  // the file onto what a cia_sim --storm invocation used to construct.
  experiments::StormOptions manual;
  manual.seed = 42;
  manual.agents = 40;
  manual.shards = 3;
  manual.binaries_per_machine = 12;
  manual.warmup_rounds = 1;
  manual.storm_rounds = 4;
  manual.round_period = 60;
  manual.bad_paths = 2;
  manual.drop_rate = 0.1;
  const experiments::StormReport by_hand = experiments::run_alert_storm(manual);
  ASSERT_TRUE(by_hand.status.ok());
  EXPECT_EQ(outcome.incident_stream, by_hand.incident_stream);
}

TEST(ScenarioDifferentialTest, ChurnFileReplaysLegacyCampaignChains) {
  const Scenario sc = must_parse(kSmallChurn);
  const ScenarioOutcome outcome = must_run(sc);

  // The legacy path: a PoolFleet plus run_churn_campaign, exactly as
  // cia_sim --churn hand-assembled it (campaign seed = scenario ^ 0xc4).
  experiments::PoolFleet fleet(lower_fleet(sc));
  ASSERT_TRUE(fleet.init_status().ok());
  ASSERT_TRUE(fleet.push_fleet_policy().ok());
  experiments::ChurnCampaignOptions campaign;
  campaign.seed = 42 ^ 0xc4u;
  campaign.rounds = 6;
  campaign.round_period = 120;
  campaign.resize_at = {{2, 5}};
  const experiments::ChurnReport legacy =
      experiments::run_churn_campaign(fleet, campaign);
  ASSERT_TRUE(legacy.status.ok());

  const std::map<std::string, std::string> legacy_digests =
      experiments::per_agent_chain_digests(fleet.pool());
  EXPECT_EQ(outcome.chain_digests, legacy_digests);
  EXPECT_FALSE(legacy_digests.empty());

  // The lowering agrees with the hand-built campaign options.
  const experiments::ChurnCampaignOptions lowered = lower_churn(sc);
  EXPECT_EQ(lowered.seed, campaign.seed);
  EXPECT_EQ(lowered.rounds, campaign.rounds);
  EXPECT_EQ(lowered.round_period, campaign.round_period);
  EXPECT_EQ(lowered.resize_at, campaign.resize_at);
}

TEST(ScenarioDifferentialTest, ChaosFilesReplayLegacyReports) {
  for (const char* script : {"wan-loss", "flaky-window"}) {
    Scenario sc;
    sc.name = script;
    sc.kind = Kind::kChaos;
    sc.seed = 42;
    sc.chaos.script = script;
    sc.chaos.days = 3;
    const ScenarioOutcome outcome = must_run(sc);

    const experiments::ChaosReport legacy =
        experiments::run_chaos_experiment(lower_chaos(sc));
    ASSERT_TRUE(legacy.valid) << script;
    EXPECT_EQ(outcome.report.dump(), chaos_report_json(legacy).dump())
        << script;
    EXPECT_TRUE(outcome.ok()) << script;
  }
}

TEST(ScenarioDifferentialTest, SameFileAndSeedIsDeterministic) {
  const Scenario sc = must_parse(kSmallStorm);
  const ScenarioOutcome a = must_run(sc);
  const ScenarioOutcome b = must_run(sc);
  EXPECT_EQ(a.report.dump(), b.report.dump());
  EXPECT_EQ(a.incident_stream, b.incident_stream);

  // A seed override reroutes through the same deterministic path: two
  // reseeded runs agree with each other byte for byte. (The stream is
  // not required to differ from seed 42 — fleet image content is a pure
  // function of the path, so small storms can coincide across seeds.)
  RunOptions reseeded;
  reseeded.seed = 7;
  auto c = run_scenario(sc, reseeded);
  auto d = run_scenario(sc, reseeded);
  ASSERT_TRUE(c.ok() && d.ok());
  EXPECT_EQ(c.value().seed, 7u);
  EXPECT_EQ(c.value().incident_stream, d.value().incident_stream);
  EXPECT_EQ(c.value().report.dump(), d.value().report.dump());
}

TEST(ScenarioDifferentialTest, StormSelfChecksHoldOnTheSmallStorm) {
  const Scenario sc = must_parse(kSmallStorm);
  const ScenarioOutcome outcome = must_run(sc, /*self_check=*/true);
  ASSERT_EQ(outcome.checks.size(), 5u);
  for (const SelfCheck& check : outcome.checks) {
    EXPECT_TRUE(check.ok) << check.name << ": " << check.detail;
  }
}

// --------------------------------------------------- rollout scenarios

TEST(ScenarioRolloutTest, StormRolloutRollsBackAndContainsTheBadRevision) {
  const Scenario sc = must_parse(kSmallRolloutStorm);
  const ScenarioOutcome outcome = must_run(sc, /*self_check=*/true);

  // 4 rollout contracts + partition/resize invariance.
  ASSERT_EQ(outcome.checks.size(), 6u);
  for (const SelfCheck& check : outcome.checks) {
    EXPECT_TRUE(check.ok) << check.name << ": " << check.detail;
  }
  const json::Value* state = outcome.report.find("rollout_state");
  ASSERT_NE(state, nullptr);
  EXPECT_EQ(state->as_string(), "rolled_back");
  const json::Value* escaped = outcome.report.find("non_canary_bad_appraisals");
  ASSERT_NE(escaped, nullptr);
  EXPECT_EQ(escaped->as_int(), 0);
}

TEST(ScenarioRolloutTest, FleetRolloutPromotesTheStagedRevision) {
  const Scenario sc = must_parse(kSmallRolloutFleet);
  const ScenarioOutcome outcome = must_run(sc, /*self_check=*/true);

  ASSERT_EQ(outcome.checks.size(), 4u);
  for (const SelfCheck& check : outcome.checks) {
    EXPECT_TRUE(check.ok) << check.name << ": " << check.detail;
  }
  const json::Value* state = outcome.report.find("rollout_state");
  ASSERT_NE(state, nullptr);
  EXPECT_EQ(state->as_string(), "promoted");
}

TEST(ScenarioRolloutTest, RolloutRunsAreDeterministic) {
  const Scenario sc = must_parse(kSmallRolloutStorm);
  const ScenarioOutcome a = must_run(sc);
  const ScenarioOutcome b = must_run(sc);
  EXPECT_EQ(a.report.dump(), b.report.dump());
  EXPECT_EQ(a.incident_stream, b.incident_stream);
}

// A legacy storm (no rollout section) must not grow rollout report keys:
// its canonical report stays byte-compatible with pre-rollout builds.
TEST(ScenarioRolloutTest, LegacyStormReportCarriesNoRolloutKeys) {
  const Scenario sc = must_parse(kSmallStorm);
  const ScenarioOutcome outcome = must_run(sc);
  EXPECT_EQ(outcome.report.find("rollout_state"), nullptr);
  EXPECT_EQ(outcome.report.find("canary_agents"), nullptr);
}

// ------------------------------------------------ checked-in scenarios

TEST(ScenarioFilesTest, EveryCheckedInScenarioValidates) {
  const std::string dir = default_scenario_dir();
  const std::vector<std::string> files = list_scenario_files(dir);
  EXPECT_GE(files.size(), 11u) << "scenario directory went missing: " << dir;
  for (const std::string& file : files) {
    auto loaded = load_file(file);
    EXPECT_TRUE(loaded.ok())
        << file << ": " << (loaded.ok() ? "" : loaded.error().message);
    if (!loaded.ok()) continue;
    // Checked-in files must already be in canonical field order-agnostic
    // form: re-serializing and re-validating must agree.
    const std::string canonical = loaded.value().to_json().dump();
    auto re = Scenario::parse(canonical);
    ASSERT_TRUE(re.ok()) << file;
    EXPECT_EQ(re.value().to_json().dump(), canonical) << file;
  }
}

// --------------------------------------------------- schema rejections

TEST(ScenarioSchemaTest, EveryInvalidFixtureFailsWithThePinnedMessage) {
  struct Fixture {
    const char* label;
    const char* text;
    const char* message;
  };
  static const Fixture kFixtures[] = {
      {"missing version",
       R"({"name":"x","kind":"attacks","attacks":{}})",
       "$.version: required field is missing"},
      {"future version",
       R"({"version":2,"name":"x","kind":"attacks","attacks":{}})",
       "$.version: unsupported scenario version 2 (this build reads "
       "version 1)"},
      {"bad name charset",
       R"({"version":1,"name":"No Spaces!","kind":"attacks","attacks":{}})",
       "$.name: must be 1-80 characters of [a-z0-9._-]"},
      {"unknown kind",
       R"({"version":1,"name":"x","kind":"stress","attacks":{}})",
       "$.kind: unknown kind \"stress\" (expected chaos, churn, storm, "
       "fleet, or attacks)"},
      {"unknown top-level field",
       R"({"version":1,"name":"x","kind":"attacks","attacks":{},"sharts":4})",
       "$: unknown field \"sharts\""},
      {"unknown nested field",
       R"({"version":1,"name":"x","kind":"chaos",
           "chaos":{"script":"wan-loss","dayz":3}})",
       "$.chaos: unknown field \"dayz\""},
      {"non-integer where integer expected",
       R"({"version":1,"name":"x","kind":"chaos",
           "chaos":{"script":"wan-loss","days":3.5}})",
       "$.chaos.days: must be an integer"},
      {"out-of-range integer",
       R"({"version":1,"name":"x","kind":"chaos",
           "chaos":{"script":"wan-loss","days":1}})",
       "$.chaos.days: must be between 2 and 366"},
      {"unknown chaos script",
       R"({"version":1,"name":"x","kind":"chaos",
           "chaos":{"script":"meteor-strike"}})",
       "$.chaos.script: unknown chaos script \"meteor-strike\" (see "
       "cia_chaos list)"},
      {"section not valid for kind",
       R"({"version":1,"name":"x","kind":"attacks","attacks":{},
           "storm":{"storm_rounds":2}})",
       "$.storm: not valid for kind \"attacks\""},
      {"missing required kind section",
       R"({"version":1,"name":"x","kind":"storm"})",
       "$.storm: required for kind \"storm\""},
      {"storm with explicit retrying transport",
       R"({"version":1,"name":"x","kind":"storm",
           "fleet":{"retrying_transport":true},"storm":{"storm_rounds":2}})",
       "$.fleet.retrying_transport: kind \"storm\" requires false (retry "
       "backoff shifts shard clocks by co-residency, breaking "
       "incident-stream partition invariance)"},
      {"storm with timeout faults",
       R"({"version":1,"name":"x","kind":"storm",
           "faults":{"timeout_rate":0.1},"storm":{"storm_rounds":2}})",
       "$.faults.timeout_rate: kind \"storm\" allows drop faults only "
       "(time-free chaos keeps alert timestamps partition-invariant)"},
      {"storm bad_paths over image size",
       R"({"version":1,"name":"x","kind":"storm",
           "fleet":{"binaries_per_machine":4},
           "storm":{"storm_rounds":2,"bad_paths":5}})",
       "$.storm.bad_paths: exceeds fleet.binaries_per_machine (4)"},
      {"storm with two resizes",
       R"({"version":1,"name":"x","kind":"storm","storm":{"storm_rounds":4},
           "resize_at":[{"round":1,"shards":2},{"round":2,"shards":3}]})",
       "$.resize_at: kind \"storm\" supports at most one resize event"},
      {"storm resize after the storm",
       R"({"version":1,"name":"x","kind":"storm","storm":{"storm_rounds":4},
           "resize_at":[{"round":4,"shards":2}]})",
       "$.resize_at[0].round: must be < storm.storm_rounds (4)"},
      {"churn resize after the campaign",
       R"({"version":1,"name":"x","kind":"churn","churn":{"rounds":3},
           "resize_at":[{"round":1,"shards":2},{"round":3,"shards":4}]})",
       "$.resize_at[1].round: must be < churn.rounds (3)"},
      {"resize entry missing a field",
       R"({"version":1,"name":"x","kind":"churn","churn":{"rounds":3},
           "resize_at":[{"round":1}]})",
       "$.resize_at[0].shards: required field is missing"},
      {"timeouts with zero latency",
       R"({"version":1,"name":"x","kind":"fleet","fleet_run":{"rounds":2},
           "faults":{"timeout_rate":0.1,"timeout_latency":0}})",
       "$.faults.timeout_latency: must be > 0 when timeout_rate is set"},
      {"resize_at not an array",
       R"({"version":1,"name":"x","kind":"churn","churn":{"rounds":3},
           "resize_at":7})",
       "$.resize_at: must be an array"},
      {"rollout on a chaos scenario",
       R"({"version":1,"name":"x","kind":"chaos",
           "chaos":{"script":"wan-loss"},"policy_rollout":{}})",
       "$.policy_rollout: not valid for kind \"chaos\""},
      {"rollout canary fraction out of range",
       R"({"version":1,"name":"x","kind":"storm","storm":{"storm_rounds":2},
           "policy_rollout":{"canary_fraction":1.5}})",
       "$.policy_rollout.canary_fraction: must be between 1e-06 and 1"},
      {"rollout unknown field",
       R"({"version":1,"name":"x","kind":"storm","storm":{"storm_rounds":2},
           "policy_rollout":{"blast_radius":3}})",
       "$.policy_rollout: unknown field \"blast_radius\""},
      {"fleet rollout that can never promote",
       R"({"version":1,"name":"x","kind":"fleet","fleet_run":{"rounds":3},
           "policy_rollout":{"bake_rounds":3}})",
       "$.policy_rollout.bake_rounds: must be < fleet_run.rounds (3) or the "
       "staged revision can never promote"},
  };
  for (const Fixture& fixture : kFixtures) {
    auto parsed = Scenario::parse(fixture.text);
    ASSERT_FALSE(parsed.ok()) << fixture.label << " was accepted";
    EXPECT_EQ(parsed.error().message, fixture.message) << fixture.label;
  }
}

// ---------------------------------------------- generator round trips

TEST(ScenarioGeneratorTest, EveryGeneratedScenarioValidatesAndFixes) {
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    Rng rng(seed);
    const std::string text = testkit::gen_scenario(rng).dump();
    auto parsed = Scenario::parse(text);
    if (!parsed.ok()) {
      // Shrink the reproducer before failing: the minimal prefix that
      // still rejects is what goes in the bug report.
      const std::string minimal = testkit::shrink_text(
          text, [](const std::string& candidate) {
            return !Scenario::parse(candidate).ok();
          });
      FAIL() << "seed " << seed << " rejected: " << parsed.error().message
             << "\nminimal reproducer: " << minimal;
    }
    const std::string canonical = parsed.value().to_json().dump();
    auto re = Scenario::parse(canonical);
    ASSERT_TRUE(re.ok()) << "seed " << seed << " canonical form rejected: "
                         << re.error().message;
    EXPECT_EQ(re.value().to_json().dump(), canonical) << "seed " << seed;
  }
}

}  // namespace
}  // namespace cia::scenario
