// Robustness suites: the headline zero-false-positive claim across seeds,
// attestation under a lossy network, and protocol edge cases.
#include <gtest/gtest.h>

#include "core/policy_analyzer.hpp"
#include "core/update_orchestrator.hpp"
#include "experiments/chaos_experiment.hpp"
#include "experiments/fp_experiment.hpp"
#include "experiments/testbed.hpp"
#include "experiments/workload.hpp"

namespace cia::experiments {
namespace {

// ------------------------------------------- zero-FP claim, seed sweep

class DynamicSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DynamicSeedSweep, FiveDayRunStaysGreen) {
  DynamicRunOptions options;
  options.seed = GetParam();
  options.days = 5;
  options.archive.base_package_count = 130;
  options.provision_extra = 20;
  const auto result = run_dynamic_policy_experiment(options);
  EXPECT_EQ(result.false_positives, 0u)
      << "seed " << GetParam()
      << ": the dynamic policy scheme must hold for any release stream";
  EXPECT_EQ(result.updates_run, 5);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DynamicSeedSweep,
                         ::testing::Values(7, 99, 1234, 5150, 424242));

// -------------------------------------- orchestrator coverage invariant

class OrchestratorCoverageProperty
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OrchestratorCoverageProperty, PolicyAlwaysCoversTheMachine) {
  // Invariant of the §III-C scheme: after every update cycle, every
  // package-managed executable on the machine validates against the
  // pushed policy — no stale hashes, ever. (The only uncovered file is
  // the bootloader, which measured boot covers instead of IMA.)
  TestbedOptions options;
  options.seed = GetParam();
  options.provision_extra = 20;
  options.archive.base_package_count = 120;
  Testbed bed(options);
  ASSERT_TRUE(bed.enroll().ok());
  core::DynamicPolicyGenerator generator(&bed.mirror, core::GeneratorConfig{});
  core::UpdateOrchestrator orchestrator(&bed.mirror, &generator, &bed.verifier,
                                        &bed.clock);
  orchestrator.manage({&bed.machine, &bed.apt, bed.agent_id()});
  ASSERT_TRUE(orchestrator.bootstrap().ok());

  for (int day = 0; day < 6; ++day) {
    (void)bed.archive.release_day(day);
    bed.clock.advance_to((day + 1) * kDay + 5 * kHour);
    auto report = orchestrator.run_cycle();
    ASSERT_TRUE(report.ok());

    const auto coverage =
        core::analyze_coverage(bed.machine, orchestrator.policy());
    EXPECT_EQ(coverage.stale_hash, 0u)
        << "seed " << GetParam() << " day " << day << ": "
        << coverage.to_string();
    EXPECT_LE(coverage.uncovered, 1u)
        << "only the bootloader may be uncovered: " << coverage.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OrchestratorCoverageProperty,
                         ::testing::Values(2, 19, 77, 2024));

// -------------------------------------------------- lossy-network runs

TEST(LossyNetworkTest, AttestationSurvivesDropsWithoutFalseFailures) {
  TestbedOptions options;
  options.provision_extra = 15;
  options.archive.base_package_count = 100;
  Testbed bed(options);
  ASSERT_TRUE(bed.enroll().ok());
  (void)bed.verifier.set_policy(bed.agent_id(),
                                scan_machine_policy(bed.machine, true));

  netsim::FaultConfig faults;
  faults.drop_rate = 0.3;
  bed.network.set_faults(faults);

  Workload workload(&bed.machine, 5);
  std::size_t successes = 0;
  for (int i = 0; i < 50; ++i) {
    if (i % 10 == 0) workload.run_session();
    auto round = bed.verifier.attest_once(bed.agent_id());
    ASSERT_TRUE(round.ok());
    if (round.value().alerts.empty()) ++successes;
  }
  EXPECT_EQ(bed.verifier.state(bed.agent_id()), keylime::AgentState::kAttesting)
      << "packet loss must never fail an agent";
  EXPECT_GT(successes, 20u);
  for (const auto& alert : bed.verifier.alerts()) {
    EXPECT_EQ(alert.type, keylime::AlertType::kCommsFailure);
  }
}

TEST(LossyNetworkTest, TamperingNeverProducesPolicyAlerts) {
  // A man-in-the-middle can corrupt responses, but corruption must only
  // ever yield crypto failures — never a fabricated policy verdict.
  TestbedOptions options;
  options.provision_extra = 10;
  options.archive.base_package_count = 100;
  Testbed bed(options);
  ASSERT_TRUE(bed.enroll().ok());
  (void)bed.verifier.set_policy(bed.agent_id(),
                                scan_machine_policy(bed.machine, true));
  (void)bed.machine.exec("/usr/bin/bash");

  netsim::FaultConfig faults;
  faults.tamper_rate = 1.0;
  bed.network.set_faults(faults);
  for (int i = 0; i < 20; ++i) {
    (void)bed.verifier.resolve_failure(bed.agent_id());
    (void)bed.verifier.attest_once(bed.agent_id());
  }
  for (const auto& alert : bed.verifier.alerts()) {
    EXPECT_TRUE(alert.type == keylime::AlertType::kQuoteInvalid ||
                alert.type == keylime::AlertType::kReplayMismatch ||
                alert.type == keylime::AlertType::kCommsFailure)
        << "tampering produced a " << keylime::alert_type_name(alert.type);
  }
}

// ------------------------------------------------- protocol edge cases

struct ProtocolRig : ::testing::Test {
  ProtocolRig()
      : ca("mfg", to_bytes("seed")),
        network(&clock, 1),
        registrar(&network, &clock, 2),
        verifier(&network, &clock, 3),
        machine(config(), ca, &clock),
        agent(&machine, &network) {
    registrar.trust_manufacturer(ca.public_key());
  }
  static oskernel::MachineConfig config() {
    oskernel::MachineConfig cfg;
    cfg.hostname = "edge";
    return cfg;
  }
  SimClock clock;
  crypto::CertificateAuthority ca;
  netsim::SimNetwork network;
  keylime::Registrar registrar;
  keylime::Verifier verifier;
  oskernel::Machine machine;
  keylime::Agent agent;
};

TEST_F(ProtocolRig, AgentRejectsUnknownMessageKind) {
  EXPECT_FALSE(network.call(agent.address(), "bogus", {}).ok());
}

TEST_F(ProtocolRig, AgentRejectsGarbagePayload) {
  EXPECT_FALSE(network.call(agent.address(), "quote", to_bytes("garbage")).ok());
}

TEST_F(ProtocolRig, RegistrarRejectsUnknownMessageKind) {
  EXPECT_FALSE(network.call(keylime::Registrar::address(), "bogus", {}).ok());
}

TEST_F(ProtocolRig, RegistrarRejectsActivationWithoutRegistration) {
  keylime::ActivateRequest req;
  req.agent_id = "never-registered";
  req.proof = Bytes(32, 0);
  EXPECT_FALSE(network
                   .call(keylime::Registrar::address(), keylime::kMsgActivate,
                         req.encode())
                   .ok());
}

TEST_F(ProtocolRig, ReRegistrationAfterRestartSucceeds) {
  ASSERT_TRUE(agent.register_with(keylime::Registrar::address()).ok());
  // The agent restarts (e.g. after a reboot) and registers again with the
  // same TPM identity; the registrar replaces the enrolment.
  EXPECT_TRUE(agent.register_with(keylime::Registrar::address()).ok());
  EXPECT_TRUE(registrar.is_active("edge"));
  EXPECT_EQ(registrar.registered_count(), 1u);
}

TEST_F(ProtocolRig, VerifierErrorsOnUnknownAgent) {
  EXPECT_FALSE(verifier.attest_once("ghost").ok());
  EXPECT_FALSE(verifier.set_policy("ghost", keylime::RuntimePolicy{}).ok());
  EXPECT_FALSE(verifier.resolve_failure("ghost").ok());
  EXPECT_FALSE(verifier.set_mb_refstate("ghost", keylime::MbRefstate{}).ok());
  EXPECT_EQ(verifier.state("ghost"), std::nullopt);
}

TEST_F(ProtocolRig, VerifierStateSurvivesManyEmptyPolls) {
  ASSERT_TRUE(agent.register_with(keylime::Registrar::address()).ok());
  ASSERT_TRUE(verifier.add_agent("edge", agent.address()).ok());
  ASSERT_TRUE(verifier.set_policy("edge", keylime::RuntimePolicy{}).ok());
  for (int i = 0; i < 100; ++i) {
    auto round = verifier.attest_once("edge");
    ASSERT_TRUE(round.ok());
    if (i > 0) {
      EXPECT_EQ(round.value().new_entries, 0u);
    }
  }
  EXPECT_TRUE(verifier.alerts().empty());
}

// ------------------------------------- verifier checkpoint / restore

TEST(CheckpointTest, RoundTripsByteForByteWithLiveState) {
  TestbedOptions options;
  options.provision_extra = 15;
  options.archive.base_package_count = 100;
  options.verifier_config.continue_on_failure = true;
  Testbed bed(options);
  ASSERT_TRUE(bed.enroll().ok());
  ASSERT_TRUE(bed.verifier
                  .set_policy(bed.agent_id(),
                              scan_machine_policy(bed.machine, true))
                  .ok());

  // Accumulate real state: workload traffic, polls, and one genuine
  // violation so the checkpoint carries a failed agent + alert history.
  Workload workload(&bed.machine, 5);
  for (int i = 0; i < 10; ++i) {
    if (i % 3 == 0) workload.run_session();
    bed.clock.advance(60);
    ASSERT_TRUE(bed.verifier.attest_once(bed.agent_id()).ok());
  }
  ASSERT_TRUE(bed.machine.fs()
                  .create_file("/usr/local/bin/rogue", to_bytes("elf:rogue"),
                               true)
                  .ok());
  (void)bed.machine.exec("/usr/local/bin/rogue");
  ASSERT_TRUE(bed.verifier.attest_once(bed.agent_id()).ok());
  ASSERT_FALSE(bed.verifier.alerts().empty());

  const json::Value checkpoint = bed.verifier.checkpoint();

  // "Crash": a brand-new verifier process from the same seed.
  keylime::Verifier restored(&bed.network, &bed.clock, 42 ^ 0x766572ull,
                             options.verifier_config);
  ASSERT_TRUE(restored.restore(checkpoint).ok());

  // Byte-for-byte: serialize the restored instance and compare documents.
  EXPECT_EQ(restored.checkpoint().dump(), checkpoint.dump());
  // The audit chain head carried over and the whole chain verifies.
  EXPECT_EQ(restored.audit().head(), bed.verifier.audit().head());
  EXPECT_EQ(restored.audit().records().size(),
            bed.verifier.audit().records().size());
  EXPECT_TRUE(keylime::verify_audit_chain(restored.audit().records(),
                                          restored.audit().public_key())
                  .ok());
  EXPECT_EQ(restored.state(bed.agent_id()), bed.verifier.state(bed.agent_id()));
}

TEST(CheckpointTest, RestoredVerifierResumesWithoutDuplicateAlerts) {
  TestbedOptions options;
  options.provision_extra = 10;
  options.archive.base_package_count = 100;
  options.verifier_config.continue_on_failure = true;
  Testbed bed(options);
  ASSERT_TRUE(bed.enroll().ok());
  ASSERT_TRUE(bed.verifier
                  .set_policy(bed.agent_id(),
                              scan_machine_policy(bed.machine, true))
                  .ok());
  ASSERT_TRUE(bed.machine.fs()
                  .create_file("/usr/local/bin/rogue", to_bytes("elf:rogue"),
                               true)
                  .ok());
  (void)bed.machine.exec("/usr/local/bin/rogue");
  ASSERT_TRUE(bed.verifier.attest_once(bed.agent_id()).ok());
  const std::size_t alerts_before = bed.verifier.alerts().size();
  ASSERT_GT(alerts_before, 0u);

  keylime::Verifier restored(&bed.network, &bed.clock, 42 ^ 0x766572ull,
                             options.verifier_config);
  ASSERT_TRUE(restored.restore(bed.verifier.checkpoint()).ok());

  // The restored instance picks up at the saved log offset: re-polling
  // must not re-flag the violation it already alerted on.
  for (int i = 0; i < 5; ++i) {
    bed.clock.advance(60);
    ASSERT_TRUE(restored.attest_once(bed.agent_id()).ok());
  }
  EXPECT_TRUE(restored.alerts().empty())
      << "restore must not replay already-alerted log entries";
  // New rounds keep extending the restored chain verifiably.
  EXPECT_GT(restored.audit().records().size(),
            bed.verifier.audit().records().size());
  EXPECT_TRUE(keylime::verify_audit_chain(restored.audit().records(),
                                          restored.audit().public_key())
                  .ok());
}

TEST(CheckpointTest, RestoreRejectsAChainSignedByAnotherVerifier) {
  TestbedOptions options;
  options.provision_extra = 10;
  options.archive.base_package_count = 100;
  Testbed bed(options);
  ASSERT_TRUE(bed.enroll().ok());
  ASSERT_TRUE(bed.verifier.set_policy(bed.agent_id(), {}).ok());
  ASSERT_TRUE(bed.verifier.attest_once(bed.agent_id()).ok());

  keylime::Verifier stranger(&bed.network, &bed.clock, 0xdeadbeef,
                             options.verifier_config);
  EXPECT_FALSE(stranger.restore(bed.verifier.checkpoint()).ok())
      << "a verifier must not adopt audit history it did not sign";
}

TEST(CheckpointTest, RestoreRejectsCheckpointsFromTheFuture) {
  TestbedOptions options;
  options.provision_extra = 10;
  options.archive.base_package_count = 100;
  Testbed bed(options);
  ASSERT_TRUE(bed.enroll().ok());
  ASSERT_TRUE(bed.verifier.set_policy(bed.agent_id(), {}).ok());
  ASSERT_TRUE(bed.verifier.attest_once(bed.agent_id()).ok());

  // A checkpoint stamped by a newer release encodes state this build
  // cannot interpret; restoring a guess would silently drop it. The
  // guard must refuse up front, before any state is touched.
  json::Value future = bed.verifier.checkpoint();
  future.set("version", 99);
  keylime::Verifier restored(&bed.network, &bed.clock, 42 ^ 0x766572ull,
                             options.verifier_config);
  const Status rejected = restored.restore(future);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.error().code, Errc::kInvalidArgument);
  // The refusal left the verifier untouched and usable.
  EXPECT_TRUE(restored.restore(bed.verifier.checkpoint()).ok());
}

TEST(CheckpointTest, RestoreIgnoresUnknownFieldsFromMinorRevisions) {
  TestbedOptions options;
  options.provision_extra = 10;
  options.archive.base_package_count = 100;
  Testbed bed(options);
  ASSERT_TRUE(bed.enroll().ok());
  ASSERT_TRUE(bed.verifier.set_policy(bed.agent_id(), {}).ok());
  for (int i = 0; i < 3; ++i) {
    bed.clock.advance(60);
    ASSERT_TRUE(bed.verifier.attest_once(bed.agent_id()).ok());
  }

  // Forward compatibility within a version: a same-version writer that
  // appended a field we do not know must still restore cleanly, and the
  // state we re-serialize must be byte-identical to the original
  // checkpoint (the unknown field is ignored, not garbled into state).
  const json::Value original = bed.verifier.checkpoint();
  json::Value annotated = original;
  annotated.set("x_future_hint", "added by a later minor revision");
  keylime::Verifier restored(&bed.network, &bed.clock, 42 ^ 0x766572ull,
                             options.verifier_config);
  ASSERT_TRUE(restored.restore(annotated).ok());
  EXPECT_EQ(restored.checkpoint().dump(), original.dump());
}

// ------------------------------------------------------ chaos scenarios

// ------------------------------------ P2 staleness gauge (blind spot)

TEST(ProblemP2Gauge, PollingContinuesAndStalenessGaugeGrowsAfterFailure) {
  // The P2 gap, made monitorable: with continue_on_failure the verifier
  // keeps polling a failed agent, and the per-agent "rounds since last
  // successful attestation" gauge grows round over round — an alertable
  // number where stock Keylime silently freezes.
  TestbedOptions options;
  options.provision_extra = 10;
  options.archive.base_package_count = 100;
  options.verifier_config.continue_on_failure = true;
  Testbed bed(options);
  ASSERT_TRUE(bed.enroll().ok());
  ASSERT_TRUE(bed.verifier
                  .set_policy(bed.agent_id(),
                              scan_machine_policy(bed.machine, true))
                  .ok());
  telemetry::MetricsRegistry registry;
  bed.verifier.use_telemetry(&registry);
  const telemetry::Labels agent_label{{"agent", bed.agent_id()}};

  // Clean rounds pin the gauge at zero.
  for (int i = 0; i < 3; ++i) bed.attest();
  EXPECT_EQ(bed.verifier.rounds_since_success(bed.agent_id()), 0u);
  EXPECT_EQ(registry.gauge_value("cia_verifier_rounds_since_success",
                                 agent_label),
            0.0);

  // A genuine violation: an unknown binary is dropped and executed.
  ASSERT_TRUE(bed.machine.fs()
                  .create_file("/usr/local/bin/backdoor",
                               to_bytes("elf:backdoor"), true)
                  .ok());
  ASSERT_TRUE(bed.machine.exec("/usr/local/bin/backdoor").ok());

  const std::size_t audit_before = bed.verifier.audit().records().size();
  for (int i = 1; i <= 5; ++i) {
    bed.attest();
    // Polling continues: each round appends a durable audit record...
    EXPECT_EQ(bed.verifier.audit().records().size(), audit_before + i);
    // ...and the staleness gauge grows with every non-clean round.
    EXPECT_EQ(bed.verifier.rounds_since_success(bed.agent_id()),
              static_cast<std::uint64_t>(i));
    EXPECT_EQ(registry.gauge_value("cia_verifier_rounds_since_success",
                                   agent_label),
              static_cast<double>(i));
  }
  EXPECT_EQ(bed.verifier.state(bed.agent_id()), keylime::AgentState::kFailed);
  EXPECT_GE(registry.counter_value("cia_verifier_alerts_total",
                                   {{"agent", bed.agent_id()},
                                    {"type", "not_in_policy"}}),
            1u);

  // Operator resolves the failure; the next clean round resets the gauge.
  ASSERT_TRUE(bed.verifier.resolve_failure(bed.agent_id()).ok());
  bed.attest();
  EXPECT_EQ(bed.verifier.rounds_since_success(bed.agent_id()), 0u);
  EXPECT_EQ(registry.gauge_value("cia_verifier_rounds_since_success",
                                 agent_label),
            0.0);
}

TEST(ProblemP2Gauge, StockBehaviourFreezesTheGaugeWithPolling) {
  // Contrast: without the mitigation, polling stops after the first
  // failure and the gauge freezes — the blind spot itself.
  TestbedOptions options;
  options.provision_extra = 10;
  options.archive.base_package_count = 100;
  options.verifier_config.continue_on_failure = false;
  Testbed bed(options);
  ASSERT_TRUE(bed.enroll().ok());
  ASSERT_TRUE(bed.verifier
                  .set_policy(bed.agent_id(),
                              scan_machine_policy(bed.machine, true))
                  .ok());
  telemetry::MetricsRegistry registry;
  bed.verifier.use_telemetry(&registry);

  ASSERT_TRUE(bed.machine.fs()
                  .create_file("/usr/local/bin/backdoor",
                               to_bytes("elf:backdoor"), true)
                  .ok());
  ASSERT_TRUE(bed.machine.exec("/usr/local/bin/backdoor").ok());
  bed.attest();  // the failing round
  const std::uint64_t frozen_at =
      bed.verifier.rounds_since_success(bed.agent_id());
  EXPECT_EQ(frozen_at, 1u);
  const std::size_t audit_frozen = bed.verifier.audit().records().size();
  for (int i = 0; i < 5; ++i) bed.attest();
  // No new audit records, no gauge movement: the agent fell out of the
  // attestation loop entirely.
  EXPECT_EQ(bed.verifier.audit().records().size(), audit_frozen);
  EXPECT_EQ(bed.verifier.rounds_since_success(bed.agent_id()), frozen_at);
  EXPECT_EQ(
      registry.counter_value("cia_verifier_rounds_total",
                             {{"agent", bed.agent_id()}, {"outcome", "frozen"}}),
      5u);
}

TEST(ChaosTest, WanLossFiveDaysZeroTransportFalsePositives) {
  // The acceptance run: 10% packet loss for five days across a fleet,
  // with one genuine compromise injected mid-run. The retrying transport
  // must absorb every comms fault (zero transport-attributable alerts)
  // while the real violation is still caught.
  ChaosOptions options;
  options.scenario = "wan-loss";
  options.nodes = 4;
  options.days = 5;
  options.archive.base_package_count = 120;
  options.provision_extra = 15;
  const ChaosReport report = run_chaos_experiment(options);
  ASSERT_TRUE(report.valid);
  EXPECT_EQ(report.transport_false_positives, 0u);
  EXPECT_TRUE(report.violation_injected);
  EXPECT_TRUE(report.genuine_detected);
  EXPECT_GT(report.drops, 0u) << "the fault plan must actually fire";
  EXPECT_GT(report.retries, 0u);
  EXPECT_TRUE(report.liveness_ok);
  EXPECT_TRUE(report.audit_chain_ok);
}

TEST(ChaosTest, VerifierRestartPreservesAuditChainAndAlerts) {
  ChaosOptions options;
  options.scenario = "verifier-restart";
  options.nodes = 3;
  options.days = 4;
  options.archive.base_package_count = 120;
  options.provision_extra = 15;
  const ChaosReport report = run_chaos_experiment(options);
  ASSERT_TRUE(report.valid);
  EXPECT_TRUE(report.verifier_restarted);
  EXPECT_TRUE(report.checkpoint_roundtrip_ok)
      << "checkpoint -> restore -> checkpoint must be byte-identical";
  EXPECT_TRUE(report.audit_chain_ok)
      << "the signed chain must span the restart";
  EXPECT_EQ(report.transport_false_positives, 0u);
  EXPECT_TRUE(report.liveness_ok);
}

TEST(ChaosTest, EveryScenarioHoldsTheResilienceInvariants) {
  for (const std::string& scenario : chaos_scenarios()) {
    ChaosOptions options;
    options.scenario = scenario;
    options.nodes = 3;
    options.days = 4;
    options.archive.base_package_count = 120;
    options.provision_extra = 15;
    const ChaosReport report = run_chaos_experiment(options);
    ASSERT_TRUE(report.valid) << scenario;
    EXPECT_EQ(report.transport_false_positives, 0u) << scenario;
    EXPECT_TRUE(report.liveness_ok) << scenario;
    EXPECT_GE(report.recovery_time, 0) << scenario;
    EXPECT_LE(report.recovery_time, 2 * kHour)
        << scenario << ": recovery must be bounded";
    EXPECT_TRUE(report.audit_chain_ok) << scenario;
    if (report.violation_injected) {
      EXPECT_TRUE(report.genuine_detected) << scenario;
    }
  }
}

}  // namespace
}  // namespace cia::experiments
