// cia_sim — command-line driver for the paper's experiments.
//
//   cia_sim fp-baseline [--days N] [--seed S]
//       §III-B: benign week under a static policy (unattended upgrades +
//       SNAP), reporting the false-positive causes.
//
//   cia_sim dynamic [--days N] [--period daily|weekly] [--inject-race]
//                   [--seed S]
//       §III-D: the dynamic-policy-generation run; prints the figures the
//       run supports (Fig. 3-5 for daily runs) and the effectiveness
//       summary.
//
//   cia_sim attacks [--seed S]
//       §IV: the eight-attack Table II matrix (basic/adaptive/mitigated).
//
//   cia_sim table1 [--seed S]
//       Table I: daily (31d) vs weekly (35d) update-cost summary.
//
//   cia_sim fleet [--days N] [--seed S] [--shards N] [--agents N]
//       Fleet-scale operation: N days of the dynamic scheme across
//       several nodes with staggered polling over a lossy network.
//       With --shards the fleet runs through the sharded VerifierPool
//       instead of a single verifier: one attestation round per day,
//       indexed appraisal, and a per-shard ownership report.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/log.hpp"
#include "experiments/fleet_experiment.hpp"
#include "experiments/pool_experiment.hpp"
#include "experiments/report.hpp"

namespace {

using namespace cia;
using namespace cia::experiments;

struct Args {
  int days = -1;
  std::uint64_t seed = 42;
  std::string period = "daily";
  bool inject_race = false;
  int shards = 0;  // 0 = single-verifier fleet path
  int agents = 0;  // 0 = the chosen path's default
};

Args parse_args(int argc, char** argv, int first) {
  Args args;
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--days") {
      args.days = std::atoi(next());
    } else if (arg == "--seed") {
      args.seed = static_cast<std::uint64_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--period") {
      args.period = next();
    } else if (arg == "--inject-race") {
      args.inject_race = true;
    } else if (arg == "--shards") {
      args.shards = std::atoi(next());
    } else if (arg == "--agents") {
      args.agents = std::atoi(next());
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      std::exit(2);
    }
  }
  return args;
}

int cmd_fp_baseline(const Args& args) {
  FpBaselineOptions options;
  options.seed = args.seed;
  if (args.days > 0) options.days = args.days;
  const auto result = run_fp_baseline(options);
  std::printf("%s\n", render_fp_baseline(result).c_str());
  return 0;
}

int cmd_dynamic(const Args& args) {
  DynamicRunOptions options;
  options.seed = args.seed;
  options.update_period_days = (args.period == "weekly") ? 7 : 1;
  options.days = args.days > 0 ? args.days
                               : (options.update_period_days == 7 ? 35 : 31);
  if (args.inject_race) {
    options.inject_mirror_race = true;
    options.race_day = options.days - 1;
  }
  const auto run = run_dynamic_policy_experiment(options);
  if (options.update_period_days == 1) {
    std::printf("%s\n", render_fig3(run).c_str());
    std::printf("%s\n", render_fig4(run).c_str());
    std::printf("%s\n", render_fig5(run).c_str());
  }
  std::printf("run: %d days, %d updates, %zu false positives (%zu from the "
              "injected incident), %d reboots\n",
              run.days, run.updates_run, run.false_positives,
              run.incident_false_positives, run.reboots);
  return 0;
}

int cmd_attacks(const Args& args) {
  FnExperimentOptions options;
  options.seed = args.seed;
  const auto reports = run_fn_experiment(options);
  std::printf("%s\n", render_table2(reports).c_str());
  return 0;
}

int cmd_table1(const Args& args) {
  DynamicRunOptions daily_options;
  daily_options.seed = args.seed;
  daily_options.days = 31;
  const auto daily = run_dynamic_policy_experiment(daily_options);
  DynamicRunOptions weekly_options;
  weekly_options.seed = args.seed + 1;
  weekly_options.days = 35;
  weekly_options.update_period_days = 7;
  const auto weekly = run_dynamic_policy_experiment(weekly_options);
  std::printf("%s\n", render_table1(daily, weekly).c_str());
  return 0;
}

int cmd_pool_fleet(const Args& args) {
  PoolFleetOptions options;
  options.seed = args.seed;
  options.shards = static_cast<std::size_t>(args.shards);
  if (args.agents > 0) options.agents = static_cast<std::size_t>(args.agents);
  PoolFleet fleet(options);
  if (!fleet.init_status().ok()) {
    std::fprintf(stderr, "pool fleet init failed: %s\n",
                 fleet.init_status().error().message.c_str());
    return 1;
  }
  if (Status s = fleet.push_fleet_policy(); !s.ok()) {
    std::fprintf(stderr, "policy push failed: %s\n", s.error().message.c_str());
    return 1;
  }

  const int days = args.days > 0 ? args.days : 7;
  std::size_t polls = 0;
  for (int day = 0; day < days; ++day) {
    fleet.run_workload_round(static_cast<std::uint64_t>(day));
    polls += fleet.pool().run_round();
  }

  std::size_t failed = 0;
  for (const std::string& id : fleet.agent_ids()) {
    if (fleet.pool().state(id) == keylime::AgentState::kFailed) ++failed;
  }
  const auto stats = fleet.pool().stats();
  std::printf("pool fleet: %zu agents across %zu shards, %d days\n"
              "polls: %zu (batches: %llu)\n"
              "index: %llu hits, %llu misses (revision %llu, %llu swaps)\n"
              "alerts: %zu, failed agents: %zu\n",
              fleet.agent_ids().size(), fleet.pool().shard_count(), days,
              polls, static_cast<unsigned long long>(stats.batches),
              static_cast<unsigned long long>(stats.index_hits),
              static_cast<unsigned long long>(stats.index_misses),
              static_cast<unsigned long long>(fleet.pool().policy_revision()),
              static_cast<unsigned long long>(stats.policy_swaps),
              fleet.pool().alerts().size(), failed);
  for (std::size_t s = 0; s < fleet.pool().shard_count(); ++s) {
    std::printf("  shard %zu: %zu agents\n", s,
                fleet.pool().verifier(s).agent_ids().size());
  }
  return 0;
}

int cmd_fleet(const Args& args) {
  if (args.shards > 0) return cmd_pool_fleet(args);
  FleetRunOptions options;
  options.seed = args.seed;
  if (args.days > 0) options.days = args.days;
  const auto result = run_fleet_experiment(options);
  std::printf("fleet: %zu nodes, %d days, %d updates\n"
              "polls: %zu (comms failures: %zu)\n"
              "false positives: %zu\n"
              "audit chain: %zu records, %s\n",
              result.nodes, result.days, result.updates_run, result.polls,
              result.comms_failures, result.false_positives,
              result.audit_records,
              result.audit_chain_intact ? "intact" : "BROKEN");
  return 0;
}

void usage() {
  std::fprintf(stderr,
               "usage: cia_sim <command> [flags]\n"
               "  fp-baseline [--days N] [--seed S]\n"
               "  dynamic [--days N] [--period daily|weekly] [--inject-race]"
               " [--seed S]\n"
               "  attacks [--seed S]\n"
               "  table1 [--seed S]\n"
               "  fleet [--days N] [--seed S] [--shards N] [--agents N]\n");
}

}  // namespace

int main(int argc, char** argv) {
  set_log_level(LogLevel::kError);
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string command = argv[1];
  const Args args = parse_args(argc, argv, 2);
  if (command == "fp-baseline") return cmd_fp_baseline(args);
  if (command == "dynamic") return cmd_dynamic(args);
  if (command == "attacks") return cmd_attacks(args);
  if (command == "table1") return cmd_table1(args);
  if (command == "fleet") return cmd_fleet(args);
  usage();
  return 2;
}
