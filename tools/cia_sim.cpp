// cia_sim — command-line driver for the paper's experiments.
//
//   cia_sim fp-baseline [--days N] [--seed S]
//       §III-B: benign week under a static policy (unattended upgrades +
//       SNAP), reporting the false-positive causes.
//
//   cia_sim dynamic [--days N] [--period daily|weekly] [--inject-race]
//                   [--seed S]
//       §III-D: the dynamic-policy-generation run; prints the figures the
//       run supports (Fig. 3-5 for daily runs) and the effectiveness
//       summary.
//
//   cia_sim attacks [--seed S]
//       §IV: the eight-attack Table II matrix (basic/adaptive/mitigated).
//
//   cia_sim table1 [--seed S]
//       Table I: daily (31d) vs weekly (35d) update-cost summary.
//
//   cia_sim fleet [--days N] [--seed S] [--shards N] [--agents N]
//       Fleet-scale operation: N days of the dynamic scheme across
//       several nodes with staggered polling over a lossy network.
//       With --shards the fleet runs through the sharded VerifierPool
//       instead of a single verifier: one attestation round per day,
//       indexed appraisal, and a per-shard ownership report.
//
//   cia_sim fleet --churn [--rounds N] [--resize-at R:S]... [--seed S]
//                 [--shards N] [--agents N]
//       Enrollment-churn campaign over the sharded pool: continuous
//       join/leave/reboot plus any scheduled mid-run resizes
//       (--resize-at 4:6 resizes to 6 shards before round 4; repeat the
//       flag for several resize points). The run then replays the SAME
//       churn campaign with no resizes and diffs every agent's audit
//       sub-chain digest — any drift is a resharding bug and exits
//       nonzero, which is what the CI churn-smoke job pins.
//
//   cia_sim fleet --storm [--agents N] [--shards N] [--rounds N]
//                 [--bad-paths N] [--drop-rate P] [--seed S]
//       Alert-storm chaos scenario: a bad policy revision is bulk-pushed
//       to the whole fleet while per-link drop faults add transport
//       chaos. Self-checks pin the alert pipeline's contract — the storm
//       must collapse into O(root causes) incidents with exact
//       affected-agent counts, and the canonical incident stream must be
//       byte-identical across a different shard count AND a mid-storm
//       resize. Exits nonzero on any violation (the CI storm-smoke job).
//
//   cia_sim fleet --scenario FILE [--seed S]
//       Run a schema-validated scenario file (docs/SCENARIOS.md) with
//       self-checks on. The flag modes above are sugar: they build the
//       equivalent scenario and run it through the same
//       scenario::run_scenario path, so CLI and file runs share one
//       config-resolution path.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/log.hpp"
#include "experiments/fleet_experiment.hpp"
#include "experiments/pool_experiment.hpp"
#include "experiments/report.hpp"
#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"

namespace {

using namespace cia;
using namespace cia::experiments;

struct Args {
  int days = -1;
  std::uint64_t seed = 42;
  bool seed_set = false;
  std::string period = "daily";
  bool inject_race = false;
  int shards = 0;  // 0 = single-verifier fleet path
  int agents = 0;  // 0 = the chosen path's default
  bool churn = false;
  bool storm = false;
  int rounds = 0;  // 0 = churn/storm default
  int bad_paths = 0;     // 0 = storm default
  double drop_rate = -1;  // <0 = storm default
  std::vector<std::pair<std::size_t, std::size_t>> resize_at;  // round:shards
  std::string scenario_file;  // --scenario FILE: run a scenario document
};

Args parse_args(int argc, char** argv, int first) {
  Args args;
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--days") {
      args.days = std::atoi(next());
    } else if (arg == "--seed") {
      args.seed = static_cast<std::uint64_t>(std::strtoull(next(), nullptr, 10));
      args.seed_set = true;
    } else if (arg == "--scenario") {
      args.scenario_file = next();
    } else if (arg == "--period") {
      args.period = next();
    } else if (arg == "--inject-race") {
      args.inject_race = true;
    } else if (arg == "--shards") {
      args.shards = std::atoi(next());
    } else if (arg == "--agents") {
      args.agents = std::atoi(next());
    } else if (arg == "--churn") {
      args.churn = true;
    } else if (arg == "--storm") {
      args.storm = true;
    } else if (arg == "--rounds") {
      args.rounds = std::atoi(next());
    } else if (arg == "--bad-paths") {
      args.bad_paths = std::atoi(next());
    } else if (arg == "--drop-rate") {
      args.drop_rate = std::atof(next());
    } else if (arg == "--resize-at") {
      const std::string spec = next();
      const std::size_t colon = spec.find(':');
      if (colon == std::string::npos) {
        std::fprintf(stderr, "--resize-at wants ROUND:SHARDS, got %s\n",
                     spec.c_str());
        std::exit(2);
      }
      args.resize_at.emplace_back(
          static_cast<std::size_t>(std::atoi(spec.substr(0, colon).c_str())),
          static_cast<std::size_t>(std::atoi(spec.substr(colon + 1).c_str())));
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      std::exit(2);
    }
  }
  return args;
}

int cmd_fp_baseline(const Args& args) {
  FpBaselineOptions options;
  options.seed = args.seed;
  if (args.days > 0) options.days = args.days;
  const auto result = run_fp_baseline(options);
  std::printf("%s\n", render_fp_baseline(result).c_str());
  return 0;
}

int cmd_dynamic(const Args& args) {
  DynamicRunOptions options;
  options.seed = args.seed;
  options.update_period_days = (args.period == "weekly") ? 7 : 1;
  options.days = args.days > 0 ? args.days
                               : (options.update_period_days == 7 ? 35 : 31);
  if (args.inject_race) {
    options.inject_mirror_race = true;
    options.race_day = options.days - 1;
  }
  const auto run = run_dynamic_policy_experiment(options);
  if (options.update_period_days == 1) {
    std::printf("%s\n", render_fig3(run).c_str());
    std::printf("%s\n", render_fig4(run).c_str());
    std::printf("%s\n", render_fig5(run).c_str());
  }
  std::printf("run: %d days, %d updates, %zu false positives (%zu from the "
              "injected incident), %d reboots\n",
              run.days, run.updates_run, run.false_positives,
              run.incident_false_positives, run.reboots);
  return 0;
}

int cmd_attacks(const Args& args) {
  FnExperimentOptions options;
  options.seed = args.seed;
  const auto reports = run_fn_experiment(options);
  std::printf("%s\n", render_table2(reports).c_str());
  return 0;
}

int cmd_table1(const Args& args) {
  DynamicRunOptions daily_options;
  daily_options.seed = args.seed;
  daily_options.days = 31;
  const auto daily = run_dynamic_policy_experiment(daily_options);
  DynamicRunOptions weekly_options;
  weekly_options.seed = args.seed + 1;
  weekly_options.days = 35;
  weekly_options.update_period_days = 7;
  const auto weekly = run_dynamic_policy_experiment(weekly_options);
  std::printf("%s\n", render_table1(daily, weekly).c_str());
  return 0;
}

/// Shared execution path for every pool-backed fleet mode: the CLI and
/// `--scenario FILE` runs both resolve to a scenario::Scenario and go
/// through the same runner (the hand-coded storm/churn/pool harness
/// logic that used to live here now lives in scenario::run_scenario).
int run_scenario_and_report(const cia::scenario::Scenario& sc,
                            bool self_check) {
  cia::scenario::RunOptions run_options;
  run_options.self_check = self_check;
  auto run = cia::scenario::run_scenario(sc, run_options);
  if (!run.ok()) {
    std::fprintf(stderr, "scenario failed: %s\n",
                 run.error().message.c_str());
    return 1;
  }
  const cia::scenario::ScenarioOutcome& outcome = run.value();
  std::printf("scenario: %s (kind %s, seed %llu)\n", outcome.name.c_str(),
              cia::scenario::kind_name(outcome.kind),
              static_cast<unsigned long long>(outcome.seed));
  // A compact stat line from the canonical report document.
  auto stat = [&](const char* key) -> long long {
    const json::Value* v = outcome.report.find(key);
    return v && v->is_number() ? static_cast<long long>(v->as_int()) : -1;
  };
  switch (outcome.kind) {
    case cia::scenario::Kind::kStorm:
      std::printf("storm: %lld agents, %lld root causes, alerts %lld raw -> "
                  "%lld emitted (%lld suppressed), %lld incidents opened, "
                  "widest spans %lld agents\n",
                  stat("agents"), stat("root_causes"), stat("raw_alerts"),
                  stat("emitted_alerts"), stat("suppressed"),
                  stat("incidents_opened"), stat("max_affected"));
      break;
    case cia::scenario::Kind::kChurn:
      std::printf("churn: %lld rounds, %lld joins, %lld leaves, %lld reboots, "
                  "%lld polls, %lld alerts\n",
                  stat("rounds"), stat("joins"), stat("leaves"),
                  stat("reboots"), stat("polls"), stat("alerts"));
      break;
    case cia::scenario::Kind::kFleet:
      std::printf("pool fleet: %lld agents across %lld shards, %lld rounds, "
                  "%lld polls, %lld alerts, %lld failed agents\n",
                  stat("agents"), stat("shards"), stat("rounds"),
                  stat("polls"), stat("alerts"), stat("failed_agents"));
      break;
    default:
      break;
  }
  for (const cia::scenario::SelfCheck& check : outcome.checks) {
    std::printf("  %-36s %s  %s\n", check.name.c_str(),
                check.ok ? "ok  " : "FAIL", check.detail.c_str());
  }
  std::printf("self-checks: %s\n", outcome.ok() ? "ok" : "FAILED");
  return outcome.ok() ? 0 : 1;
}

int cmd_scenario_file(const Args& args) {
  auto loaded = cia::scenario::load_file(args.scenario_file);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.error().message.c_str());
    return 2;
  }
  cia::scenario::Scenario sc = loaded.value();
  if (args.seed_set) sc.seed = args.seed;
  return run_scenario_and_report(sc, /*self_check=*/true);
}

int cmd_pool_fleet(const Args& args) {
  cia::scenario::Scenario sc;
  sc.name = "cli-pool-fleet";
  sc.kind = cia::scenario::Kind::kFleet;
  sc.seed = args.seed;
  sc.fleet.shards = args.shards;
  if (args.agents > 0) sc.fleet.agents = args.agents;
  if (args.days > 0) sc.fleet_run.rounds = args.days;
  return run_scenario_and_report(sc, /*self_check=*/false);
}

int cmd_churn(const Args& args) {
  cia::scenario::Scenario sc;
  sc.name = "cli-churn";
  sc.kind = cia::scenario::Kind::kChurn;
  sc.seed = args.seed;
  if (args.shards > 0) sc.fleet.shards = args.shards;
  if (args.agents > 0) sc.fleet.agents = args.agents;
  if (args.rounds > 0) sc.churn.rounds = args.rounds;
  for (const auto& [round, shards] : args.resize_at) {
    sc.resize_at.push_back({static_cast<std::int64_t>(round),
                            static_cast<std::int64_t>(shards)});
  }
  // self_check runs the no-resize baseline diff the CI churn-smoke job
  // pins (zero per-agent chain drift across resize schedules).
  return run_scenario_and_report(sc, /*self_check=*/true);
}

int cmd_storm(const Args& args) {
  cia::scenario::Scenario sc;
  sc.name = "cli-storm";
  sc.kind = cia::scenario::Kind::kStorm;
  sc.seed = args.seed;
  sc.fleet.agents = args.agents > 0 ? args.agents : 1000;
  sc.fleet.shards = args.shards > 0 ? args.shards : 8;
  sc.fleet.retrying_transport = false;
  if (args.rounds > 0) sc.storm.storm_rounds = args.rounds;
  if (args.bad_paths > 0) sc.storm.bad_paths = args.bad_paths;
  sc.faults.drop_rate = args.drop_rate >= 0 ? args.drop_rate : 0.02;
  // self_check runs the repartition + mid-storm-resize stream-invariance
  // contracts the CI storm-smoke job pins.
  return run_scenario_and_report(sc, /*self_check=*/true);
}

int cmd_fleet(const Args& args) {
  if (!args.scenario_file.empty()) return cmd_scenario_file(args);
  if (args.storm) return cmd_storm(args);
  if (args.churn) return cmd_churn(args);
  if (args.shards > 0) return cmd_pool_fleet(args);
  FleetRunOptions options;
  options.seed = args.seed;
  if (args.days > 0) options.days = args.days;
  const auto result = run_fleet_experiment(options);
  std::printf("fleet: %zu nodes, %d days, %d updates\n"
              "polls: %zu (comms failures: %zu)\n"
              "false positives: %zu\n"
              "audit chain: %zu records, %s\n",
              result.nodes, result.days, result.updates_run, result.polls,
              result.comms_failures, result.false_positives,
              result.audit_records,
              result.audit_chain_intact ? "intact" : "BROKEN");
  return 0;
}

void usage() {
  std::fprintf(stderr,
               "usage: cia_sim <command> [flags]\n"
               "  fp-baseline [--days N] [--seed S]\n"
               "  dynamic [--days N] [--period daily|weekly] [--inject-race]"
               " [--seed S]\n"
               "  attacks [--seed S]\n"
               "  table1 [--seed S]\n"
               "  fleet [--days N] [--seed S] [--shards N] [--agents N]\n"
               "  fleet --churn [--rounds N] [--resize-at R:S]... [--seed S]"
               " [--shards N] [--agents N]\n"
               "  fleet --storm [--agents N] [--shards N] [--rounds N]"
               " [--bad-paths N] [--drop-rate P] [--seed S]\n"
               "  fleet --scenario FILE [--seed S]   (run a scenario file;"
               " see docs/SCENARIOS.md)\n");
}

}  // namespace

int main(int argc, char** argv) {
  set_log_level(LogLevel::kError);
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string command = argv[1];
  const Args args = parse_args(argc, argv, 2);
  if (command == "fp-baseline") return cmd_fp_baseline(args);
  if (command == "dynamic") return cmd_dynamic(args);
  if (command == "attacks") return cmd_attacks(args);
  if (command == "table1") return cmd_table1(args);
  if (command == "fleet") return cmd_fleet(args);
  usage();
  return 2;
}
