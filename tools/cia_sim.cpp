// cia_sim — command-line driver for the paper's experiments.
//
//   cia_sim fp-baseline [--days N] [--seed S]
//       §III-B: benign week under a static policy (unattended upgrades +
//       SNAP), reporting the false-positive causes.
//
//   cia_sim dynamic [--days N] [--period daily|weekly] [--inject-race]
//                   [--seed S]
//       §III-D: the dynamic-policy-generation run; prints the figures the
//       run supports (Fig. 3-5 for daily runs) and the effectiveness
//       summary.
//
//   cia_sim attacks [--seed S]
//       §IV: the eight-attack Table II matrix (basic/adaptive/mitigated).
//
//   cia_sim table1 [--seed S]
//       Table I: daily (31d) vs weekly (35d) update-cost summary.
//
//   cia_sim fleet [--days N] [--seed S] [--shards N] [--agents N]
//       Fleet-scale operation: N days of the dynamic scheme across
//       several nodes with staggered polling over a lossy network.
//       With --shards the fleet runs through the sharded VerifierPool
//       instead of a single verifier: one attestation round per day,
//       indexed appraisal, and a per-shard ownership report.
//
//   cia_sim fleet --churn [--rounds N] [--resize-at R:S]... [--seed S]
//                 [--shards N] [--agents N]
//       Enrollment-churn campaign over the sharded pool: continuous
//       join/leave/reboot plus any scheduled mid-run resizes
//       (--resize-at 4:6 resizes to 6 shards before round 4; repeat the
//       flag for several resize points). The run then replays the SAME
//       churn campaign with no resizes and diffs every agent's audit
//       sub-chain digest — any drift is a resharding bug and exits
//       nonzero, which is what the CI churn-smoke job pins.
//
//   cia_sim fleet --storm [--agents N] [--shards N] [--rounds N]
//                 [--bad-paths N] [--drop-rate P] [--seed S]
//       Alert-storm chaos scenario: a bad policy revision is bulk-pushed
//       to the whole fleet while per-link drop faults add transport
//       chaos. Self-checks pin the alert pipeline's contract — the storm
//       must collapse into O(root causes) incidents with exact
//       affected-agent counts, and the canonical incident stream must be
//       byte-identical across a different shard count AND a mid-storm
//       resize. Exits nonzero on any violation (the CI storm-smoke job).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/log.hpp"
#include "experiments/fleet_experiment.hpp"
#include "experiments/pool_experiment.hpp"
#include "experiments/report.hpp"

namespace {

using namespace cia;
using namespace cia::experiments;

struct Args {
  int days = -1;
  std::uint64_t seed = 42;
  std::string period = "daily";
  bool inject_race = false;
  int shards = 0;  // 0 = single-verifier fleet path
  int agents = 0;  // 0 = the chosen path's default
  bool churn = false;
  bool storm = false;
  int rounds = 0;  // 0 = churn/storm default
  int bad_paths = 0;     // 0 = storm default
  double drop_rate = -1;  // <0 = storm default
  std::vector<std::pair<std::size_t, std::size_t>> resize_at;  // round:shards
};

Args parse_args(int argc, char** argv, int first) {
  Args args;
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--days") {
      args.days = std::atoi(next());
    } else if (arg == "--seed") {
      args.seed = static_cast<std::uint64_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--period") {
      args.period = next();
    } else if (arg == "--inject-race") {
      args.inject_race = true;
    } else if (arg == "--shards") {
      args.shards = std::atoi(next());
    } else if (arg == "--agents") {
      args.agents = std::atoi(next());
    } else if (arg == "--churn") {
      args.churn = true;
    } else if (arg == "--storm") {
      args.storm = true;
    } else if (arg == "--rounds") {
      args.rounds = std::atoi(next());
    } else if (arg == "--bad-paths") {
      args.bad_paths = std::atoi(next());
    } else if (arg == "--drop-rate") {
      args.drop_rate = std::atof(next());
    } else if (arg == "--resize-at") {
      const std::string spec = next();
      const std::size_t colon = spec.find(':');
      if (colon == std::string::npos) {
        std::fprintf(stderr, "--resize-at wants ROUND:SHARDS, got %s\n",
                     spec.c_str());
        std::exit(2);
      }
      args.resize_at.emplace_back(
          static_cast<std::size_t>(std::atoi(spec.substr(0, colon).c_str())),
          static_cast<std::size_t>(std::atoi(spec.substr(colon + 1).c_str())));
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      std::exit(2);
    }
  }
  return args;
}

int cmd_fp_baseline(const Args& args) {
  FpBaselineOptions options;
  options.seed = args.seed;
  if (args.days > 0) options.days = args.days;
  const auto result = run_fp_baseline(options);
  std::printf("%s\n", render_fp_baseline(result).c_str());
  return 0;
}

int cmd_dynamic(const Args& args) {
  DynamicRunOptions options;
  options.seed = args.seed;
  options.update_period_days = (args.period == "weekly") ? 7 : 1;
  options.days = args.days > 0 ? args.days
                               : (options.update_period_days == 7 ? 35 : 31);
  if (args.inject_race) {
    options.inject_mirror_race = true;
    options.race_day = options.days - 1;
  }
  const auto run = run_dynamic_policy_experiment(options);
  if (options.update_period_days == 1) {
    std::printf("%s\n", render_fig3(run).c_str());
    std::printf("%s\n", render_fig4(run).c_str());
    std::printf("%s\n", render_fig5(run).c_str());
  }
  std::printf("run: %d days, %d updates, %zu false positives (%zu from the "
              "injected incident), %d reboots\n",
              run.days, run.updates_run, run.false_positives,
              run.incident_false_positives, run.reboots);
  return 0;
}

int cmd_attacks(const Args& args) {
  FnExperimentOptions options;
  options.seed = args.seed;
  const auto reports = run_fn_experiment(options);
  std::printf("%s\n", render_table2(reports).c_str());
  return 0;
}

int cmd_table1(const Args& args) {
  DynamicRunOptions daily_options;
  daily_options.seed = args.seed;
  daily_options.days = 31;
  const auto daily = run_dynamic_policy_experiment(daily_options);
  DynamicRunOptions weekly_options;
  weekly_options.seed = args.seed + 1;
  weekly_options.days = 35;
  weekly_options.update_period_days = 7;
  const auto weekly = run_dynamic_policy_experiment(weekly_options);
  std::printf("%s\n", render_table1(daily, weekly).c_str());
  return 0;
}

int cmd_pool_fleet(const Args& args) {
  PoolFleetOptions options;
  options.seed = args.seed;
  options.shards = static_cast<std::size_t>(args.shards);
  if (args.agents > 0) options.agents = static_cast<std::size_t>(args.agents);
  PoolFleet fleet(options);
  if (!fleet.init_status().ok()) {
    std::fprintf(stderr, "pool fleet init failed: %s\n",
                 fleet.init_status().error().message.c_str());
    return 1;
  }
  if (Status s = fleet.push_fleet_policy(); !s.ok()) {
    std::fprintf(stderr, "policy push failed: %s\n", s.error().message.c_str());
    return 1;
  }

  const int days = args.days > 0 ? args.days : 7;
  std::size_t polls = 0;
  for (int day = 0; day < days; ++day) {
    fleet.run_workload_round(static_cast<std::uint64_t>(day));
    polls += fleet.pool().run_round();
  }

  std::size_t failed = 0;
  for (const std::string& id : fleet.agent_ids()) {
    if (fleet.pool().state(id) == keylime::AgentState::kFailed) ++failed;
  }
  const auto stats = fleet.pool().stats();
  std::printf("pool fleet: %zu agents across %zu shards, %d days\n"
              "polls: %zu (batches: %llu)\n"
              "index: %llu hits, %llu misses (revision %llu, %llu swaps)\n"
              "alerts: %zu, failed agents: %zu\n",
              fleet.agent_ids().size(), fleet.pool().shard_count(), days,
              polls, static_cast<unsigned long long>(stats.batches),
              static_cast<unsigned long long>(stats.index_hits),
              static_cast<unsigned long long>(stats.index_misses),
              static_cast<unsigned long long>(fleet.pool().policy_revision()),
              static_cast<unsigned long long>(stats.policy_swaps),
              fleet.pool().alerts().size(), failed);
  for (std::size_t s = 0; s < fleet.pool().shard_count(); ++s) {
    std::printf("  shard %zu: %zu agents\n", s,
                fleet.pool().verifier(s).agent_ids().size());
  }
  return 0;
}

int cmd_churn(const Args& args) {
  PoolFleetOptions fleet_options;
  fleet_options.seed = args.seed;
  fleet_options.shards =
      args.shards > 0 ? static_cast<std::size_t>(args.shards) : 4;
  if (args.agents > 0) {
    fleet_options.agents = static_cast<std::size_t>(args.agents);
  }

  ChurnCampaignOptions campaign;
  campaign.seed = args.seed ^ 0xc4u;
  if (args.rounds > 0) campaign.rounds = static_cast<std::size_t>(args.rounds);
  campaign.resize_at = args.resize_at;

  auto run = [&](const std::vector<std::pair<std::size_t, std::size_t>>&
                     resizes,
                 ChurnReport* report_out)
      -> std::map<std::string, std::string> {
    PoolFleet fleet(fleet_options);
    if (!fleet.init_status().ok()) {
      std::fprintf(stderr, "pool fleet init failed: %s\n",
                   fleet.init_status().error().message.c_str());
      std::exit(1);
    }
    if (Status s = fleet.push_fleet_policy(); !s.ok()) {
      std::fprintf(stderr, "policy push failed: %s\n",
                   s.error().message.c_str());
      std::exit(1);
    }
    ChurnCampaignOptions options = campaign;
    options.resize_at = resizes;
    const ChurnReport report = run_churn_campaign(fleet, options);
    if (!report.status.ok()) {
      std::fprintf(stderr, "churn campaign failed: %s\n",
                   report.status.error().message.c_str());
      std::exit(1);
    }
    if (report_out) *report_out = report;
    if (report_out) {
      const auto& ms = fleet.pool().migration_stats();
      std::printf(
          "churn: %zu rounds, %zu joins, %zu leaves, %zu reboots, %zu polls\n"
          "resharding: %llu resizes, %llu migrations ok, %llu fallback, "
          "%llu failed, %llu retries\n"
          "active shards: %zu (allocated: %zu), alerts: %zu\n",
          options.rounds, report.joins, report.leaves, report.reboots,
          report.polls, static_cast<unsigned long long>(ms.resizes),
          static_cast<unsigned long long>(ms.ok),
          static_cast<unsigned long long>(ms.fallback),
          static_cast<unsigned long long>(ms.failed),
          static_cast<unsigned long long>(ms.retries),
          fleet.pool().active_shard_count(), fleet.pool().shard_count(),
          fleet.pool().alerts().size());
    }
    return per_agent_chain_digests(fleet.pool());
  };

  ChurnReport report;
  const auto resized = run(campaign.resize_at, &report);
  // The drift self-check: the identical campaign with no resizes must
  // produce byte-identical per-agent audit sub-chains.
  const auto baseline = run({}, nullptr);
  std::size_t drift = 0;
  for (const auto& [id, digest] : baseline) {
    auto it = resized.find(id);
    if (it == resized.end()) {
      std::fprintf(stderr, "DRIFT: %s missing from resized run\n", id.c_str());
      ++drift;
    } else if (it->second != digest) {
      std::fprintf(stderr, "DRIFT: %s chain digest mismatch\n", id.c_str());
      ++drift;
    }
  }
  for (const auto& [id, digest] : resized) {
    if (!baseline.count(id)) {
      std::fprintf(stderr, "DRIFT: %s missing from baseline run\n", id.c_str());
      ++drift;
    }
  }
  std::printf("verdict drift vs no-resize baseline: %zu agents (%zu checked)\n",
              drift, baseline.size());
  return drift == 0 ? 0 : 1;
}

int cmd_storm(const Args& args) {
  StormOptions options;
  options.seed = args.seed;
  if (args.agents > 0) options.agents = static_cast<std::size_t>(args.agents);
  if (args.shards > 0) options.shards = static_cast<std::size_t>(args.shards);
  if (args.rounds > 0) options.storm_rounds = static_cast<std::size_t>(args.rounds);
  if (args.bad_paths > 0) options.bad_paths = static_cast<std::size_t>(args.bad_paths);
  if (args.drop_rate >= 0) options.drop_rate = args.drop_rate;

  const StormReport report = run_alert_storm(options);
  if (!report.status.ok()) {
    std::fprintf(stderr, "storm scenario failed: %s\n",
                 report.status.error().message.c_str());
    return 1;
  }
  std::printf("storm: %zu agents, %zu shards, %zu rounds, %zu root causes\n"
              "alerts: %llu raw -> %llu emitted (%llu suppressed)\n"
              "incidents: %llu opened (%llu still open), widest spans "
              "%llu agents\n",
              report.agents, options.shards, options.storm_rounds,
              report.root_causes,
              static_cast<unsigned long long>(report.raw_alerts),
              static_cast<unsigned long long>(report.emitted_alerts),
              static_cast<unsigned long long>(report.suppressed),
              static_cast<unsigned long long>(report.incidents_opened),
              static_cast<unsigned long long>(report.incidents_open),
              static_cast<unsigned long long>(report.max_affected));
  for (const auto& [severity, count] : report.opened_by_severity) {
    std::printf("  %s: %llu\n", severity.c_str(),
                static_cast<unsigned long long>(count));
  }

  int failures = 0;
  // Contract 1: the storm collapses into O(root causes) incidents, not
  // O(agents x alerts). Every manufactured cause opens exactly one.
  if (report.incidents_opened != report.root_causes) {
    std::fprintf(stderr,
                 "FAIL: %llu incidents opened for %zu root causes\n",
                 static_cast<unsigned long long>(report.incidents_opened),
                 report.root_causes);
    ++failures;
  }
  // Contract 2: the widest incident counted the whole fleet (every agent
  // trips over every corrupted digest — drops only delay the alert).
  if (report.max_affected != report.agents) {
    std::fprintf(stderr, "FAIL: widest incident spans %llu of %zu agents\n",
                 static_cast<unsigned long long>(report.max_affected),
                 report.agents);
    ++failures;
  }
  // Contract 3: dedup is lossless accounting — every raw alert either
  // reached the operator or is counted in a suppressed tally.
  if (report.emitted_alerts + report.suppressed != report.raw_alerts ||
      report.emitted_alerts >= report.raw_alerts) {
    std::fprintf(stderr, "FAIL: dedup accounting off (raw=%llu emitted=%llu "
                 "suppressed=%llu)\n",
                 static_cast<unsigned long long>(report.raw_alerts),
                 static_cast<unsigned long long>(report.emitted_alerts),
                 static_cast<unsigned long long>(report.suppressed));
    ++failures;
  }
  // Contract 4: partition invariance — a different shard count must
  // produce a byte-identical canonical incident stream.
  StormOptions repartitioned = options;
  repartitioned.shards = options.shards == 3 ? 8 : 3;
  const StormReport other = run_alert_storm(repartitioned);
  if (!other.status.ok() || other.incident_stream != report.incident_stream) {
    std::fprintf(stderr, "FAIL: incident stream drifts across shard counts "
                 "(%zu vs %zu shards)\n",
                 options.shards, repartitioned.shards);
    ++failures;
  }
  // Contract 5: a mid-storm resize must not disturb the stream either.
  StormOptions resized = options;
  resized.resize_round = options.storm_rounds / 2;
  resized.resize_shards = options.shards == 3 ? 8 : 3;
  const StormReport migrated = run_alert_storm(resized);
  if (!migrated.status.ok() ||
      migrated.incident_stream != report.incident_stream) {
    std::fprintf(stderr, "FAIL: incident stream drifts across a mid-storm "
                 "resize to %zu shards\n", resized.resize_shards);
    ++failures;
  }
  std::printf("self-checks: %s (incident stream %zu bytes, stable across "
              "repartition and mid-storm resize)\n",
              failures == 0 ? "ok" : "FAILED", report.incident_stream.size());
  return failures == 0 ? 0 : 1;
}

int cmd_fleet(const Args& args) {
  if (args.storm) return cmd_storm(args);
  if (args.churn) return cmd_churn(args);
  if (args.shards > 0) return cmd_pool_fleet(args);
  FleetRunOptions options;
  options.seed = args.seed;
  if (args.days > 0) options.days = args.days;
  const auto result = run_fleet_experiment(options);
  std::printf("fleet: %zu nodes, %d days, %d updates\n"
              "polls: %zu (comms failures: %zu)\n"
              "false positives: %zu\n"
              "audit chain: %zu records, %s\n",
              result.nodes, result.days, result.updates_run, result.polls,
              result.comms_failures, result.false_positives,
              result.audit_records,
              result.audit_chain_intact ? "intact" : "BROKEN");
  return 0;
}

void usage() {
  std::fprintf(stderr,
               "usage: cia_sim <command> [flags]\n"
               "  fp-baseline [--days N] [--seed S]\n"
               "  dynamic [--days N] [--period daily|weekly] [--inject-race]"
               " [--seed S]\n"
               "  attacks [--seed S]\n"
               "  table1 [--seed S]\n"
               "  fleet [--days N] [--seed S] [--shards N] [--agents N]\n"
               "  fleet --churn [--rounds N] [--resize-at R:S]... [--seed S]"
               " [--shards N] [--agents N]\n"
               "  fleet --storm [--agents N] [--shards N] [--rounds N]"
               " [--bad-paths N] [--drop-rate P] [--seed S]\n");
}

}  // namespace

int main(int argc, char** argv) {
  set_log_level(LogLevel::kError);
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string command = argv[1];
  const Args args = parse_args(argc, argv, 2);
  if (command == "fp-baseline") return cmd_fp_baseline(args);
  if (command == "dynamic") return cmd_dynamic(args);
  if (command == "attacks") return cmd_attacks(args);
  if (command == "table1") return cmd_table1(args);
  if (command == "fleet") return cmd_fleet(args);
  usage();
  return 2;
}
