// cia_audit — offline verification of an exported attestation chain.
//
//   cia_audit <chain.json>
//
// Verifies the hash chain and every verifier signature, then prints the
// attestation history. Exit 0 when the chain is intact, 1 when corrupted,
// 2 on input errors.
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/json.hpp"
#include "keylime/audit.hpp"

int main(int argc, char** argv) {
  using namespace cia;
  if (argc != 2) {
    std::fprintf(stderr, "usage: cia_audit <chain.json>\n");
    return 2;
  }
  std::ifstream in(argv[1]);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", argv[1]);
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();

  auto doc = json::parse(buf.str());
  if (!doc.ok()) {
    std::fprintf(stderr, "bad chain file: %s\n",
                 doc.error().to_string().c_str());
    return 2;
  }
  auto chain = keylime::import_audit_chain(doc.value());
  if (!chain.ok()) {
    std::fprintf(stderr, "bad chain file: %s\n",
                 chain.error().to_string().c_str());
    return 2;
  }
  const auto& [records, key] = chain.value();

  const Status verdict = keylime::verify_audit_chain(records, key);
  std::printf("records: %zu\nchain:   %s\n", records.size(),
              verdict.ok() ? "INTACT" : verdict.error().to_string().c_str());
  std::size_t failures = 0;
  for (const auto& r : records) {
    if (r.verdict == keylime::AuditVerdict::kFailed) ++failures;
  }
  std::printf("failed attestation rounds: %zu\n", failures);
  for (const auto& r : records) {
    std::printf("  #%-5llu %s %-12s %-16s alerts=%zu evaluated=%zu\n",
                static_cast<unsigned long long>(r.sequence),
                SimClock(r.time).to_string().c_str(),
                keylime::audit_verdict_name(r.verdict), r.agent_id.c_str(),
                r.alerts, r.log_entries_evaluated);
  }
  return verdict.ok() ? 0 : 1;
}
