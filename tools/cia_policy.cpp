// cia_policy — runtime-policy tooling.
//
//   cia_policy generate --out policy.json [--seed S] [--days N]
//       Build a distribution (optionally aged by N release days), mirror
//       it, and emit the dynamic generator's base policy as JSON.
//
//   cia_policy stats <policy.json>
//       Entry/path/exclude counts and serialized size.
//
//   cia_policy diff <old.json> <new.json>
//       Paths added, removed, and re-hashed between two policies.
//
//   cia_policy dedup <in.json> <out.json>
//       Drop superseded hashes (keep the newest per path).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "common/log.hpp"
#include "core/policy_generator.hpp"
#include "pkg/archive.hpp"
#include "pkg/mirror.hpp"

namespace {

using namespace cia;

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  out = buf.str();
  return true;
}

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) return false;
  out << content;
  return bool(out);
}

Result<keylime::RuntimePolicy> load_policy(const std::string& path) {
  std::string text;
  if (!read_file(path, text)) {
    return err(Errc::kNotFound, "cannot read " + path);
  }
  auto doc = json::parse(text);
  if (!doc.ok()) return doc.error();
  return keylime::RuntimePolicy::from_json(doc.value());
}

int cmd_generate(int argc, char** argv) {
  std::string out_path;
  std::uint64_t seed = 42;
  int days = 0;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--seed" && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--days" && i + 1 < argc) {
      days = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    }
  }
  if (out_path.empty()) {
    std::fprintf(stderr, "--out is required\n");
    return 2;
  }
  pkg::Archive archive(pkg::ArchiveConfig{}, seed);
  for (int day = 0; day < days; ++day) (void)archive.release_day(day);
  pkg::Mirror mirror(&archive);
  mirror.sync(days * kDay);
  core::DynamicPolicyGenerator generator(&mirror, core::GeneratorConfig{});
  core::PolicyUpdateStats stats;
  const auto policy =
      generator.generate_base(archive.current_kernel_version(), &stats);
  if (!write_file(out_path, policy.to_json().pretty())) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 2;
  }
  std::printf("wrote %s: %zu entries from %zu packages (%.1f virtual min)\n",
              out_path.c_str(), policy.entry_count(), stats.packages_processed,
              stats.seconds / 60.0);
  return 0;
}

int cmd_stats(const std::string& path) {
  auto policy = load_policy(path);
  if (!policy.ok()) {
    std::fprintf(stderr, "%s\n", policy.error().to_string().c_str());
    return 2;
  }
  std::printf("entries:  %zu\npaths:    %zu\nexcludes: %zu\nsize:     %.2f MB\n",
              policy.value().entry_count(), policy.value().path_count(),
              policy.value().excludes().size(),
              static_cast<double>(policy.value().byte_size()) / 1048576.0);
  return 0;
}

int cmd_diff(const std::string& old_path, const std::string& new_path) {
  auto old_policy = load_policy(old_path);
  auto new_policy = load_policy(new_path);
  if (!old_policy.ok() || !new_policy.ok()) {
    std::fprintf(stderr, "cannot load inputs\n");
    return 2;
  }
  // Compare via the JSON form: path -> hash list.
  const auto old_doc = old_policy.value().to_json();
  const auto new_doc = new_policy.value().to_json();
  const auto& old_digests = old_doc.find("digests")->as_object();
  const auto& new_digests = new_doc.find("digests")->as_object();

  std::size_t added = 0, removed = 0, rehashed = 0;
  for (const auto& [path, hashes] : new_digests) {
    auto it = old_digests.find(path);
    if (it == old_digests.end()) {
      ++added;
    } else if (!(it->second == hashes)) {
      ++rehashed;
    }
  }
  for (const auto& [path, hashes] : old_digests) {
    (void)hashes;
    if (!new_digests.count(path)) ++removed;
  }
  std::printf("paths added:    %zu\npaths removed:  %zu\npaths re-hashed: %zu\n",
              added, removed, rehashed);
  return 0;
}

int cmd_dedup(const std::string& in_path, const std::string& out_path) {
  auto policy = load_policy(in_path);
  if (!policy.ok()) {
    std::fprintf(stderr, "%s\n", policy.error().to_string().c_str());
    return 2;
  }
  const std::size_t removed = policy.value().dedup();
  if (!write_file(out_path, policy.value().to_json().pretty())) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 2;
  }
  std::printf("removed %zu superseded hashes; wrote %s\n", removed,
              out_path.c_str());
  return 0;
}

void usage() {
  std::fprintf(stderr,
               "usage: cia_policy <command> ...\n"
               "  generate --out policy.json [--seed S] [--days N]\n"
               "  stats <policy.json>\n"
               "  diff <old.json> <new.json>\n"
               "  dedup <in.json> <out.json>\n");
}

}  // namespace

int main(int argc, char** argv) {
  set_log_level(LogLevel::kError);
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string command = argv[1];
  if (command == "generate") return cmd_generate(argc, argv);
  if (command == "stats" && argc == 3) return cmd_stats(argv[2]);
  if (command == "diff" && argc == 4) return cmd_diff(argv[2], argv[3]);
  if (command == "dedup" && argc == 4) return cmd_dedup(argv[2], argv[3]);
  usage();
  return 2;
}
