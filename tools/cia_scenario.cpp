// cia_scenario — run schema-validated scenario files deterministically.
//
//   cia_scenario run FILE [--seed S] [--self-check] [--telemetry PREFIX]
//                [--report FILE|-]
//       Validate FILE, execute it (same file + same seed => byte-identical
//       run), print every invariant verdict, and exit nonzero if any
//       fails. --self-check also runs the expensive cross-run invariants
//       (repartition/resize reruns for storms, the no-resize baseline for
//       churn, a different-shard-count rerun for fleet). --telemetry
//       writes PREFIX.prom and PREFIX.json metric exports; --report
//       writes the canonical report JSON ("-" = stdout).
//
//   cia_scenario validate FILE...
//       Parse + schema-check each file without running it. Prints the
//       path-qualified error for every rejection.
//
//   cia_scenario list [DIR]
//       List the scenario files in DIR (default: the checked-in
//       scenarios/ directory, or $CIA_SCENARIO_DIR).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "common/log.hpp"
#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"
#include "telemetry/export.hpp"
#include "telemetry/metrics.hpp"

namespace {

using namespace cia;

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  out << content;
  return true;
}

int cmd_run(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr, "usage: cia_scenario run FILE [--seed S] "
                 "[--self-check] [--telemetry PREFIX] [--report FILE|-]\n");
    return 2;
  }
  const std::string path = argv[2];
  scenario::RunOptions options;
  std::string telemetry_prefix;
  std::string report_path;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--seed") {
      options.seed = static_cast<std::uint64_t>(
          std::strtoull(next(), nullptr, 10));
    } else if (arg == "--self-check") {
      options.self_check = true;
    } else if (arg == "--telemetry") {
      telemetry_prefix = next();
    } else if (arg == "--report") {
      report_path = next();
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    }
  }

  auto loaded = scenario::load_file(path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.error().message.c_str());
    return 2;
  }
  telemetry::MetricsRegistry metrics;
  if (!telemetry_prefix.empty()) options.metrics = &metrics;

  auto run = scenario::run_scenario(loaded.value(), options);
  if (!run.ok()) {
    std::fprintf(stderr, "scenario failed: %s\n",
                 run.error().message.c_str());
    return 1;
  }
  const scenario::ScenarioOutcome& outcome = run.value();
  std::printf("scenario: %s (kind %s, seed %llu)\n", outcome.name.c_str(),
              scenario::kind_name(outcome.kind),
              static_cast<unsigned long long>(outcome.seed));
  for (const scenario::SelfCheck& check : outcome.checks) {
    std::printf("  %-36s %s  %s\n", check.name.c_str(),
                check.ok ? "ok  " : "FAIL", check.detail.c_str());
  }
  std::printf("checks: %s\n", outcome.ok() ? "ok" : "FAILED");

  if (!report_path.empty()) {
    const std::string text = outcome.report.pretty() + "\n";
    if (report_path == "-") {
      std::fputs(text.c_str(), stdout);
    } else if (!write_file(report_path, text)) {
      return 1;
    }
  }
  if (!telemetry_prefix.empty()) {
    const telemetry::MetricsSnapshot snapshot = metrics.snapshot();
    if (!write_file(telemetry_prefix + ".prom",
                    telemetry::to_prometheus(snapshot)) ||
        !write_file(telemetry_prefix + ".json",
                    telemetry::to_json(snapshot).dump() + "\n")) {
      return 1;
    }
  }
  return outcome.ok() ? 0 : 1;
}

int cmd_validate(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr, "usage: cia_scenario validate FILE...\n");
    return 2;
  }
  int bad = 0;
  for (int i = 2; i < argc; ++i) {
    auto loaded = scenario::load_file(argv[i]);
    if (loaded.ok()) {
      std::printf("%s: ok (%s, kind %s)\n", argv[i],
                  loaded.value().name.c_str(),
                  scenario::kind_name(loaded.value().kind));
    } else {
      std::printf("%s\n", loaded.error().message.c_str());
      ++bad;
    }
  }
  return bad == 0 ? 0 : 1;
}

int cmd_list(int argc, char** argv) {
  const std::string dir =
      argc > 2 ? argv[2] : scenario::default_scenario_dir();
  const std::vector<std::string> files = scenario::list_scenario_files(dir);
  if (files.empty()) {
    std::fprintf(stderr, "no scenario files in %s\n", dir.c_str());
    return 1;
  }
  for (const std::string& file : files) {
    auto loaded = scenario::load_file(file);
    if (loaded.ok()) {
      std::printf("%-40s %-8s %s\n", file.c_str(),
                  scenario::kind_name(loaded.value().kind),
                  loaded.value().name.c_str());
    } else {
      std::printf("%-40s INVALID: %s\n", file.c_str(),
                  loaded.error().message.c_str());
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  set_log_level(LogLevel::kError);
  const std::string cmd = argc > 1 ? argv[1] : "";
  if (cmd == "run") return cmd_run(argc, argv);
  if (cmd == "validate") return cmd_validate(argc, argv);
  if (cmd == "list") return cmd_list(argc, argv);
  std::fprintf(stderr,
               "usage: cia_scenario <run|validate|list> ...\n"
               "  run FILE [--seed S] [--self-check] [--telemetry PREFIX]"
               " [--report FILE|-]\n"
               "  validate FILE...\n"
               "  list [DIR]\n");
  return 2;
}
