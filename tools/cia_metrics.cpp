// cia_metrics — run a chaos scenario with full telemetry attached and
// export the metrics snapshot / span trace, or diff two saved snapshots.
//
//   cia_metrics run [--scenario NAME] [--nodes N] [--days D] [--seed S]
//                   [--format prom|json|trace|all] [--out PREFIX]
//       Drive one chaos scenario (see cia_chaos list) with a metrics
//       registry and tracer wired through every component, then write
//       the result: Prometheus text (PREFIX.prom), canonical metrics
//       JSON (PREFIX.json), and/or Chrome trace_event JSON
//       (PREFIX.trace.json — load in chrome://tracing or Perfetto).
//       Without --out, the selected format is printed to stdout
//       (--format all requires --out).
//
//   cia_metrics diff BEFORE.json AFTER.json
//       Line-oriented diff of two saved metrics snapshots: one line per
//       added/removed/changed series, counters and gauges with deltas.
//       Exit status 1 when the snapshots differ.
//
//   cia_metrics incidents [--agents N] [--shards N] [--rounds N] [--seed S]
//                         [--format table|json|prom] [--out PREFIX]
//       Drive the alert-storm scenario with the alert pipeline attached
//       and render the resulting incidents: a human triage table
//       (severity, subject, affected-agent width, suppressed tallies),
//       the canonical incident-snapshot JSON (PREFIX.incidents.json),
//       or the cia_alert_* / cia_incident_* Prometheus series.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "common/log.hpp"
#include "experiments/chaos_experiment.hpp"
#include "experiments/pool_experiment.hpp"
#include "keylime/alert_pipeline/incident.hpp"
#include "telemetry/export.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace {

using namespace cia;
using namespace cia::experiments;

struct Args {
  std::string scenario = "wan-loss";
  std::size_t nodes = 6;
  int days = 5;
  std::uint64_t seed = 42;
  std::string format = "prom";
  bool format_set = false;  // explicit --format (commands differ in default)
  std::string out;  // path prefix; empty = stdout
  // incidents view
  std::size_t agents = 0;  // 0 = storm default
  std::size_t shards = 0;
  std::size_t rounds = 0;
};

Args parse_args(int argc, char** argv, int first) {
  Args args;
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--scenario") {
      args.scenario = next();
    } else if (arg == "--nodes") {
      args.nodes = static_cast<std::size_t>(std::atoi(next()));
    } else if (arg == "--days") {
      args.days = std::atoi(next());
    } else if (arg == "--seed") {
      args.seed =
          static_cast<std::uint64_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--format") {
      args.format = next();
      args.format_set = true;
    } else if (arg == "--out") {
      args.out = next();
    } else if (arg == "--agents") {
      args.agents = static_cast<std::size_t>(std::atoi(next()));
    } else if (arg == "--shards") {
      args.shards = static_cast<std::size_t>(std::atoi(next()));
    } else if (arg == "--rounds") {
      args.rounds = static_cast<std::size_t>(std::atoi(next()));
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      std::exit(2);
    }
  }
  return args;
}

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  out << content;
  return true;
}

/// Emit one artifact: to PREFIX+suffix when a prefix is set, else stdout.
bool emit(const Args& args, const char* suffix, const std::string& content) {
  if (args.out.empty()) {
    std::fputs(content.c_str(), stdout);
    return true;
  }
  const std::string path = args.out + suffix;
  if (!write_file(path, content)) return false;
  std::fprintf(stderr, "wrote %s (%zu bytes)\n", path.c_str(), content.size());
  return true;
}

int cmd_run(const Args& args) {
  if (args.format != "prom" && args.format != "json" &&
      args.format != "trace" && args.format != "all") {
    std::fprintf(stderr, "bad --format %s (prom|json|trace|all)\n",
                 args.format.c_str());
    return 2;
  }
  if (args.format == "all" && args.out.empty()) {
    std::fprintf(stderr, "--format all requires --out PREFIX\n");
    return 2;
  }

  SimClock trace_clock;  // placeholder; the rig rebinds to its own clock
  telemetry::MetricsRegistry registry;
  telemetry::attach_log_counter(&registry);
  ChaosOptions options;
  options.scenario = args.scenario;
  options.nodes = args.nodes;
  options.days = args.days;
  options.seed = args.seed;
  options.archive.base_package_count = 200;
  options.metrics = &registry;
  telemetry::Tracer tracer(&trace_clock);
  options.tracer = &tracer;
  const ChaosReport report = run_chaos_experiment(options);
  telemetry::attach_log_counter(nullptr);
  if (!report.valid) {
    std::fprintf(stderr, "scenario %s failed to run (unknown name?)\n",
                 args.scenario.c_str());
    return 1;
  }

  const telemetry::MetricsSnapshot snapshot = registry.snapshot();
  std::fprintf(stderr,
               "%s: %zu polls, %zu comms alerts, %llu retries, "
               "%zu metric series, %zu spans (%zu dropped)\n",
               report.scenario.c_str(), report.polls, report.comms_alerts,
               static_cast<unsigned long long>(report.retries),
               snapshot.points.size(), tracer.finished().size(),
               tracer.dropped());

  bool ok = true;
  if (args.format == "prom" || args.format == "all") {
    ok &= emit(args, ".prom", telemetry::to_prometheus(snapshot));
  }
  if (args.format == "json" || args.format == "all") {
    ok &= emit(args, ".json", telemetry::to_json(snapshot).dump() + "\n");
  }
  if (args.format == "trace" || args.format == "all") {
    ok &= emit(args, ".trace.json", tracer.chrome_trace().dump() + "\n");
  }
  return ok ? 0 : 1;
}

/// Human triage table over an incident snapshot: one row per incident,
/// widest (most affected agents) first within each severity.
std::string render_incident_table(
    const keylime::alert_pipeline::IncidentSnapshot& snapshot) {
  std::ostringstream out;
  out << "  ID  SEVERITY             STATE   AGENTS  ALERTS  SUPP.  "
         "FIRST..LAST  SUBJECT\n";
  for (const keylime::alert_pipeline::Incident& inc : snapshot.incidents) {
    char line[256];
    std::snprintf(line, sizeof(line),
                  "%4llu  %-19s  %-6s  %6llu  %6llu  %5llu  %5llu..%-5llu  %s",
                  static_cast<unsigned long long>(inc.id),
                  severity_name(inc.severity), inc.open ? "open" : "closed",
                  static_cast<unsigned long long>(inc.affected_agents),
                  static_cast<unsigned long long>(inc.alerts),
                  static_cast<unsigned long long>(inc.suppressed),
                  static_cast<unsigned long long>(inc.first_seen),
                  static_cast<unsigned long long>(inc.last_seen),
                  inc.subject.empty() ? inc.reason.c_str()
                                      : inc.subject.c_str());
    out << line << "\n";
    out << "      sample agents:";
    for (const std::string& id : inc.sample_agents) out << " " << id;
    out << "\n";
  }
  return out.str();
}

int cmd_incidents(Args args) {
  if (!args.format_set) args.format = "table";
  if (args.format != "table" && args.format != "json" &&
      args.format != "prom") {
    std::fprintf(stderr, "bad --format %s (table|json|prom)\n",
                 args.format.c_str());
    return 2;
  }

  telemetry::MetricsRegistry registry;
  StormOptions options;
  options.seed = args.seed;
  if (args.agents > 0) options.agents = args.agents;
  if (args.shards > 0) options.shards = args.shards;
  if (args.rounds > 0) options.storm_rounds = args.rounds;
  options.metrics = &registry;
  const StormReport report = run_alert_storm(options);
  if (!report.status.ok()) {
    std::fprintf(stderr, "storm scenario failed: %s\n",
                 report.status.error().message.c_str());
    return 1;
  }
  std::fprintf(stderr,
               "storm: %zu agents, %llu raw alerts -> %llu emitted, "
               "%llu incidents (%llu open)\n",
               report.agents,
               static_cast<unsigned long long>(report.raw_alerts),
               static_cast<unsigned long long>(report.emitted_alerts),
               static_cast<unsigned long long>(report.incidents_opened),
               static_cast<unsigned long long>(report.incidents_open));

  if (args.format == "prom") {
    return emit(args, ".prom", telemetry::to_prometheus(registry.snapshot()))
               ? 0
               : 1;
  }
  if (args.format == "json") {
    return emit(args, ".incidents.json", report.incident_stream + "\n") ? 0
                                                                        : 1;
  }
  // The table view re-decodes the canonical stream — doubling as an
  // end-to-end exercise of the snapshot codec on every invocation.
  auto doc = json::parse(report.incident_stream);
  if (!doc.ok()) {
    std::fprintf(stderr, "incident stream unparsable: %s\n",
                 doc.error().to_string().c_str());
    return 1;
  }
  auto snapshot = keylime::alert_pipeline::snapshot_from_json(doc.value());
  if (!snapshot.ok()) {
    std::fprintf(stderr, "incident stream invalid: %s\n",
                 snapshot.error().to_string().c_str());
    return 1;
  }
  return emit(args, ".incidents.txt", render_incident_table(snapshot.value()))
             ? 0
             : 1;
}

Result<telemetry::MetricsSnapshot> load_snapshot(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return err(Errc::kNotFound, "cannot read " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  auto doc = json::parse(buf.str());
  if (!doc.ok()) return doc.error();
  return telemetry::snapshot_from_json(doc.value());
}

int cmd_diff(const std::string& before_path, const std::string& after_path) {
  auto before = load_snapshot(before_path);
  if (!before.ok()) {
    std::fprintf(stderr, "%s: %s\n", before_path.c_str(),
                 before.error().to_string().c_str());
    return 2;
  }
  auto after = load_snapshot(after_path);
  if (!after.ok()) {
    std::fprintf(stderr, "%s: %s\n", after_path.c_str(),
                 after.error().to_string().c_str());
    return 2;
  }
  const std::string diff =
      telemetry::diff_snapshots(before.value(), after.value());
  if (diff.empty()) {
    std::printf("snapshots identical (%zu series)\n",
                before.value().points.size());
    return 0;
  }
  std::fputs(diff.c_str(), stdout);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  cia::set_log_level(cia::LogLevel::kError);
  const std::string cmd = argc > 1 ? argv[1] : "";
  if (cmd == "run") {
    return cmd_run(parse_args(argc, argv, 2));
  }
  if (cmd == "diff" && argc == 4) {
    return cmd_diff(argv[2], argv[3]);
  }
  if (cmd == "incidents") {
    return cmd_incidents(parse_args(argc, argv, 2));
  }
  std::fprintf(stderr,
               "usage: cia_metrics run [--scenario NAME] [--nodes N] "
               "[--days D] [--seed S] [--format prom|json|trace|all] "
               "[--out PREFIX]\n"
               "       cia_metrics diff BEFORE.json AFTER.json\n"
               "       cia_metrics incidents [--agents N] [--shards N] "
               "[--rounds N] [--seed S] [--format table|json|prom] "
               "[--out PREFIX]\n");
  return 2;
}
