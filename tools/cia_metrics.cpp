// cia_metrics — run a chaos scenario with full telemetry attached and
// export the metrics snapshot / span trace, or diff two saved snapshots.
//
//   cia_metrics run [--scenario NAME] [--nodes N] [--days D] [--seed S]
//                   [--format prom|json|trace|all] [--out PREFIX]
//       Drive one chaos scenario (see cia_chaos list) with a metrics
//       registry and tracer wired through every component, then write
//       the result: Prometheus text (PREFIX.prom), canonical metrics
//       JSON (PREFIX.json), and/or Chrome trace_event JSON
//       (PREFIX.trace.json — load in chrome://tracing or Perfetto).
//       Without --out, the selected format is printed to stdout
//       (--format all requires --out).
//
//   cia_metrics diff BEFORE.json AFTER.json
//       Line-oriented diff of two saved metrics snapshots: one line per
//       added/removed/changed series, counters and gauges with deltas.
//       Exit status 1 when the snapshots differ.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "common/log.hpp"
#include "experiments/chaos_experiment.hpp"
#include "telemetry/export.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace {

using namespace cia;
using namespace cia::experiments;

struct Args {
  std::string scenario = "wan-loss";
  std::size_t nodes = 6;
  int days = 5;
  std::uint64_t seed = 42;
  std::string format = "prom";
  std::string out;  // path prefix; empty = stdout
};

Args parse_args(int argc, char** argv, int first) {
  Args args;
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--scenario") {
      args.scenario = next();
    } else if (arg == "--nodes") {
      args.nodes = static_cast<std::size_t>(std::atoi(next()));
    } else if (arg == "--days") {
      args.days = std::atoi(next());
    } else if (arg == "--seed") {
      args.seed =
          static_cast<std::uint64_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--format") {
      args.format = next();
    } else if (arg == "--out") {
      args.out = next();
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      std::exit(2);
    }
  }
  return args;
}

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  out << content;
  return true;
}

/// Emit one artifact: to PREFIX+suffix when a prefix is set, else stdout.
bool emit(const Args& args, const char* suffix, const std::string& content) {
  if (args.out.empty()) {
    std::fputs(content.c_str(), stdout);
    return true;
  }
  const std::string path = args.out + suffix;
  if (!write_file(path, content)) return false;
  std::fprintf(stderr, "wrote %s (%zu bytes)\n", path.c_str(), content.size());
  return true;
}

int cmd_run(const Args& args) {
  if (args.format != "prom" && args.format != "json" &&
      args.format != "trace" && args.format != "all") {
    std::fprintf(stderr, "bad --format %s (prom|json|trace|all)\n",
                 args.format.c_str());
    return 2;
  }
  if (args.format == "all" && args.out.empty()) {
    std::fprintf(stderr, "--format all requires --out PREFIX\n");
    return 2;
  }

  SimClock trace_clock;  // placeholder; the rig rebinds to its own clock
  telemetry::MetricsRegistry registry;
  telemetry::attach_log_counter(&registry);
  ChaosOptions options;
  options.scenario = args.scenario;
  options.nodes = args.nodes;
  options.days = args.days;
  options.seed = args.seed;
  options.archive.base_package_count = 200;
  options.metrics = &registry;
  telemetry::Tracer tracer(&trace_clock);
  options.tracer = &tracer;
  const ChaosReport report = run_chaos_experiment(options);
  telemetry::attach_log_counter(nullptr);
  if (!report.valid) {
    std::fprintf(stderr, "scenario %s failed to run (unknown name?)\n",
                 args.scenario.c_str());
    return 1;
  }

  const telemetry::MetricsSnapshot snapshot = registry.snapshot();
  std::fprintf(stderr,
               "%s: %zu polls, %zu comms alerts, %llu retries, "
               "%zu metric series, %zu spans (%zu dropped)\n",
               report.scenario.c_str(), report.polls, report.comms_alerts,
               static_cast<unsigned long long>(report.retries),
               snapshot.points.size(), tracer.finished().size(),
               tracer.dropped());

  bool ok = true;
  if (args.format == "prom" || args.format == "all") {
    ok &= emit(args, ".prom", telemetry::to_prometheus(snapshot));
  }
  if (args.format == "json" || args.format == "all") {
    ok &= emit(args, ".json", telemetry::to_json(snapshot).dump() + "\n");
  }
  if (args.format == "trace" || args.format == "all") {
    ok &= emit(args, ".trace.json", tracer.chrome_trace().dump() + "\n");
  }
  return ok ? 0 : 1;
}

Result<telemetry::MetricsSnapshot> load_snapshot(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return err(Errc::kNotFound, "cannot read " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  auto doc = json::parse(buf.str());
  if (!doc.ok()) return doc.error();
  return telemetry::snapshot_from_json(doc.value());
}

int cmd_diff(const std::string& before_path, const std::string& after_path) {
  auto before = load_snapshot(before_path);
  if (!before.ok()) {
    std::fprintf(stderr, "%s: %s\n", before_path.c_str(),
                 before.error().to_string().c_str());
    return 2;
  }
  auto after = load_snapshot(after_path);
  if (!after.ok()) {
    std::fprintf(stderr, "%s: %s\n", after_path.c_str(),
                 after.error().to_string().c_str());
    return 2;
  }
  const std::string diff =
      telemetry::diff_snapshots(before.value(), after.value());
  if (diff.empty()) {
    std::printf("snapshots identical (%zu series)\n",
                before.value().points.size());
    return 0;
  }
  std::fputs(diff.c_str(), stdout);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  cia::set_log_level(cia::LogLevel::kError);
  const std::string cmd = argc > 1 ? argv[1] : "";
  if (cmd == "run") {
    return cmd_run(parse_args(argc, argv, 2));
  }
  if (cmd == "diff" && argc == 4) {
    return cmd_diff(argv[2], argv[3]);
  }
  std::fprintf(stderr,
               "usage: cia_metrics run [--scenario NAME] [--nodes N] "
               "[--days D] [--seed S] [--format prom|json|trace|all] "
               "[--out PREFIX]\n"
               "       cia_metrics diff BEFORE.json AFTER.json\n");
  return 2;
}
