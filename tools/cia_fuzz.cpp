// cia_fuzz — deterministic corpus-driven fuzzing of every untrusted
// parse surface.
//
//   cia_fuzz --target=<name>|all [--seed=N] [--iters=M]
//            [--corpus=DIR] [--no-shrink] [--invariants]
//            [--minimize=FILE] [--save-repro=DIR] [--list]
//            [--gen-seeds=K --out=DIR]
//
// Targets: ima_log_entry, json, runtime_policy, wire, checkpoint,
// migration, telemetry_snapshot, incident_snapshot, scenario,
// policy_delta. Each run replays the target's seed corpus
// (tests/corpus/<target>/ plus tests/corpus/regressions/<target>__*),
// then mutates for --iters iterations. A (target, seed, iters) triple is
// byte-for-byte reproducible. With --invariants, a cross-layer fleet
// simulation also runs (seeded from --seed).
//
// Exit 0 when everything is clean, 1 when any violation was found,
// 2 on usage/input errors. Violations print the minimized reproducer as
// hex plus an escaped preview; --save-repro writes it to
// DIR/<target>__seedN.bin for promotion into the regression corpus.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/hex.hpp"
#include "testkit/corpus.hpp"
#include "testkit/fuzzer.hpp"
#include "testkit/invariants.hpp"
#include "testkit/shrink.hpp"
#include "testkit/targets.hpp"

namespace {

using namespace cia;
using namespace cia::testkit;

std::string printable_preview(const Bytes& data, std::size_t limit = 160) {
  std::string out;
  for (std::size_t i = 0; i < data.size() && out.size() < limit; ++i) {
    const char c = static_cast<char>(data[i]);
    if (c == '\n') {
      out += "\\n";
    } else if (c == '\\') {
      out += "\\\\";
    } else if (c >= 0x20 && c < 0x7f) {
      out += c;
    } else {
      char buf[5];
      std::snprintf(buf, sizeof(buf), "\\x%02x", data[i]);
      out += buf;
    }
  }
  if (out.size() >= limit) out += "...";
  return out;
}

void print_violation(const FuzzReport& report) {
  const Bytes& repro = *report.first_violation;
  std::printf("  VIOLATION: %s\n", report.first_violation_detail.c_str());
  std::printf("  reproducer (%zu bytes, shrunk from %zu):\n", repro.size(),
              report.first_violation_original_size);
  std::printf("    hex:  %s\n", to_hex(repro).c_str());
  std::printf("    text: %s\n", printable_preview(repro).c_str());
}

int run_target(const FuzzTarget& target, const FuzzOptions& options,
               const std::string& corpus_root, const std::string& save_dir) {
  Fuzzer fuzzer(target, options);
  std::size_t corpus_seeds = 0;
  for (auto& entry : load_corpus(corpus_root + "/" + target.name)) {
    fuzzer.add_seed(std::move(entry.data));
    ++corpus_seeds;
  }
  std::size_t regressions = 0;
  for (auto& entry : load_regressions(corpus_root, target.name)) {
    fuzzer.add_seed(std::move(entry.data));
    ++regressions;
  }

  const FuzzReport report = fuzzer.run();
  std::printf(
      "%-18s seed=%llu iters=%llu corpus=%zu regressions=%zu "
      "accepted=%llu rejected=%llu violations=%llu %s\n",
      target.name.c_str(), static_cast<unsigned long long>(options.seed),
      static_cast<unsigned long long>(report.iterations), corpus_seeds,
      regressions, static_cast<unsigned long long>(report.accepted),
      static_cast<unsigned long long>(report.rejected),
      static_cast<unsigned long long>(report.violations),
      report.clean() ? "CLEAN" : "FOUND");
  if (report.clean()) return 0;

  print_violation(report);
  if (!save_dir.empty()) {
    const std::string name = target.name + "__seed" +
                             std::to_string(options.seed) + ".bin";
    if (Status s = save_corpus_entry(save_dir, name, *report.first_violation);
        s.ok()) {
      std::printf("  saved: %s/%s\n", save_dir.c_str(), name.c_str());
    } else {
      std::fprintf(stderr, "  save failed: %s\n",
                   s.error().to_string().c_str());
    }
  }
  return 1;
}

int run_invariants(std::uint64_t seed) {
  InvariantOptions options;
  options.seed = seed;
  const InvariantReport report = check_invariants(options);
  std::printf(
      "%-18s seed=%llu rounds=%zu checks=%zu restarts=%zu alerts=%zu %s\n",
      "invariants", static_cast<unsigned long long>(seed), report.rounds,
      report.checks, report.restarts, report.alerts,
      report.clean() ? "CLEAN" : "FOUND");
  for (const auto& v : report.violations) {
    std::printf("  VIOLATION [%s, round %zu]: %s\n", v.invariant.c_str(),
                v.round, v.detail.c_str());
  }
  return report.clean() ? 0 : 1;
}

// Corpus maintenance: write K generator-derived seeds per selected
// target under OUT/<target>/. Deterministic in --seed, so the committed
// corpus is reproducible from two numbers.
int gen_seeds(const std::vector<const FuzzTarget*>& targets, std::uint64_t seed,
              std::size_t k, const std::string& out) {
  for (const FuzzTarget* target : targets) {
    if (!target->generate) {
      std::printf("%-18s has no generator; skipped\n", target->name.c_str());
      continue;
    }
    // FNV-1a over the name: std::hash is implementation-defined, and the
    // committed corpus must be reproducible on every platform.
    std::uint64_t name_tag = 1469598103934665603ull;
    for (char c : target->name) {
      name_tag = (name_tag ^ static_cast<unsigned char>(c)) *
                 1099511628211ull;
    }
    Rng rng(seed ^ name_tag);
    std::size_t written = 0;
    for (std::size_t i = 0; i < k; ++i) {
      const Bytes data = target->generate(rng);
      char name[32];
      std::snprintf(name, sizeof(name), "seed-%02zu.bin", i);
      if (Status s =
              save_corpus_entry(out + "/" + target->name, name, data);
          !s.ok()) {
        std::fprintf(stderr, "%s: %s\n", name, s.error().to_string().c_str());
        return 2;
      }
      ++written;
    }
    std::printf("%-18s wrote %zu seeds to %s/%s\n", target->name.c_str(),
                written, out.c_str(), target->name.c_str());
  }
  return 0;
}

int minimize_file(const FuzzTarget& target, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    return 2;
  }
  Bytes data((std::istreambuf_iterator<char>(in)),
             std::istreambuf_iterator<char>());
  if (target.run(data).verdict != FuzzVerdict::kViolation) {
    std::printf("%s does not violate target %s; nothing to minimize\n",
                path.c_str(), target.name.c_str());
    return 0;
  }
  ShrinkStats stats;
  const Bytes minimized = shrink(
      data,
      [&](const Bytes& candidate) {
        return target.run(candidate).verdict == FuzzVerdict::kViolation;
      },
      /*max_attempts=*/20000, &stats);
  std::printf("minimized %zu -> %zu bytes (%zu probes)\n", data.size(),
              minimized.size(), stats.attempts);
  std::printf("  detail: %s\n", target.run(minimized).detail.c_str());
  std::printf("  hex:  %s\n", to_hex(minimized).c_str());
  std::printf("  text: %s\n", printable_preview(minimized).c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string target_name;
  std::string corpus_root = default_corpus_root();
  std::string save_dir;
  std::string minimize_path;
  std::string out_dir;
  std::size_t gen_count = 0;
  FuzzOptions options;
  bool invariants = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const char* prefix) -> const char* {
      const std::size_t n = std::strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = value("--target=")) {
      target_name = v;
    } else if (const char* v = value("--seed=")) {
      options.seed = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--iters=")) {
      options.iterations = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--corpus=")) {
      corpus_root = v;
    } else if (const char* v = value("--save-repro=")) {
      save_dir = v;
    } else if (const char* v = value("--minimize=")) {
      minimize_path = v;
    } else if (const char* v = value("--gen-seeds=")) {
      gen_count = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--out=")) {
      out_dir = v;
    } else if (arg == "--no-shrink") {
      options.shrink = false;
    } else if (arg == "--invariants") {
      invariants = true;
    } else if (arg == "--list") {
      for (const FuzzTarget& t : all_targets()) {
        std::printf("%s\n", t.name.c_str());
      }
      return 0;
    } else {
      std::fprintf(stderr,
                   "usage: cia_fuzz --target=<name>|all [--seed=N] "
                   "[--iters=M] [--corpus=DIR] [--no-shrink] [--invariants] "
                   "[--minimize=FILE] [--save-repro=DIR] [--list]\n");
      return 2;
    }
  }

  if (target_name.empty() && !invariants) {
    std::fprintf(stderr, "--target is required (or --invariants); "
                         "use --list for names\n");
    return 2;
  }

  int worst = 0;
  if (!target_name.empty()) {
    std::vector<const FuzzTarget*> selected;
    if (target_name == "all") {
      for (const FuzzTarget& t : all_targets()) selected.push_back(&t);
    } else if (const FuzzTarget* t = find_target(target_name)) {
      selected.push_back(t);
    } else {
      std::fprintf(stderr, "unknown target '%s'; use --list\n",
                   target_name.c_str());
      return 2;
    }
    if (!minimize_path.empty()) {
      if (selected.size() != 1) {
        std::fprintf(stderr, "--minimize needs a single --target\n");
        return 2;
      }
      return minimize_file(*selected[0], minimize_path);
    }
    if (gen_count > 0) {
      if (out_dir.empty()) {
        std::fprintf(stderr, "--gen-seeds needs --out=DIR\n");
        return 2;
      }
      return gen_seeds(selected, options.seed, gen_count, out_dir);
    }
    for (const FuzzTarget* t : selected) {
      const int rc = run_target(*t, options, corpus_root, save_dir);
      if (rc > worst) worst = rc;
    }
  }
  if (invariants) {
    const int rc = run_invariants(options.seed);
    if (rc > worst) worst = rc;
  }
  return worst;
}
