#!/usr/bin/env bash
# Build and run the test suite under sanitizers (separate build trees, so
# none pollutes the regular build/). Usage:
#
#   tools/run_sanitized_tests.sh [address|undefined|thread|fuzz]...
#
# With no argument the address and undefined suites run in full.
# `thread` builds with TSan and runs the concurrent components: the
# telemetry registry, the sharded verifier pool (stress + determinism
# suites, which drive one worker thread per shard while another thread
# pushes policy revisions into the COW mailboxes), and the PolicyIndex
# tests. `fuzz` builds with ASan+UBSan combined and runs the
# bounded fuzz smoke: every cia_fuzz target on its committed corpus with
# fixed seeds, plus the fleet invariant checker — a crash, sanitizer
# abort, or contract violation fails the step. Exits non-zero on the
# first failing step.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
sanitizers=("$@")
if [ ${#sanitizers[@]} -eq 0 ]; then
  sanitizers=(address undefined)
fi

for san in "${sanitizers[@]}"; do
  case "$san" in
    address|undefined|thread|fuzz) ;;
    *)
      echo "unknown sanitizer '$san' (expected address, undefined, thread, or fuzz)" >&2
      exit 2
      ;;
  esac
  build_dir="$repo_root/build-$san"
  flags="$san"
  if [ "$san" = fuzz ]; then
    flags="address,undefined"
  fi
  echo "==> [$san] configure ($build_dir)"
  cmake -B "$build_dir" -S "$repo_root" -DCIA_SANITIZE="$flags" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo
  echo "==> [$san] build"
  cmake --build "$build_dir" -j "$(nproc)"
  case "$san" in
    thread)
      echo "==> [$san] telemetry tests"
      "$build_dir/tests/cia_tests" \
        --gtest_filter='MetricsRegistryTest.*:HistogramTest.*:ExportTest.*:LogBridgeTest.*:TracerTest.*'
      echo "==> [$san] verifier pool (shard workers + COW policy swaps)"
      "$build_dir/tests/cia_tests" \
        --gtest_filter='PoolStressTest.*:PoolDeterminismTest.*:PoolFleetTest.*:PoolPolicyTest.*:PoolRingTest.*:PoolReshardTest.*:PolicyIndexTest.*'
      ;;
    fuzz)
      # Fixed seeds keep the smoke deterministic; the iteration budget is
      # sized to stay around half a minute per target under ASan+UBSan.
      echo "==> [$san] fuzz smoke (all targets, fixed seeds)"
      "$build_dir/tools/cia_fuzz" --target=all --seed=1 --iters=8000
      "$build_dir/tools/cia_fuzz" --target=all --seed=2026 --iters=3000
      echo "==> [$san] fleet invariants"
      "$build_dir/tools/cia_fuzz" --invariants --seed=7
      "$build_dir/tools/cia_fuzz" --invariants --seed=11
      ;;
    *)
      echo "==> [$san] ctest"
      (cd "$build_dir" && ctest --output-on-failure -j "$(nproc)")
      ;;
  esac
  echo "==> [$san] OK"
done
echo "all sanitized suites passed"
