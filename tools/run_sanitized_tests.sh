#!/usr/bin/env bash
# Build and run the full test suite under AddressSanitizer and
# UndefinedBehaviorSanitizer (separate build trees, so neither pollutes
# the regular build/). Usage:
#
#   tools/run_sanitized_tests.sh [address|undefined]...
#
# With no argument both sanitizers run. Exits non-zero on the first
# failing configure/build/test step.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
sanitizers=("$@")
if [ ${#sanitizers[@]} -eq 0 ]; then
  sanitizers=(address undefined)
fi

for san in "${sanitizers[@]}"; do
  case "$san" in
    address|undefined) ;;
    *)
      echo "unknown sanitizer '$san' (expected address or undefined)" >&2
      exit 2
      ;;
  esac
  build_dir="$repo_root/build-$san"
  echo "==> [$san] configure ($build_dir)"
  cmake -B "$build_dir" -S "$repo_root" -DCIA_SANITIZE="$san" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo
  echo "==> [$san] build"
  cmake --build "$build_dir" -j "$(nproc)"
  echo "==> [$san] ctest"
  (cd "$build_dir" && ctest --output-on-failure -j "$(nproc)")
  echo "==> [$san] OK"
done
echo "all sanitized suites passed"
