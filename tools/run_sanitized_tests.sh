#!/usr/bin/env bash
# Build and run the test suite under sanitizers (separate build trees, so
# none pollutes the regular build/). Usage:
#
#   tools/run_sanitized_tests.sh [address|undefined|thread]...
#
# With no argument the address and undefined suites run in full.
# `thread` builds with TSan and runs only the telemetry tests — the
# metrics registry is the one deliberately concurrent component (the
# simulation itself is single-threaded), so that's where data races
# could hide. Exits non-zero on the first failing step.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
sanitizers=("$@")
if [ ${#sanitizers[@]} -eq 0 ]; then
  sanitizers=(address undefined)
fi

for san in "${sanitizers[@]}"; do
  case "$san" in
    address|undefined|thread) ;;
    *)
      echo "unknown sanitizer '$san' (expected address, undefined, or thread)" >&2
      exit 2
      ;;
  esac
  build_dir="$repo_root/build-$san"
  echo "==> [$san] configure ($build_dir)"
  cmake -B "$build_dir" -S "$repo_root" -DCIA_SANITIZE="$san" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo
  echo "==> [$san] build"
  cmake --build "$build_dir" -j "$(nproc)"
  if [ "$san" = thread ]; then
    echo "==> [$san] telemetry tests"
    "$build_dir/tests/cia_tests" \
      --gtest_filter='MetricsRegistryTest.*:HistogramTest.*:ExportTest.*:LogBridgeTest.*:TracerTest.*'
  else
    echo "==> [$san] ctest"
    (cd "$build_dir" && ctest --output-on-failure -j "$(nproc)")
  fi
  echo "==> [$san] OK"
done
echo "all sanitized suites passed"
