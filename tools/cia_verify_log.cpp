// cia_verify_log — offline measurement-list verification.
//
// Given a dumped IMA ASCII measurement list and a JSON runtime policy,
// replay the log (optionally against an expected PCR-10 value) and
// evaluate every entry against the policy — the core of what a Keylime
// verifier does, usable for after-the-fact forensics on saved logs.
//
//   cia_verify_log <ima_log.txt> <policy.json> [expected_pcr10_hex]
//
// Exit status: 0 all entries in policy (and PCR matches, if given),
// 1 violations found, 2 input errors.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "common/hex.hpp"
#include "ima/ima.hpp"
#include "keylime/runtime_policy.hpp"

namespace {

using namespace cia;

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  out = buf.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3 || argc > 4) {
    std::fprintf(stderr,
                 "usage: cia_verify_log <ima_log.txt> <policy.json> "
                 "[expected_pcr10_hex]\n");
    return 2;
  }

  std::string log_text, policy_text;
  if (!read_file(argv[1], log_text)) {
    std::fprintf(stderr, "cannot read %s\n", argv[1]);
    return 2;
  }
  if (!read_file(argv[2], policy_text)) {
    std::fprintf(stderr, "cannot read %s\n", argv[2]);
    return 2;
  }

  auto policy_doc = json::parse(policy_text);
  if (!policy_doc.ok()) {
    std::fprintf(stderr, "bad policy: %s\n",
                 policy_doc.error().to_string().c_str());
    return 2;
  }
  auto policy = keylime::RuntimePolicy::from_json(policy_doc.value());
  if (!policy.ok()) {
    std::fprintf(stderr, "bad policy: %s\n", policy.error().to_string().c_str());
    return 2;
  }

  std::vector<ima::LogEntry> entries;
  std::size_t line_number = 0;
  std::istringstream lines(log_text);
  std::string line;
  while (std::getline(lines, line)) {
    ++line_number;
    if (line.empty()) continue;
    auto entry = ima::LogEntry::parse(line);
    if (!entry.ok()) {
      std::fprintf(stderr, "line %zu: %s\n", line_number,
                   entry.error().to_string().c_str());
      return 2;
    }
    entries.push_back(std::move(entry).take());
  }

  const crypto::Digest replayed = ima::replay_log(entries);
  std::printf("entries: %zu\nreplayed PCR-10: %s\n", entries.size(),
              crypto::digest_hex(replayed).c_str());

  bool pcr_ok = true;
  if (argc == 4) {
    pcr_ok = crypto::digest_hex(replayed) == argv[3];
    std::printf("PCR check: %s\n", pcr_ok ? "MATCH" : "MISMATCH");
  }

  std::size_t violations = 0;
  for (const auto& entry : entries) {
    if (entry.path == "boot_aggregate") continue;
    const auto match = policy.value().check(entry.path, entry.file_hash);
    if (match == keylime::PolicyMatch::kAllowed ||
        match == keylime::PolicyMatch::kExcluded) {
      continue;
    }
    ++violations;
    std::printf("VIOLATION %-14s %s\n", keylime::policy_match_name(match),
                entry.path.c_str());
  }
  std::printf("violations: %zu\n", violations);
  return (violations == 0 && pcr_ok) ? 0 : 1;
}
