// cia_chaos — scripted chaos-scenario runner for the attestation fleet.
//
//   cia_chaos list
//       Print the available scenario names.
//
//   cia_chaos run [--scenario NAME|all] [--nodes N] [--days D] [--seed S]
//                 [--no-retry]
//       Drive the fleet through one (or every) named fault script and
//       print the resilience verdicts: transport-attributable false
//       positives (must be 0), liveness/recovery window, retry and fault
//       counters, update-window deferrals, and audit-chain integrity.
//       Exit status is non-zero if any invariant fails.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/log.hpp"
#include "experiments/chaos_experiment.hpp"

namespace {

using namespace cia;
using namespace cia::experiments;

struct Args {
  std::string scenario = "all";
  std::size_t nodes = 6;
  int days = 5;
  std::uint64_t seed = 42;
  bool retrying = true;
};

Args parse_args(int argc, char** argv, int first) {
  Args args;
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--scenario") {
      args.scenario = next();
    } else if (arg == "--nodes") {
      args.nodes = static_cast<std::size_t>(std::atoi(next()));
    } else if (arg == "--days") {
      args.days = std::atoi(next());
    } else if (arg == "--seed") {
      args.seed =
          static_cast<std::uint64_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--no-retry") {
      args.retrying = false;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      std::exit(2);
    }
  }
  return args;
}

bool run_one(const std::string& scenario, const Args& args) {
  ChaosOptions options;
  options.scenario = scenario;
  options.nodes = args.nodes;
  options.days = args.days;
  options.seed = args.seed;
  options.retrying_transport = args.retrying;
  options.archive.base_package_count = 200;
  const ChaosReport r = run_chaos_experiment(options);
  if (!r.valid) {
    std::printf("%-17s  INVALID (unknown scenario or rig setup failed)\n",
                scenario.c_str());
    return false;
  }
  const bool ok =
      r.transport_false_positives == 0 && r.liveness_ok && r.audit_chain_ok &&
      (!r.violation_injected || r.genuine_detected) && r.checkpoint_roundtrip_ok;
  std::printf("%-17s  %s\n", r.scenario.c_str(), ok ? "PASS" : "FAIL");
  std::printf("  false positives     %zu (transport-attributable)\n",
              r.transport_false_positives);
  if (r.violation_injected) {
    std::printf("  injected violation  %s (%zu policy alerts on victim)\n",
                r.genuine_detected ? "detected" : "MISSED", r.genuine_alerts);
  }
  std::printf("  comms alerts        %zu transient\n", r.comms_alerts);
  std::printf("  liveness            %s, slowest recovery %llds after fault\n",
              r.liveness_ok ? "ok" : "VIOLATED",
              static_cast<long long>(r.recovery_time));
  std::printf("  transport           %llu retries, %llu recovered, "
              "%llu giveups, %llu breaker opens\n",
              static_cast<unsigned long long>(r.retries),
              static_cast<unsigned long long>(r.recovered_calls),
              static_cast<unsigned long long>(r.giveups),
              static_cast<unsigned long long>(r.breaker_opens));
  std::printf("  network faults      %llu drops, %llu duplicates, "
              "%llu timeouts\n",
              static_cast<unsigned long long>(r.drops),
              static_cast<unsigned long long>(r.duplicates),
              static_cast<unsigned long long>(r.timeouts));
  std::printf("  update windows      %d run, %llu deferred\n", r.updates_run,
              static_cast<unsigned long long>(r.updates_deferred));
  std::printf("  audit chain         %s (%zu records%s)\n",
              r.audit_chain_ok ? "intact" : "BROKEN", r.audit_records,
              r.verifier_restarted
                  ? (r.checkpoint_roundtrip_ok
                         ? ", spans verifier restart, checkpoint byte-identical"
                         : ", CHECKPOINT DIVERGED")
                  : "");
  std::printf("\n");
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  set_log_level(LogLevel::kError);
  const std::string cmd = argc > 1 ? argv[1] : "run";
  if (cmd == "list") {
    for (const auto& name : chaos_scenarios()) std::printf("%s\n", name.c_str());
    return 0;
  }
  if (cmd != "run") {
    std::fprintf(stderr,
                 "usage: cia_chaos [list|run] [--scenario NAME|all] "
                 "[--nodes N] [--days D] [--seed S] [--no-retry]\n");
    return 2;
  }
  const Args args = parse_args(argc, argv, 2);
  std::vector<std::string> to_run;
  if (args.scenario == "all") {
    to_run = chaos_scenarios();
  } else {
    to_run.push_back(args.scenario);
  }
  bool all_ok = true;
  for (const auto& scenario : to_run) all_ok &= run_one(scenario, args);
  std::printf("overall: %s\n", all_ok ? "PASS" : "FAIL");
  return all_ok ? 0 : 1;
}
