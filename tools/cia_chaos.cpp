// cia_chaos — scripted chaos-scenario runner for the attestation fleet.
//
//   cia_chaos list
//       Print the available fault-script names.
//
//   cia_chaos run [--scenario NAME|all|FILE] [--nodes N] [--days D]
//                 [--seed S] [--no-retry]
//       Drive the fleet through one (or every) named fault script and
//       print the resilience verdicts: transport-attributable false
//       positives (must be 0), liveness/recovery window, update-window
//       deferrals, and audit-chain integrity. --scenario also accepts a
//       scenario FILE (any *.json path; see docs/SCENARIOS.md) — script
//       names and files resolve through the same scenario::run_scenario
//       path, which owns the PASS predicate this tool used to hand-code.
//       Exit status is non-zero if any invariant fails.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <sys/stat.h>
#include <vector>

#include "common/log.hpp"
#include "experiments/chaos_experiment.hpp"
#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"

namespace {

using namespace cia;
using namespace cia::experiments;

struct Args {
  std::string scenario = "all";
  std::size_t nodes = 6;
  int days = 5;
  std::uint64_t seed = 42;
  bool seed_set = false;
  bool retrying = true;
};

Args parse_args(int argc, char** argv, int first) {
  Args args;
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--scenario") {
      args.scenario = next();
    } else if (arg == "--nodes") {
      args.nodes = static_cast<std::size_t>(std::atoi(next()));
    } else if (arg == "--days") {
      args.days = std::atoi(next());
    } else if (arg == "--seed") {
      args.seed =
          static_cast<std::uint64_t>(std::strtoull(next(), nullptr, 10));
      args.seed_set = true;
    } else if (arg == "--no-retry") {
      args.retrying = false;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      std::exit(2);
    }
  }
  return args;
}

/// Does --scenario name a scenario FILE rather than a fault script?
bool looks_like_file(const std::string& value) {
  if (value.size() > 5 && value.compare(value.size() - 5, 5, ".json") == 0) {
    return true;
  }
  struct stat st;
  return ::stat(value.c_str(), &st) == 0 && S_ISREG(st.st_mode);
}

bool run_scenario_and_report(const cia::scenario::Scenario& sc) {
  cia::scenario::RunOptions options;
  auto run = cia::scenario::run_scenario(sc, options);
  if (!run.ok()) {
    std::printf("%-22s  INVALID (%s)\n", sc.name.c_str(),
                run.error().message.c_str());
    return false;
  }
  const cia::scenario::ScenarioOutcome& outcome = run.value();
  std::printf("%-22s  %s\n", outcome.name.c_str(),
              outcome.ok() ? "PASS" : "FAIL");
  for (const cia::scenario::SelfCheck& check : outcome.checks) {
    std::printf("  %-34s %s  %s\n", check.name.c_str(),
                check.ok ? "ok  " : "FAIL", check.detail.c_str());
  }
  std::printf("\n");
  return outcome.ok();
}

bool run_script(const std::string& script, const Args& args) {
  cia::scenario::Scenario sc;
  sc.name = script;
  sc.kind = cia::scenario::Kind::kChaos;
  sc.seed = args.seed;
  sc.chaos.script = script;
  sc.chaos.nodes = static_cast<std::int64_t>(args.nodes);
  sc.chaos.days = args.days;
  sc.chaos.retrying_transport = args.retrying;
  return run_scenario_and_report(sc);
}

bool run_file(const std::string& path, const Args& args) {
  auto loaded = cia::scenario::load_file(path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.error().message.c_str());
    return false;
  }
  cia::scenario::Scenario sc = loaded.value();
  if (args.seed_set) sc.seed = args.seed;
  return run_scenario_and_report(sc);
}

}  // namespace

int main(int argc, char** argv) {
  set_log_level(LogLevel::kError);
  const std::string cmd = argc > 1 ? argv[1] : "run";
  if (cmd == "list") {
    for (const auto& name : chaos_scenarios()) std::printf("%s\n", name.c_str());
    return 0;
  }
  if (cmd != "run") {
    std::fprintf(stderr,
                 "usage: cia_chaos [list|run] [--scenario NAME|all|FILE] "
                 "[--nodes N] [--days D] [--seed S] [--no-retry]\n");
    return 2;
  }
  const Args args = parse_args(argc, argv, 2);
  bool all_ok = true;
  if (looks_like_file(args.scenario)) {
    all_ok = run_file(args.scenario, args);
  } else if (args.scenario == "all") {
    for (const auto& scenario : chaos_scenarios()) {
      all_ok &= run_script(scenario, args);
    }
  } else {
    all_ok = run_script(args.scenario, args);
  }
  std::printf("overall: %s\n", all_ok ? "PASS" : "FAIL");
  return all_ok ? 0 : 1;
}
