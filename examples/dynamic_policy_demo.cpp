// The paper's dynamic policy generation scheme (§III-C), end to end:
//
//   1. a local mirror of the OS distribution syncs on a schedule;
//   2. the generator builds the base policy from *every executable the
//      distribution ships* and refreshes it incrementally as packages
//      update;
//   3. the orchestrator pushes the refreshed policy to the verifier
//      BEFORE the node upgrades, so attestation never goes red.
//
//   $ ./dynamic_policy_demo
#include <cstdio>

#include "common/strutil.hpp"
#include "core/policy_generator.hpp"
#include "core/update_orchestrator.hpp"
#include "experiments/testbed.hpp"
#include "experiments/workload.hpp"

using namespace cia;
using namespace cia::experiments;

int main() {
  TestbedOptions options;
  options.provision_extra = 100;
  Testbed bed(options);
  if (!bed.enroll().ok()) {
    std::printf("enrolment failed\n");
    return 1;
  }

  core::DynamicPolicyGenerator generator(&bed.mirror, core::GeneratorConfig{});
  core::UpdateOrchestrator orchestrator(&bed.mirror, &generator, &bed.verifier,
                                        &bed.clock);
  orchestrator.manage({&bed.machine, &bed.apt, bed.agent_id()});

  // Day 0, 00:00 — build the base policy from the mirrored distribution.
  if (!orchestrator.bootstrap().ok()) {
    std::printf("bootstrap failed\n");
    return 1;
  }
  std::printf("base policy: %zu entries (%.1f MB) covering the whole "
              "distribution\n",
              orchestrator.policy().entry_count(),
              static_cast<double>(orchestrator.policy().byte_size()) / 1048576);

  Workload workload(&bed.machine, /*seed=*/7);

  for (int day = 0; day < 5; ++day) {
    // 05:00 — the scheduled update cycle.
    bed.clock.advance_to(day * kDay + 5 * kHour);
    auto report = orchestrator.run_cycle();
    if (report.ok()) {
      const auto& stats = report.value().policy_stats;
      std::printf(
          "day %d  05:00  cycle: %2zu pkgs (%zu high-pri) -> +%4zu policy "
          "lines in %s, %zu nodes upgraded, dedup -%zu%s\n",
          day, stats.packages_processed, stats.packages_high_priority,
          stats.lines_added, format_duration(static_cast<SimTime>(stats.seconds)).c_str(),
          report.value().nodes_upgraded, report.value().dedup_removed,
          report.value().kernel_pending_reboot ? "  [new kernel armed]" : "");
    }

    // Business hours — upstream publishes updates, users do work.
    bed.clock.advance_to(day * kDay + 8 * kHour);
    (void)bed.archive.release_day(day);
    for (int session = 0; session < 3; ++session) {
      workload.run_session();
      bed.attest();
    }
    std::printf("day %d         workload sessions attested: %s\n", day,
                bed.verifier.alerts().empty() ? "GREEN" : "ALERTS!");
  }

  std::printf("\nfinal state: %zu policy entries, %zu alerts in %d days — "
              "the node never left policy during updates\n",
              orchestrator.policy().entry_count(),
              bed.verifier.alerts().size(), 5);
  return 0;
}
