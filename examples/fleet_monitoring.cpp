// Fleet monitoring: one verifier/registrar pair continuously attesting
// several machines; one node gets compromised and the tenant's status
// report shows exactly which one.
//
//   $ ./fleet_monitoring
#include <cstdio>
#include <memory>
#include <vector>

#include "common/strutil.hpp"
#include "crypto/cert.hpp"
#include "keylime/agent.hpp"
#include "keylime/registrar.hpp"
#include "keylime/tenant.hpp"
#include "keylime/verifier.hpp"
#include "netsim/network.hpp"
#include "oskernel/machine.hpp"

using namespace cia;

int main() {
  SimClock clock;
  netsim::SimNetwork network(&clock, 1);
  crypto::CertificateAuthority vendor("tpm-vendor", to_bytes("vendor-seed"));
  keylime::Registrar registrar(&network, &clock, 2);
  registrar.trust_manufacturer(vendor.public_key());
  keylime::Verifier verifier(&network, &clock, 3);
  keylime::Tenant tenant(&verifier, &registrar);

  // Five identical nodes.
  std::vector<std::unique_ptr<oskernel::Machine>> machines;
  std::vector<std::unique_ptr<keylime::Agent>> agents;
  for (int i = 0; i < 5; ++i) {
    oskernel::MachineConfig config;
    config.hostname = strformat("node-%02d", i);
    config.seed = static_cast<std::uint64_t>(i + 1);
    machines.push_back(std::make_unique<oskernel::Machine>(config, vendor, &clock));
    auto& m = *machines.back();
    (void)m.fs().create_file("/usr/bin/app", to_bytes("elf:app-v1"), true);
    agents.push_back(std::make_unique<keylime::Agent>(&m, &network));
    if (!agents.back()->register_with(keylime::Registrar::address()).ok()) {
      std::printf("registration failed for %s\n", config.hostname.c_str());
      return 1;
    }
    keylime::RuntimePolicy policy;
    policy.allow("/usr/bin/app", crypto::sha256(std::string("elf:app-v1")));
    if (!tenant.enroll(*agents.back(), policy).ok()) return 1;
  }
  std::printf("fleet enrolled: %zu nodes\n\n", agents.size());

  // A few hours of healthy operation.
  for (int hour = 0; hour < 3; ++hour) {
    clock.advance(kHour);
    for (auto& m : machines) (void)m->exec("/usr/bin/app");
    (void)verifier.attest_all();
  }
  std::printf("after 3 healthy hours:\n%s\n", tenant.status_report().c_str());

  // node-02 is compromised: its app binary is replaced.
  (void)machines[2]->fs().write_file("/usr/bin/app", to_bytes("elf:backdoored"));
  (void)machines[2]->exec("/usr/bin/app");
  clock.advance(kHour);
  (void)verifier.attest_all();

  std::printf("after the compromise of node-02:\n%s\n",
              tenant.status_report().c_str());
  for (const auto& alert : verifier.alerts()) {
    std::printf("  alert: %s %s on %s\n", alert.agent_id.c_str(),
                keylime::alert_type_name(alert.type), alert.path.c_str());
  }
  return 0;
}
