// One attack, three postures (§IV): the Diamorphine kernel rootkit
// against stock Keylime (basic attacker), against stock Keylime with an
// adaptive attacker exploiting P1+P4, and against the mitigated stack.
//
//   $ ./attack_detection
#include <cstdio>

#include "attacks/rootkits.hpp"
#include "core/policy_generator.hpp"
#include "experiments/testbed.hpp"

using namespace cia;
using namespace cia::experiments;

namespace {

void show_alerts(const keylime::Verifier& verifier, const char* label) {
  std::size_t policy_alerts = 0;
  for (const auto& alert : verifier.alerts()) {
    if (alert.type == keylime::AlertType::kHashMismatch ||
        alert.type == keylime::AlertType::kNotInPolicy) {
      std::printf("    ALERT %-14s %s\n", keylime::alert_type_name(alert.type),
                  alert.path.c_str());
      ++policy_alerts;
    }
  }
  if (policy_alerts == 0) {
    std::printf("    (no alerts — the %s attacker is invisible)\n", label);
  }
}

}  // namespace

int main() {
  attacks::Diamorphine rootkit;

  for (const bool adaptive : {false, true}) {
    for (const bool mitigated : {false, true}) {
      if (!adaptive && mitigated) continue;  // three interesting postures
      TestbedOptions options;
      options.provision_extra = 30;
      if (mitigated) {
        options.ima_policy = ima::ImaPolicy::enriched();
        options.ima_config.reevaluate_on_path_change = true;
        options.verifier_config.continue_on_failure = true;
      }
      Testbed bed(options);
      if (!bed.enroll().ok()) return 1;

      bed.mirror.sync(0);
      core::DynamicPolicyGenerator generator(&bed.mirror,
                                             core::GeneratorConfig{});
      auto policy = generator.generate_base(bed.machine.kernel_version());
      if (!mitigated) policy.exclude("/tmp/*");  // the inherited P1 hole
      (void)bed.verifier.set_policy(bed.agent_id(), policy);
      bed.attest();

      std::printf("\n=== Diamorphine, %s attacker, %s stack ===\n",
                  adaptive ? "adaptive" : "basic",
                  mitigated ? "mitigated" : "stock");
      attacks::AttackContext ctx;
      ctx.machine = &bed.machine;
      ctx.attestation_round = [&bed] { bed.attest(); };
      const Status s =
          adaptive ? rootkit.run_adaptive(ctx) : rootkit.run_basic(ctx);
      if (!s.ok()) {
        std::printf("attack failed to run: %s\n", s.error().to_string().c_str());
        continue;
      }
      std::printf("  rootkit loaded: %zu kernel modules active\n",
                  bed.machine.loaded_modules().size());
      for (int i = 0; i < 3; ++i) bed.attest();
      show_alerts(bed.verifier, adaptive ? "adaptive" : "basic");
    }
  }

  std::printf(
      "\nThe adaptive run stages the module in /tmp (excluded by the policy,\n"
      "P1) and moves it to /lib/modules before the second insmod — IMA's\n"
      "once-per-inode cache never re-measures it (P4). The mitigated stack\n"
      "closes both holes and the same tradecraft is caught.\n");
  return 0;
}
