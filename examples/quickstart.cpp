// Quickstart: wire up a complete continuous-attestation deployment —
// a machine with a TPM and IMA, the Keylime agent/registrar/verifier —
// enrol the node, watch it attest green, then tamper with a system binary
// and watch the verifier catch it.
//
//   $ ./quickstart
#include <cstdio>

#include "crypto/cert.hpp"
#include "keylime/agent.hpp"
#include "keylime/registrar.hpp"
#include "keylime/tenant.hpp"
#include "keylime/verifier.hpp"
#include "netsim/network.hpp"
#include "oskernel/machine.hpp"

using namespace cia;

int main() {
  // --- Infrastructure: a virtual clock, a network, and the TPM vendor.
  SimClock clock;
  netsim::SimNetwork network(&clock, /*seed=*/1);
  crypto::CertificateAuthority tpm_vendor("tpm-vendor", to_bytes("vendor-seed"));

  // --- Trusted side: registrar (trusts the vendor) and verifier.
  keylime::Registrar registrar(&network, &clock, /*seed=*/2);
  registrar.trust_manufacturer(tpm_vendor.public_key());
  keylime::Verifier verifier(&network, &clock, /*seed=*/3);
  keylime::Tenant tenant(&verifier, &registrar);

  // --- Untrusted side: a machine with a TPM, running IMA and the agent.
  oskernel::MachineConfig machine_config;
  machine_config.hostname = "web-01";
  oskernel::Machine machine(machine_config, tpm_vendor, &clock);
  (void)machine.fs().create_file("/usr/bin/nginx", to_bytes("elf:nginx"), true);
  (void)machine.fs().create_file("/usr/bin/bash", to_bytes("elf:bash"), true);
  keylime::Agent agent(&machine, &network);

  // --- Enrolment: EK certificate check + credential activation, then a
  // runtime policy listing the hashes this node is allowed to execute.
  if (!agent.register_with(keylime::Registrar::address()).ok()) {
    std::printf("registration failed\n");
    return 1;
  }
  keylime::RuntimePolicy policy;
  policy.allow("/usr/bin/nginx", crypto::sha256(std::string("elf:nginx")));
  policy.allow("/usr/bin/bash", crypto::sha256(std::string("elf:bash")));
  if (!tenant.enroll(agent, policy).ok()) {
    std::printf("enrolment failed\n");
    return 1;
  }
  std::printf("enrolled %s (TPM EK certified by %s)\n",
              agent.agent_id().c_str(),
              machine.tpm().ek_certificate().issuer.c_str());

  // --- Normal operation: the node runs its services and attests green.
  (void)machine.exec("/usr/bin/nginx");
  (void)machine.exec("/usr/bin/bash");
  auto round = verifier.attest_once("web-01");
  std::printf("attestation #1: %zu measurements verified, %zu alerts\n",
              round.value().evaluated, round.value().alerts.size());

  // --- Compromise: someone replaces nginx; IMA re-measures it on the
  // next execution and the verifier flags the hash mismatch.
  (void)machine.fs().write_file("/usr/bin/nginx", to_bytes("elf:trojaned"));
  (void)machine.exec("/usr/bin/nginx");
  round = verifier.attest_once("web-01");
  for (const auto& alert : round.value().alerts) {
    std::printf("attestation #2: ALERT %s on %s\n",
                keylime::alert_type_name(alert.type), alert.path.c_str());
  }

  std::printf("\n%s", tenant.status_report().c_str());
  return 0;
}
