// Durable attestation: every verifier poll leaves a hash-chained, signed
// record; an auditor can later prove what was observed — and detect any
// attempt to whitewash a failure out of history.
//
//   $ ./durable_attestation
#include <cstdio>

#include "crypto/cert.hpp"
#include "keylime/agent.hpp"
#include "keylime/audit.hpp"
#include "keylime/notifier.hpp"
#include "keylime/registrar.hpp"
#include "keylime/verifier.hpp"
#include "netsim/network.hpp"
#include "oskernel/machine.hpp"

using namespace cia;

int main() {
  SimClock clock;
  netsim::SimNetwork network(&clock, 1);
  crypto::CertificateAuthority vendor("tpm-vendor", to_bytes("seed"));
  keylime::Registrar registrar(&network, &clock, 2);
  registrar.trust_manufacturer(vendor.public_key());
  keylime::Verifier verifier(&network, &clock, 3);

  keylime::CollectingNotifier webhook;
  verifier.add_notifier(&webhook);

  oskernel::MachineConfig config;
  config.hostname = "db-01";
  oskernel::Machine machine(config, vendor, &clock);
  (void)machine.fs().create_file("/usr/bin/postgres", to_bytes("elf:pg"), true);
  keylime::Agent agent(&machine, &network);
  (void)agent.register_with(keylime::Registrar::address());
  (void)verifier.add_agent("db-01", agent.address());
  keylime::RuntimePolicy policy;
  policy.allow("/usr/bin/postgres", crypto::sha256(std::string("elf:pg")));
  (void)verifier.set_policy("db-01", policy);

  // A day of healthy polling, then a compromise.
  for (int hour = 0; hour < 6; ++hour) {
    clock.advance(kHour);
    (void)machine.exec("/usr/bin/postgres");
    (void)verifier.attest_once("db-01");
  }
  (void)machine.fs().write_file("/usr/bin/postgres", to_bytes("elf:backdoor"));
  (void)machine.exec("/usr/bin/postgres");
  clock.advance(kHour);
  (void)verifier.attest_once("db-01");

  // The revocation webhook already fired:
  for (const auto& event : webhook.events()) {
    std::printf("revocation at %s: %s (%s)\n",
                SimClock(event.time).to_string().c_str(),
                event.agent_id.c_str(), event.reason.c_str());
  }

  // The audit trail records the whole history, signed:
  const auto& records = verifier.audit().records();
  std::printf("\naudit chain: %zu records\n", records.size());
  for (const auto& r : records) {
    std::printf("  #%llu %-12s %s  alerts=%zu\n",
                static_cast<unsigned long long>(r.sequence),
                keylime::audit_verdict_name(r.verdict),
                SimClock(r.time).to_string().c_str(), r.alerts);
  }
  const Status chain_ok =
      keylime::verify_audit_chain(records, verifier.audit().public_key());
  std::printf("auditor verdict: %s\n",
              chain_ok.ok() ? "chain intact" : chain_ok.error().to_string().c_str());

  // A dishonest operator tries to rewrite history: the failure record is
  // edited to look like a pass. The auditor catches it immediately.
  auto forged = records;
  for (auto& r : forged) {
    if (r.verdict == keylime::AuditVerdict::kFailed) {
      r.verdict = keylime::AuditVerdict::kPassed;
      r.alerts = 0;
    }
  }
  const Status forged_ok =
      keylime::verify_audit_chain(forged, verifier.audit().public_key());
  std::printf("after whitewashing the failure: %s\n",
              forged_ok.ok() ? "chain intact (BUG!)"
                             : forged_ok.error().to_string().c_str());
  return 0;
}
